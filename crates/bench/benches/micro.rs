//! Criterion micro-benchmarks of the hot paths: codec encode/decode,
//! motion-vector reconstruction, NN-S inference, agent-unit coalescing and
//! optical flow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vr_dann::{plane_to_mask, recon, reconstruct_b_frame, ReconConfig};
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::{CodecConfig, Decoder, Encoder, MvRecord, RefMv};
use vrd_flow::{estimate, FlowConfig};
use vrd_metrics::segmentation::reference as tally_reference;
use vrd_metrics::PixelCounts;
use vrd_nn::conv::{reference as conv_reference, Conv2d};
use vrd_nn::featwarp::{self, FeatureMap, WarpSource, FEATURE_CHANNELS, FEATURE_STRIDE};
use vrd_nn::{LargeNet, LargeNetProfile, NnS, QuantConv2d, Requant, Tensor};
use vrd_sim::{agent, AgentConfig, Dram, DramConfig};
use vrd_video::davis::{davis_sequence, SuiteConfig};
use vrd_video::SegMask;

fn bench_codec(c: &mut Criterion) {
    let seq = davis_sequence("cows", &SuiteConfig::tiny()).expect("sequence generates");
    let encoder = Encoder::new(CodecConfig::default());
    c.bench_function("codec/encode_tiny_sequence", |b| {
        b.iter(|| encoder.encode(black_box(&seq.frames)).expect("encodes"))
    });
    let encoded = encoder.encode(&seq.frames).expect("encodes");
    let decoder = Decoder::new();
    c.bench_function("codec/decode_full", |b| {
        b.iter(|| {
            decoder
                .decode(black_box(&encoded.bitstream))
                .expect("decodes")
        })
    });
    c.bench_function("codec/decode_for_recognition", |b| {
        b.iter(|| {
            decoder
                .decode_for_recognition(black_box(&encoded.bitstream))
                .expect("decodes")
        })
    });
}

fn recognition_fixture() -> (
    vrd_codec::RecognitionStream,
    BTreeMap<u32, vrd_video::SegMask>,
) {
    let seq = davis_sequence("dog", &SuiteConfig::tiny()).expect("sequence generates");
    let encoded = Encoder::new(CodecConfig::default())
        .encode(&seq.frames)
        .expect("encodes");
    let rec = Decoder::new()
        .decode_for_recognition(&encoded.bitstream)
        .expect("decodes");
    let refs: BTreeMap<u32, vrd_video::SegMask> = rec
        .anchors
        .iter()
        .map(|(d, _)| (*d, seq.gt_masks[*d as usize].clone()))
        .collect();
    (rec, refs)
}

fn bench_reconstruction(c: &mut Criterion) {
    let (rec, refs) = recognition_fixture();
    let info = rec.b_frames.first().expect("stream has B-frames").clone();
    c.bench_function("vrdann/reconstruct_b_frame", |b| {
        b.iter(|| {
            reconstruct_b_frame(
                black_box(&info),
                &refs,
                rec.width,
                rec.height,
                rec.mb_size,
                &ReconConfig::default(),
            )
            .expect("reconstructs")
        })
    });
}

/// Deployment-resolution (854×480) packed-mask kernels vs their retained
/// byte-wise references: B-frame reconstruction over a full 16-px MV grid
/// with word-straddling sources, plane thresholding, and the IoU tally.
fn bench_packed_masks(c: &mut Criterion) {
    const W: usize = 854;
    const H: usize = 480;
    const MB: usize = 16;
    let mask = |seed: u64| {
        SegMask::from_bits(
            W,
            H,
            (0..W * H).map(|i| vrd_video::texture::hash2(i as i64, 43, seed) & 3 == 0),
        )
    };
    let (pred, gt) = (mask(1), mask(2));
    let mut refs = BTreeMap::new();
    refs.insert(0u32, pred.clone());
    refs.insert(4u32, gt.clone());

    let mut mvs = Vec::new();
    for by in 0..(H / MB) {
        for bx in 0..(W / MB) {
            let s = vrd_video::texture::hash2(bx as i64, by as i64, 97);
            mvs.push(MvRecord {
                dst_x: (bx * MB) as u32,
                dst_y: (by * MB) as u32,
                ref0: RefMv {
                    frame: 0,
                    src_x: (s % W as u64) as i32 - 13,
                    src_y: ((s >> 8) % H as u64) as i32 - 7,
                },
                ref1: (s & 1 == 0).then_some(RefMv {
                    frame: 4,
                    src_x: ((s >> 16) % W as u64) as i32 - 13,
                    src_y: ((s >> 24) % H as u64) as i32 - 7,
                }),
            });
        }
    }
    let info = BFrameInfo {
        display_idx: 2,
        mvs,
        intra_blocks: vec![],
    };
    let cfg = ReconConfig::default();

    c.bench_function("mask/reconstruct_854x480_packed", |b| {
        b.iter(|| reconstruct_b_frame(black_box(&info), &refs, W, H, MB, &cfg).expect("anchors"))
    });
    c.bench_function("mask/reconstruct_854x480_reference", |b| {
        b.iter(|| {
            recon::reference::reconstruct_b_frame(black_box(&info), &refs, W, H, MB, &cfg)
                .expect("anchors")
        })
    });

    let plane = reconstruct_b_frame(&info, &refs, W, H, MB, &cfg).expect("anchors");
    c.bench_function("mask/plane_to_mask_854x480_packed", |b| {
        b.iter(|| plane_to_mask(black_box(&plane), &cfg))
    });
    c.bench_function("mask/plane_to_mask_854x480_reference", |b| {
        b.iter(|| recon::reference::plane_to_mask(black_box(&plane), &cfg))
    });

    let (pred_bytes, gt_bytes) = (pred.to_byte_vec(), gt.to_byte_vec());
    c.bench_function("mask/tally_854x480_packed", |b| {
        b.iter(|| PixelCounts::tally(black_box(&pred), &gt))
    });
    c.bench_function("mask/tally_854x480_reference", |b| {
        b.iter(|| tally_reference::tally_bytes(black_box(&pred_bytes), &gt_bytes))
    });
}

/// Deployment-resolution feature warp: every 16-px block of an 854×480
/// frame resampled from two reference feature maps with word-straddling
/// pixel MVs — the per-B-frame cost of the feature-propagation baseline.
fn bench_featwarp(c: &mut Criterion) {
    const W: usize = 854;
    const H: usize = 480;
    const MB: usize = 16;
    let filled = |salt: u64| {
        let mut m = FeatureMap::zeros(W, H, FEATURE_STRIDE, FEATURE_CHANNELS);
        for (i, v) in m.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            *v = ((i as u64 ^ salt) % 97) as f32 / 96.0;
        }
        m
    };
    let (a, b) = (filled(3), filled(11));
    type WarpBlock = (usize, usize, i32, i32, Option<(i32, i32)>);
    let blocks: Vec<WarpBlock> = (0..H / MB)
        .flat_map(|by| (0..W / MB).map(move |bx| (bx, by)))
        .map(|(bx, by)| {
            let s = vrd_video::texture::hash2(bx as i64, by as i64, 131);
            (
                bx * MB,
                by * MB,
                (s % 61) as i32 - 30,
                ((s >> 8) % 61) as i32 - 30,
                (s & 1 == 0)
                    .then_some((((s >> 16) % 61) as i32 - 30, ((s >> 24) % 61) as i32 - 30)),
            )
        })
        .collect();
    let warp_frame = |out: &mut FeatureMap, optimized: bool| {
        for &(dx_px, dy_px, dx, dy, second) in &blocks {
            let first = WarpSource { feat: &a, dx, dy };
            let second = second.map(|(dx, dy)| WarpSource { feat: &b, dx, dy });
            if optimized {
                featwarp::warp_block(out, dx_px, dy_px, MB, first, second);
            } else {
                featwarp::reference::warp_block(out, dx_px, dy_px, MB, first, second);
            }
        }
    };
    let mut out = FeatureMap::zeros(W, H, FEATURE_STRIDE, FEATURE_CHANNELS);
    c.bench_function("featwarp/warp_854x480", |bch| {
        bch.iter(|| {
            warp_frame(black_box(&mut out), true);
        })
    });
    c.bench_function("featwarp/warp_854x480_reference", |bch| {
        bch.iter(|| {
            warp_frame(black_box(&mut out), false);
        })
    });
}

fn bench_nns(c: &mut Criterion) {
    let mut nns = NnS::new(8, 42);
    let input = Tensor::zeros(3, 48, 64);
    c.bench_function("nns/infer_64x48", |b| {
        b.iter(|| nns.infer(black_box(&input)))
    });
    let target = Tensor::zeros(1, 48, 64);
    c.bench_function("nns/train_step_64x48", |b| {
        b.iter(|| {
            nns.zero_grad();
            let loss = nns.train_step(black_box(&input), &target);
            nns.apply_grads(0.1, 0.9, 1);
            loss
        })
    });
    // The paper's deployment resolution: one full NN-S refinement over an
    // 854×480 sandwich. This is the per-B-frame cost the real-time claim
    // rests on (ISSUE acceptance: ≥3× faster than the naive kernels).
    let hd = Tensor::zeros(3, 480, 854);
    c.bench_function("nns/infer_854x480", |b| {
        b.iter(|| nns.infer(black_box(&hd)))
    });
}

fn bench_conv(c: &mut Criterion) {
    // Optimised vs naive-reference kernels at NN-S conv1's shape, and the
    // training forward (input clone cached) vs the inference forward.
    let mut conv = Conv2d::new(3, 8, 3, 7);
    let x = Tensor::zeros(3, 48, 64);
    c.bench_function("conv/forward_training_64x48", |b| {
        b.iter(|| conv.forward(black_box(&x)))
    });
    c.bench_function("conv/forward_inference_64x48", |b| {
        b.iter(|| conv.forward_inference(black_box(&x)))
    });
    c.bench_function("conv/forward_reference_64x48", |b| {
        b.iter(|| conv_reference::forward(black_box(&conv), &x))
    });
    let gout = conv.forward(&x);
    c.bench_function("conv/backward_64x48", |b| {
        b.iter(|| {
            conv.zero_grad();
            conv.backward(black_box(&gout))
        })
    });
    c.bench_function("conv/backward_reference_64x48", |b| {
        b.iter(|| conv_reference::backward(black_box(&conv), &x, &gout))
    });
}

/// Deployment-resolution quantized kernels vs their pinned f32
/// counterparts: one fused 8→8 conv layer and the full NN-S refinement
/// (ISSUE acceptance: int8 NN-S ≥3× over the f32 path at 854×480).
fn bench_quant(c: &mut Criterion) {
    const W: usize = 854;
    const H: usize = 480;
    let mut nns = NnS::new(8, 42);
    let hd = Tensor::from_vec(
        3,
        H,
        W,
        (0..3 * H * W).map(|v| (v % 97) as f32 / 96.0).collect(),
    );
    nns.calibrate(&[&hd]);
    let q = nns.quantize();
    c.bench_function("nns/infer_int8_854x480", |b| {
        b.iter(|| q.infer(black_box(&hd)))
    });

    let conv = Conv2d::new(8, 8, 3, 7);
    let xf = Tensor::from_vec(
        8,
        H,
        W,
        (0..8 * H * W).map(|v| (v % 97) as f32 / 96.0).collect(),
    );
    c.bench_function("conv/forward_854x480", |b| {
        b.iter(|| conv.forward_inference(black_box(&xf)))
    });
    let qconv = QuantConv2d::from_conv(&conv);
    let xq: Vec<u8> = xf
        .as_slice()
        .iter()
        .map(|&v| (v * 127.0 + 0.5) as u8)
        .collect();
    let rq = vec![Requant::from_real(0.01, 0); 8];
    let mut out = vec![0u8; 8 * H * W];
    c.bench_function("conv/forward_int8_854x480", |b| {
        b.iter(|| qconv.forward_requant(black_box(&xq), H, W, &rq, &mut out))
    });
}

fn bench_agent(c: &mut Criterion) {
    let (rec, _) = recognition_fixture();
    let info = rec.b_frames.first().expect("stream has B-frames");
    for (label, coalesce) in [("coalesced", true), ("scattered", false)] {
        c.bench_function(&format!("agent/reconstruct_{label}"), |b| {
            b.iter(|| {
                let mut dram = Dram::new(DramConfig::default());
                agent::reconstruct(
                    black_box(&info.mvs),
                    rec.width,
                    rec.height,
                    rec.mb_size,
                    coalesce,
                    &AgentConfig::default(),
                    &mut dram,
                    0.0,
                )
            })
        });
    }
}

fn bench_flow_and_oracle(c: &mut Criterion) {
    let seq = davis_sequence("libby", &SuiteConfig::tiny()).expect("sequence generates");
    c.bench_function("flow/estimate_64x48", |b| {
        b.iter(|| {
            estimate(
                black_box(&seq.frames[1]),
                &seq.frames[0],
                &FlowConfig::default(),
            )
        })
    });
    let nnl = LargeNet::new(LargeNetProfile::favos());
    c.bench_function("largenet/segment_64x48", |b| {
        b.iter(|| nnl.segment(black_box(&seq.gt_masks[0]), 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec, bench_reconstruction, bench_packed_masks, bench_featwarp, bench_nns, bench_conv, bench_quant, bench_agent, bench_flow_and_oracle
}
criterion_main!(benches);
