//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! Accuracy ablations (algorithm side): NN-S refinement on/off, sandwich
//! vs reconstruction-only input, bi-reference mean filter on/off.
//! Architecture ablations (hardware side): MV coalescing, lagged queue
//! switching, number of `tmp_B` buffers.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_score, fmt_x, Table};
use vr_dann::{ReconConfig, TrainTask, VrDannConfig};
use vrd_metrics::{mean_scores, SegScores};
use vrd_sim::{simulate, ExecMode, ParallelOptions};

/// One accuracy-ablation row.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Variant label.
    pub label: String,
    /// Mean accuracy over the suite.
    pub scores: SegScores,
}

/// One architecture-ablation row.
#[derive(Debug, Clone)]
pub struct ArchRow {
    /// Variant label.
    pub label: String,
    /// Mean time relative to the full architecture (1.0 = full, >1 slower).
    pub relative_time: f64,
    /// Mean model switches per sequence.
    pub switches: f64,
}

/// The complete ablation data.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Algorithm-side rows.
    pub accuracy: Vec<AccuracyRow>,
    /// Architecture-side rows.
    pub architecture: Vec<ArchRow>,
}

fn accuracy_of(ctx: &Context, label: &str, cfg: VrDannConfig) -> AccuracyRow {
    let model = ctx.train_variant(cfg, TrainTask::Segmentation);
    let scores = parallel_map(&ctx.davis, |seq| {
        let encoded = model.encode(seq).expect("ablation sequences encode");
        let run = model
            .run_segmentation(seq, &encoded)
            .expect("ablation sequences segment");
        ctx.score(seq, &run.masks)
    });
    AccuracyRow {
        label: label.to_string(),
        scores: mean_scores(&scores),
    }
}

/// Runs both ablation families.
pub fn run(ctx: &Context) -> Ablation {
    let base = VrDannConfig::default();
    let accuracy = vec![
        accuracy_of(ctx, "full VR-DANN", base),
        accuracy_of(
            ctx,
            "no NN-S refinement",
            VrDannConfig {
                refine: false,
                ..base
            },
        ),
        accuracy_of(
            ctx,
            "no sandwich (recon-only input)",
            VrDannConfig {
                sandwich: false,
                ..base
            },
        ),
        accuracy_of(
            ctx,
            "no mean filter (first ref wins)",
            VrDannConfig {
                recon: ReconConfig {
                    mean_filter: false,
                    ..ReconConfig::default()
                },
                ..base
            },
        ),
        accuracy_of(
            ctx,
            "adaptive fallback (p90 |mv| > 3px)",
            VrDannConfig {
                fallback_mv_threshold: Some(3.0),
                ..base
            },
        ),
    ];

    // Architecture: reuse the default model's traces.
    let traces: Vec<_> = parallel_map(&ctx.davis, |seq| ctx.run_vrdann(seq).1.trace);
    let variants: Vec<(&str, ParallelOptions)> = vec![
        ("full architecture", ParallelOptions::default()),
        (
            "no coalescing",
            ParallelOptions {
                coalesce: false,
                ..ParallelOptions::default()
            },
        ),
        (
            "no lagged switching",
            ParallelOptions {
                lagged_switching: false,
                ..ParallelOptions::default()
            },
        ),
        (
            "1 tmp_B buffer",
            ParallelOptions {
                tmp_b_buffers: Some(1),
                ..ParallelOptions::default()
            },
        ),
        (
            "2 tmp_B buffers",
            ParallelOptions {
                tmp_b_buffers: Some(2),
                ..ParallelOptions::default()
            },
        ),
        (
            "4 tmp_B buffers",
            ParallelOptions {
                tmp_b_buffers: Some(4),
                ..ParallelOptions::default()
            },
        ),
    ];
    let full_time: f64 = traces
        .iter()
        .map(|t| {
            simulate(
                t,
                ExecMode::VrDannParallel(ParallelOptions::default()),
                &ctx.sim,
            )
            .total_ns
        })
        .sum();
    let architecture = variants
        .into_iter()
        .map(|(label, opts)| {
            let (time, switches) = traces
                .iter()
                .map(|t| {
                    let r = simulate(t, ExecMode::VrDannParallel(opts), &ctx.sim);
                    (r.total_ns, r.switches)
                })
                .fold((0.0, 0usize), |acc, r| (acc.0 + r.0, acc.1 + r.1));
            ArchRow {
                label: label.to_string(),
                relative_time: time / full_time,
                switches: switches as f64 / traces.len() as f64,
            }
        })
        .collect();

    Ablation {
        accuracy,
        architecture,
    }
}

impl Ablation {
    /// Renders both tables.
    pub fn render(&self) -> String {
        let mut a = Table::new(vec!["algorithm variant", "F-score", "IoU"]);
        for r in &self.accuracy {
            a.row(vec![
                r.label.clone(),
                fmt_score(r.scores.f_score),
                fmt_score(r.scores.iou),
            ]);
        }
        let mut b = Table::new(vec![
            "architecture variant",
            "relative time",
            "switches/seq",
        ]);
        for r in &self.architecture {
            b.row(vec![
                r.label.clone(),
                fmt_x(r.relative_time),
                format!("{:.1}", r.switches),
            ]);
        }
        format!(
            "Ablation A: algorithm design choices (accuracy)\n{}\nAblation B: architecture design choices (performance)\n{}",
            a.render(),
            b.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn ablations_quick_show_each_mechanism_matters() {
        let ctx = Context::new(Scale::Quick);
        let ab = run(&ctx);
        let iou = |label: &str| {
            ab.accuracy
                .iter()
                .find(|r| r.label.contains(label))
                .map(|r| r.scores.iou)
                .expect("row exists")
        };
        // Refinement must help (that is the point of NN-S).
        assert!(iou("full") >= iou("no NN-S") - 0.005);
        let rel = |label: &str| {
            ab.architecture
                .iter()
                .find(|r| r.label.contains(label))
                .map(|r| r.relative_time)
                .expect("row exists")
        };
        assert!((rel("full architecture") - 1.0).abs() < 1e-9);
        assert!(rel("no coalescing") >= 1.0);
        assert!(rel("no lagged switching") > 1.0);
        // Three buffers suffice: a fourth gains nothing (paper §IV-C).
        assert!(rel("4 tmp_B") <= 1.001);
    }
}
