//! Prints the design-choice ablations. Pass --quick for the reduced scale.
use vrd_bench::{ablation, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", ablation::run(&ctx).render());
}
