//! Regenerates every figure and table in one run. Pass --quick for the
//! reduced scale.
use vrd_bench::*;
use vrd_sim::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let ctx = Context::new(scale);
    println!("{}", table02::render(&SimConfig::default()));
    println!("{}", fig03::run(&ctx).render());
    println!("{}", fig07::run(&ctx, 0).render(120));
    println!("{}", fig09::run(&ctx).render());
    println!("{}", fig10::run(&ctx).render());
    println!("{}", fig11::run(&ctx).render());
    println!("{}", fig12::run(&ctx).render());
    println!("{}", fig13::run(&ctx).render());
    println!("{}", featprop::run(&ctx).render());
    println!("{}", fig14::run(&ctx).render());
    println!("{}", fig15::run(&ctx).render());
    println!("{}", fig16::run(&ctx).render());
    println!("{}", fig17::run(&ctx).render());
    println!("{}", ablation::run(&ctx).render());
    let widths: &[usize] = match scale {
        Scale::Full => &[2, 4, 8, 16],
        Scale::Quick => &[2, 8],
    };
    println!("{}", nns_width::run(&ctx, widths).render());
    println!("{}", sensitivity::run(&ctx).render());
}
