//! Chaos harness: the serving workload replayed under seeded fault plans.
//!
//! Prints the scenario table and writes `results_chaos.txt` plus
//! machine-readable `BENCH_chaos.json`. Pass `--quick` for the reduced
//! scale. The run fails (exit 1) on any resilience-gate violation: the
//! quiet replay must be bit-identical to the plain scheduler, at a 10 %
//! work-item fault rate the recovery stack must deliver ≥ 95 % of offered
//! frames on contended rows where shed-only serves ≤ 80 %, and a single
//! NPU crash must lose zero sessions once checkpoints are on. CI also runs
//! this twice and diffs the JSON, so determinism is guarded byte-for-byte.

use vrd_bench::{chaos_bench, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    let sweep = chaos_bench::run(&ctx);
    let text = sweep.render();
    println!("{text}");
    if let Err(e) = std::fs::write("results_chaos.txt", &text) {
        eprintln!("could not write results_chaos.txt: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write("BENCH_chaos.json", sweep.to_json()) {
        eprintln!("could not write BENCH_chaos.json: {e}");
        std::process::exit(1);
    }

    let fails = sweep.acceptance_failures();
    if !fails.is_empty() {
        for f in &fails {
            eprintln!("acceptance check failed: {f}");
        }
        std::process::exit(1);
    }
}
