//! End-to-end wall-clock benchmark: the real decode → wave-front compute
//! path at 854×480-class resolution (864×480; see [`vrd_bench::e2e`]),
//! measured fps next to the simulator's predicted decoder ceiling.
//!
//! Usage:
//! `cargo run --release --bin e2e_bench [out.json] [--quick]
//!     [--min-e2e-speedup X]`
//!
//! `--quick` emits only deterministic fields (output digests across thread
//! counts, frame counts, simulated fps) so CI can run the binary twice and
//! `cmp` the artefact. Without it the run adds measured sequential vs
//! pipelined wall-clock fps.
//!
//! With `--min-e2e-speedup X` the run exits 1 if the measured pipelined
//! speedup falls below `X`. The gate needs real parallelism to mean
//! anything: on a host with fewer than two cores (or in `--quick` mode,
//! which measures nothing) it prints a notice and passes.

use vrd_bench::e2e::{render_json, run, E2eConfig};

fn main() {
    let mut out_path = None;
    let mut quick = false;
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--min-e2e-speedup" {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_speedup = Some(v),
                None => {
                    eprintln!("error: --min-e2e-speedup needs a numeric value");
                    std::process::exit(2);
                }
            }
        } else if out_path.is_none() {
            out_path = Some(arg);
        } else {
            eprintln!("error: unexpected argument {arg}");
            std::process::exit(2);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_e2e.json".into());

    let cfg = if quick {
        E2eConfig::quick()
    } else {
        E2eConfig::full()
    };
    let report = run(&cfg);
    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(min) = min_speedup {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        match &report.measured {
            _ if cores < 2 => {
                eprintln!(
                    "e2e speedup gate skipped: host has {cores} core(s); \
                     wall-clock parallel speedup is unmeasurable"
                );
            }
            None => {
                eprintln!("e2e speedup gate skipped: --quick measures nothing");
            }
            Some(m) => {
                if m.speedup < min {
                    eprintln!(
                        "e2e speedup check failed: {:.2}x, need >= {min:.2}x \
                         ({:.1} -> {:.1} fps on {} threads)",
                        m.speedup, m.sequential_fps, m.pipelined_fps, m.threads
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "e2e speedup check passed: {:.2}x >= {min:.2}x \
                     ({:.1} -> {:.1} fps on {} threads)",
                    m.speedup, m.sequential_fps, m.pipelined_fps, m.threads
                );
            }
        }
    }
}
