//! Prints the feature-propagation baseline comparison: fig13-style
//! performance/energy rows plus the accuracy-vs-NPU-load point for the
//! Jain & Gonzalez scheme. Pass --quick for the reduced scale.
use vrd_bench::{featprop, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", featprop::run(&ctx).render());
}
