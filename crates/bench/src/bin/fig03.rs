//! Prints the paper's fig03 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig03, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig03::run(&ctx).render());
}
