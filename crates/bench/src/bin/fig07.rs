//! Prints the paper's Fig. 7 execution timelines. Pass --quick for the
//! reduced scale; an optional integer argument picks the suite sequence.
use vrd_bench::{fig07, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    let idx = std::env::args()
        .filter_map(|a| a.parse::<usize>().ok())
        .next()
        .unwrap_or(0);
    println!("{}", fig07::run(&ctx, idx).render(120));
}
