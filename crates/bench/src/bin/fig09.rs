//! Prints the paper's fig09 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig09, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig09::run(&ctx).render());
}
