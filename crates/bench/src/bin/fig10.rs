//! Prints the paper's fig10 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig10, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig10::run(&ctx).render());
}
