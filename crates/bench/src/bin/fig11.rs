//! Prints the paper's fig11 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig11, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig11::run(&ctx).render());
}
