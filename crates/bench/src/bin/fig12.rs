//! Prints the paper's fig12 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig12, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig12::run(&ctx).render());
}
