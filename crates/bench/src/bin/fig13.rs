//! Prints the paper's Fig. 13 experiment (performance/energy vs FAVOS) and
//! the §VI-B high-definition fps result. Pass --quick for the reduced
//! scale (skips the HD run), --hd to include the 864x480 fps measurement.
use vrd_bench::{fig13, Context, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = Context::new(scale);
    println!("{}", fig13::run(&ctx).render());
    if std::env::args().any(|a| a == "--hd") && scale == Scale::Full {
        let (favos_fps, vrdann_fps, decoder_fps) = fig13::fps_hd(24);
        println!(
            "HD 864x480 recognition rate: FAVOS {favos_fps:.1} fps -> VR-DANN-parallel {vrdann_fps:.1} fps (decoder ceiling {decoder_fps:.1} fps)"
        );
    }
}
