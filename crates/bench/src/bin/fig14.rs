//! Prints the paper's fig14 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig14, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig14::run(&ctx).render());
}
