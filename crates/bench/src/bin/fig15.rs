//! Prints the paper's fig15 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig15, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig15::run(&ctx).render());
}
