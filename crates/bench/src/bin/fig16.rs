//! Prints the paper's fig16 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig16, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig16::run(&ctx).render());
}
