//! Prints the paper's fig17 experiment. Pass --quick for the reduced scale.
use vrd_bench::{fig17, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", fig17::run(&ctx).render());
}
