//! Fleet harness: shards × trace-driven load, plus the autoscaled spike.
//!
//! Prints the scaling table and writes `results_fleet.txt` plus
//! machine-readable `BENCH_fleet.json`. Pass `--quick` for the reduced
//! scale. The run fails (exit 1) on any scaling-gate violation: the
//! 8-shard row must hold ≥ 64 concurrent sessions at ≥ 0.8× ideal linear
//! throughput over the 1-shard baseline, and the autoscaler must hold the
//! p99 SLO through the 4× arrival spike (shedding reported, not hidden).
//! CI runs this twice and diffs the JSON, guarding determinism
//! byte-for-byte.

use vrd_bench::{fleet_bench, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    let bench = fleet_bench::run(&ctx);
    let text = bench.render();
    println!("{text}");
    if let Err(e) = std::fs::write("results_fleet.txt", &text) {
        eprintln!("could not write results_fleet.txt: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write("BENCH_fleet.json", bench.to_json()) {
        eprintln!("could not write BENCH_fleet.json: {e}");
        std::process::exit(1);
    }

    let fails = bench.acceptance_failures();
    if !fails.is_empty() {
        for f in &fails {
            eprintln!("acceptance check failed: {f}");
        }
        std::process::exit(1);
    }
}
