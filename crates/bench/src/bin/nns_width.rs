//! Prints the NN-S width design-space sweep. Pass --quick for the reduced
//! scale.
use vrd_bench::{nns_width, Context, Scale};

fn main() {
    let scale = Scale::from_args();
    let ctx = Context::new(scale);
    let widths: &[usize] = match scale {
        Scale::Full => &[2, 4, 8, 16],
        Scale::Quick => &[2, 8],
    };
    println!("{}", nns_width::run(&ctx, widths).render());
}
