//! Machine-readable performance snapshot of the NN compute path.
//!
//! Times the optimised kernels against the naive reference at the paper's
//! deployment resolution (854×480) and the training resolution (64×48),
//! then writes `BENCH_nn.json` for tooling / CI trend tracking. The JSON is
//! hand-rolled — the workspace carries no serialisation dependency.
//!
//! Usage: `cargo run --release --bin perf_snapshot [out.json]`

use std::time::Instant;
use vrd_nn::conv::{reference, Conv2d};
use vrd_nn::layers::{maxpool2_into, relu_in_place, sigmoid_in_place, upsample2_into};
use vrd_nn::{NnS, Tensor};

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// NN-S inference composed purely from the naive reference conv kernels —
/// the pre-optimisation baseline the speedup is measured against.
fn naive_infer(nns: &NnS, x: &Tensor) -> Tensor {
    let (c1, c2, c3) = nns.convs();
    let (h, w) = (x.height(), x.width());
    let hid = nns.hidden();
    let mut a1 = reference::forward(c1, x);
    relu_in_place(a1.as_mut_slice());
    let mut d = vec![0.0; hid * h * w / 4];
    maxpool2_into(a1.as_slice(), hid, h, w, &mut d);
    let mut a2 = reference::forward(c2, &Tensor::from_vec(hid, h / 2, w / 2, d));
    relu_in_place(a2.as_mut_slice());
    let mut cat = vec![0.0; 2 * hid * h * w];
    cat[..hid * h * w].copy_from_slice(a1.as_slice());
    upsample2_into(a2.as_slice(), hid, h / 2, w / 2, &mut cat[hid * h * w..]);
    let mut out = reference::forward(c3, &Tensor::from_vec(2 * hid, h, w, cat));
    sigmoid_in_place(out.as_mut_slice());
    out
}

struct Row {
    name: &'static str,
    optimized_ms: f64,
    naive_ms: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_nn.json".into());
    let mut rows = Vec::new();

    // --- NN-S refinement at deployment resolution (the headline number).
    let nns = NnS::new(8, 42);
    let hd = Tensor::from_vec(
        3,
        480,
        854,
        (0..3 * 480 * 854)
            .map(|v| (v as f32 * 0.01).sin())
            .collect(),
    );
    let fast = nns.infer(&hd);
    let slow = naive_infer(&nns, &hd);
    assert_eq!(fast.as_slice(), slow.as_slice(), "kernels diverged");
    rows.push(Row {
        name: "nns_infer_854x480",
        optimized_ms: time_median(5, || {
            std::hint::black_box(nns.infer(&hd));
        }) * 1e3,
        naive_ms: time_median(3, || {
            std::hint::black_box(naive_infer(&nns, &hd));
        }) * 1e3,
    });

    // --- Single conv layer, training resolution.
    let conv = Conv2d::new(3, 8, 3, 7);
    let x = Tensor::from_vec(
        3,
        48,
        64,
        (0..3 * 48 * 64).map(|v| (v as f32).cos()).collect(),
    );
    rows.push(Row {
        name: "conv_forward_64x48",
        optimized_ms: time_median(31, || {
            std::hint::black_box(conv.forward_inference(&x));
        }) * 1e3,
        naive_ms: time_median(31, || {
            std::hint::black_box(reference::forward(&conv, &x));
        }) * 1e3,
    });

    // --- Conv backward, training resolution.
    let mut conv_t = Conv2d::new(3, 8, 3, 7);
    let gout = conv_t.forward(&x);
    rows.push(Row {
        name: "conv_backward_64x48",
        optimized_ms: time_median(31, || {
            conv_t.zero_grad();
            std::hint::black_box(conv_t.backward(&gout));
        }) * 1e3,
        naive_ms: time_median(31, || {
            std::hint::black_box(reference::backward(&conv_t, &x, &gout));
        }) * 1e3,
    });

    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"optimized_ms\": {:.4}, \"naive_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.optimized_ms,
            r.naive_ms,
            r.naive_ms / r.optimized_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
}
