//! Machine-readable performance snapshot of the NN compute path and the
//! packed-mask kernels.
//!
//! Times the optimised kernels against the naive references at the paper's
//! deployment resolution (854×480) and the training resolution (64×48),
//! then writes `BENCH_nn.json` (NN kernels), `BENCH_recon.json` (packed
//! reconstruction / mean filter / tally / sandwich kernels) and
//! `BENCH_featprop.json` (the feature-warp kernel of the
//! feature-propagation baseline) for tooling and CI trend tracking. The
//! JSON is hand-rolled — the workspace carries no serialisation dependency.
//!
//! The NN-S deployment-resolution row is measured **once** per run on one
//! shared fixture and emitted into both `BENCH_nn.json` (with `int8_ms` /
//! `int8_speedup` alongside the f32 numbers) and `BENCH_quant.json`, so
//! the two artifacts can never disagree about the current baseline.
//!
//! Usage:
//! `cargo run --release --bin perf_snapshot [nn.json] [recon.json] [quant.json]
//!     [featprop.json] [--min-recon-speedup X] [--min-quant-speedup X]
//!     [--min-warp-speedup X]`
//!
//! With `--min-recon-speedup X` the run exits 1 if any packed-mask row's
//! speedup over its byte-wise reference falls below `X`; with
//! `--min-quant-speedup X` likewise if any `BENCH_quant.json` row's int8
//! speedup over the optimised f32 path falls below `X`; with
//! `--min-warp-speedup X` likewise for the feature-warp kernel against its
//! naive per-cell reference.

use std::collections::BTreeMap;
use vr_dann::{build_sandwich, recon, reconstruct_b_frame, sandwich, ReconConfig};
use vrd_bench::time_median;
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::{MvRecord, RefMv};
use vrd_metrics::segmentation::{reference as tally_reference, PixelCounts};
use vrd_nn::conv::{reference, Conv2d};
use vrd_nn::featwarp::{self, FeatureMap, WarpSource, FEATURE_CHANNELS, FEATURE_STRIDE};
use vrd_nn::layers::{maxpool2_into, relu_in_place, sigmoid_in_place, upsample2_into};
use vrd_nn::{NnS, QuantConv2d, Requant, Tensor};
use vrd_video::{mask, Seg2Plane, SegMask};

/// NN-S inference composed purely from the naive reference conv kernels —
/// the pre-optimisation baseline the speedup is measured against.
fn naive_infer(nns: &NnS, x: &Tensor) -> Tensor {
    let (c1, c2, c3) = nns.convs();
    let (h, w) = (x.height(), x.width());
    let hid = nns.hidden();
    let mut a1 = reference::forward(c1, x);
    relu_in_place(a1.as_mut_slice());
    let mut d = vec![0.0; hid * h * w / 4];
    maxpool2_into(a1.as_slice(), hid, h, w, &mut d);
    let mut a2 = reference::forward(c2, &Tensor::from_vec(hid, h / 2, w / 2, d));
    relu_in_place(a2.as_mut_slice());
    let mut cat = vec![0.0; 2 * hid * h * w];
    cat[..hid * h * w].copy_from_slice(a1.as_slice());
    upsample2_into(a2.as_slice(), hid, h / 2, w / 2, &mut cat[hid * h * w..]);
    let mut out = reference::forward(c3, &Tensor::from_vec(2 * hid, h, w, cat));
    sigmoid_in_place(out.as_mut_slice());
    out
}

struct Row {
    name: &'static str,
    optimized_ms: f64,
    naive_ms: f64,
    /// The quantized path's time for the same work on the same fixture,
    /// where one exists (only the NN-S HD row today).
    int8_ms: Option<f64>,
}

fn render_json(rows: &[Row]) -> String {
    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let int8 = r.int8_ms.map_or(String::new(), |ms| {
            format!(
                ", \"int8_ms\": {:.4}, \"int8_speedup\": {:.2}",
                ms,
                r.optimized_ms / ms
            )
        });
        json.push_str(&format!(
            "  \"{}\": {{\"optimized_ms\": {:.4}, \"naive_ms\": {:.4}, \"speedup\": {:.2}{}}}{}\n",
            r.name,
            r.optimized_ms,
            r.naive_ms,
            r.naive_ms / r.optimized_ms,
            int8,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    json
}

/// The NN-S deployment-resolution measurement, taken **once** per snapshot
/// on one shared fixture and reused by both `BENCH_nn.json` (opt vs naive,
/// plus the int8 figure) and `BENCH_quant.json` (f32 vs int8). Before this
/// existed the two artifacts timed the same network on different fixtures
/// in separate harnesses and their `nns_infer_854x480` baselines drifted.
struct NnsHdMeasurement {
    f32_ms: f64,
    naive_ms: f64,
    int8_ms: f64,
}

fn measure_nns_hd() -> NnsHdMeasurement {
    let mut nns = NnS::new(8, 42);
    let hd = Tensor::from_vec(
        3,
        480,
        854,
        (0..3 * 480 * 854)
            .map(|v| (v as f32 * 0.01).sin())
            .collect(),
    );
    let fast = nns.infer(&hd);
    let slow = naive_infer(&nns, &hd);
    assert_eq!(fast.as_slice(), slow.as_slice(), "kernels diverged");
    nns.calibrate(&[&hd]);
    let q = nns.quantize();
    NnsHdMeasurement {
        f32_ms: time_median(5, || {
            std::hint::black_box(nns.infer(&hd));
        }) * 1e3,
        naive_ms: time_median(3, || {
            std::hint::black_box(naive_infer(&nns, &hd));
        }) * 1e3,
        int8_ms: time_median(9, || {
            std::hint::black_box(q.infer(&hd));
        }) * 1e3,
    }
}

fn write_or_die(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {path}");
}

fn nn_rows(nns_hd: &NnsHdMeasurement) -> Vec<Row> {
    let mut rows = Vec::new();

    // --- NN-S refinement at deployment resolution (the headline number),
    // taken from the shared measurement so the int8 figure in this row and
    // the quant artifact's row are the same number.
    rows.push(Row {
        name: "nns_infer_854x480",
        optimized_ms: nns_hd.f32_ms,
        naive_ms: nns_hd.naive_ms,
        int8_ms: Some(nns_hd.int8_ms),
    });

    // --- Single conv layer, training resolution.
    let conv = Conv2d::new(3, 8, 3, 7);
    let x = Tensor::from_vec(
        3,
        48,
        64,
        (0..3 * 48 * 64).map(|v| (v as f32).cos()).collect(),
    );
    rows.push(Row {
        name: "conv_forward_64x48",
        optimized_ms: time_median(31, || {
            std::hint::black_box(conv.forward_inference(&x));
        }) * 1e3,
        naive_ms: time_median(31, || {
            std::hint::black_box(reference::forward(&conv, &x));
        }) * 1e3,
        int8_ms: None,
    });

    // --- Conv backward, training resolution.
    let mut conv_t = Conv2d::new(3, 8, 3, 7);
    let gout = conv_t.forward(&x);
    rows.push(Row {
        name: "conv_backward_64x48",
        optimized_ms: time_median(31, || {
            conv_t.zero_grad();
            std::hint::black_box(conv_t.backward(&gout));
        }) * 1e3,
        naive_ms: time_median(31, || {
            std::hint::black_box(reference::backward(&conv_t, &x, &gout));
        }) * 1e3,
        int8_ms: None,
    });

    rows
}

struct QuantRow {
    name: &'static str,
    f32_ms: f64,
    int8_ms: f64,
}

fn render_quant_json(rows: &[QuantRow]) -> String {
    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"f32_ms\": {:.4}, \"int8_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.f32_ms,
            r.int8_ms,
            r.f32_ms / r.int8_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    json
}

fn quant_rows(nns_hd: &NnsHdMeasurement) -> Vec<QuantRow> {
    let mut rows = Vec::new();

    // --- NN-S inference at deployment resolution: the optimised f32 path
    // (the PR 1 kernels, the previous production path) vs the calibrated
    // int8 path. Both run the full network including quantize/sigmoid, so
    // this is the end-to-end per-B-frame refinement cost. The numbers come
    // from the shared measurement, so this row and `BENCH_nn.json`'s
    // `nns_infer_854x480` row are the same run on the same fixture.
    rows.push(QuantRow {
        name: "nns_infer_854x480",
        f32_ms: nns_hd.f32_ms,
        int8_ms: nns_hd.int8_ms,
    });

    // --- One 8→8 3×3 conv layer at deployment resolution: the optimised
    // f32 forward vs the fused quantized forward+requant (the inner loop
    // the NPU's MAC array maps to).
    let conv = Conv2d::new(8, 8, 3, 7);
    let xf = Tensor::from_vec(
        8,
        480,
        854,
        (0..8 * 480 * 854).map(|v| (v % 97) as f32 / 96.0).collect(),
    );
    let qconv = QuantConv2d::from_conv(&conv);
    let xq: Vec<u8> = xf
        .as_slice()
        .iter()
        .map(|&v| ((v * 127.0) as i32).clamp(0, 127) as u8)
        .collect();
    let rq = vec![Requant::from_real(0.01, 0); 8];
    let mut out_q = vec![0u8; 8 * 480 * 854];
    rows.push(QuantRow {
        name: "conv_forward_854x480",
        f32_ms: time_median(5, || {
            std::hint::black_box(conv.forward_inference(&xf));
        }) * 1e3,
        int8_ms: time_median(9, || {
            qconv.forward_requant(&xq, 480, 854, &rq, &mut out_q);
            std::hint::black_box(&out_q);
        }) * 1e3,
    });

    rows
}

/// Deployment-resolution mask fixture: 854×480 with pseudo-random blobs.
fn hd_mask(seed: u64) -> SegMask {
    const W: usize = 854;
    const H: usize = 480;
    SegMask::from_bits(
        W,
        H,
        (0..W * H).map(|i| vrd_video::texture::hash2(i as i64, 43, seed) & 3 == 0),
    )
}

/// A full-coverage 16-px MV grid at 854×480 (53 block columns cover the
/// 848 coded pixels; H.264 streams pad the rest) with word-straddling
/// sources, half of them bi-predicted.
fn hd_bframe() -> BFrameInfo {
    const MB: u32 = 16;
    let mut mvs = Vec::new();
    for by in 0..(480 / MB) {
        for bx in 0..(854 / MB) {
            let s = vrd_video::texture::hash2(i64::from(bx), i64::from(by), 97);
            let ref0 = RefMv {
                frame: 0,
                src_x: (s % 854) as i32 - 13,
                src_y: ((s >> 8) % 480) as i32 - 7,
            };
            let ref1 = (s & 1 == 0).then_some(RefMv {
                frame: 4,
                src_x: ((s >> 16) % 854) as i32 - 13,
                src_y: ((s >> 24) % 480) as i32 - 7,
            });
            mvs.push(MvRecord {
                dst_x: bx * MB,
                dst_y: by * MB,
                ref0,
                ref1,
            });
        }
    }
    BFrameInfo {
        display_idx: 2,
        mvs,
        intra_blocks: vec![],
    }
}

fn recon_rows() -> Vec<Row> {
    const W: usize = 854;
    const H: usize = 480;
    let mut rows = Vec::new();

    let a = hd_mask(1);
    let b = hd_mask(2);
    let mut refs = BTreeMap::new();
    refs.insert(0u32, a.clone());
    refs.insert(4u32, b.clone());
    let info = hd_bframe();
    let cfg = ReconConfig::default();

    // --- B-frame reconstruction: shift-and-merge word moves vs per-pixel.
    let packed = reconstruct_b_frame(&info, &refs, W, H, 16, &cfg).expect("anchors present");
    let scalar =
        recon::reference::reconstruct_b_frame(&info, &refs, W, H, 16, &cfg).expect("anchors");
    assert_eq!(packed, scalar, "reconstruction kernels diverged");
    rows.push(Row {
        name: "reconstruct_854x480",
        optimized_ms: time_median(31, || {
            std::hint::black_box(reconstruct_b_frame(&info, &refs, W, H, 16, &cfg).unwrap());
        }) * 1e3,
        naive_ms: time_median(9, || {
            std::hint::black_box(
                recon::reference::reconstruct_b_frame(&info, &refs, W, H, 16, &cfg).unwrap(),
            );
        }) * 1e3,
        int8_ms: None,
    });

    // --- Whole-frame bi-reference mean filter: AND/XOR vs per-pixel.
    assert_eq!(
        Seg2Plane::mean_filter(&a, &b),
        mask::reference::mean_filter(&a, &b),
        "mean filter kernels diverged"
    );
    rows.push(Row {
        name: "mean_filter_854x480",
        optimized_ms: time_median(31, || {
            std::hint::black_box(Seg2Plane::mean_filter(&a, &b));
        }) * 1e3,
        naive_ms: time_median(9, || {
            std::hint::black_box(mask::reference::mean_filter(&a, &b));
        }) * 1e3,
        int8_ms: None,
    });

    // --- IoU tally: popcounts over packed words vs the byte-wise loop the
    // masks used to be stored as.
    let (pred_bytes, gt_bytes) = (a.to_byte_vec(), b.to_byte_vec());
    assert_eq!(
        PixelCounts::tally(&a, &b),
        tally_reference::tally_bytes(&pred_bytes, &gt_bytes),
        "tally kernels diverged"
    );
    rows.push(Row {
        name: "tally_854x480",
        optimized_ms: time_median(31, || {
            std::hint::black_box(PixelCounts::tally(&a, &b));
        }) * 1e3,
        naive_ms: time_median(31, || {
            std::hint::black_box(tally_reference::tally_bytes(&pred_bytes, &gt_bytes));
        }) * 1e3,
        int8_ms: None,
    });

    // --- Sandwich assembly: fused packed→f32 expansion vs per-pixel sets.
    assert_eq!(
        build_sandwich(2, &packed, &refs).unwrap().as_slice(),
        sandwich::reference::build_sandwich(2, &packed, &refs)
            .unwrap()
            .as_slice(),
        "sandwich kernels diverged"
    );
    rows.push(Row {
        name: "sandwich_854x480",
        optimized_ms: time_median(31, || {
            std::hint::black_box(build_sandwich(2, &packed, &refs).unwrap());
        }) * 1e3,
        naive_ms: time_median(9, || {
            std::hint::black_box(sandwich::reference::build_sandwich(2, &packed, &refs).unwrap());
        }) * 1e3,
        int8_ms: None,
    });

    rows
}

/// Full-frame feature warp at deployment resolution: every 16-px block of
/// an 854×480 frame resampled from two cached anchor maps, half of the
/// blocks bi-predicted — the per-B-frame kernel cost of the
/// feature-propagation baseline.
fn featprop_rows() -> Vec<Row> {
    const W: usize = 854;
    const H: usize = 480;
    const MB: usize = 16;
    let filled = |salt: u64| {
        let mut m = FeatureMap::zeros(W, H, FEATURE_STRIDE, FEATURE_CHANNELS);
        for (i, v) in m.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            *v = ((i as u64 ^ salt) % 97) as f32 / 96.0;
        }
        m
    };
    let (a, b) = (filled(3), filled(11));
    type WarpBlock = (usize, usize, i32, i32, Option<(i32, i32)>);
    let blocks: Vec<WarpBlock> = (0..H / MB)
        .flat_map(|by| (0..W / MB).map(move |bx| (bx, by)))
        .map(|(bx, by)| {
            let s = vrd_video::texture::hash2(bx as i64, by as i64, 131);
            (
                bx * MB,
                by * MB,
                (s % 61) as i32 - 30,
                ((s >> 8) % 61) as i32 - 30,
                (s & 1 == 0)
                    .then_some((((s >> 16) % 61) as i32 - 30, ((s >> 24) % 61) as i32 - 30)),
            )
        })
        .collect();
    let warp_frame = |out: &mut FeatureMap, optimized: bool| {
        for &(dx_px, dy_px, dx, dy, second) in &blocks {
            let first = WarpSource { feat: &a, dx, dy };
            let second = second.map(|(dx, dy)| WarpSource { feat: &b, dx, dy });
            if optimized {
                featwarp::warp_block(out, dx_px, dy_px, MB, first, second);
            } else {
                featwarp::reference::warp_block(out, dx_px, dy_px, MB, first, second);
            }
        }
    };
    let mut fast = FeatureMap::zeros(W, H, FEATURE_STRIDE, FEATURE_CHANNELS);
    let mut slow = FeatureMap::zeros(W, H, FEATURE_STRIDE, FEATURE_CHANNELS);
    warp_frame(&mut fast, true);
    warp_frame(&mut slow, false);
    assert_eq!(
        fast.tensor().as_slice(),
        slow.tensor().as_slice(),
        "warp kernels diverged"
    );
    vec![Row {
        name: "featwarp_854x480",
        optimized_ms: time_median(31, || {
            warp_frame(&mut fast, true);
            std::hint::black_box(&fast);
        }) * 1e3,
        naive_ms: time_median(9, || {
            warp_frame(&mut slow, false);
            std::hint::black_box(&slow);
        }) * 1e3,
        int8_ms: None,
    }]
}

fn main() {
    let mut nn_path = None;
    let mut recon_path = None;
    let mut quant_path = None;
    let mut featprop_path = None;
    let mut min_recon_speedup: Option<f64> = None;
    let mut min_quant_speedup: Option<f64> = None;
    let mut min_warp_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--min-recon-speedup"
            || arg == "--min-quant-speedup"
            || arg == "--min-warp-speedup"
        {
            let v = args.next().and_then(|v| v.parse().ok());
            match v {
                Some(v) if arg == "--min-recon-speedup" => min_recon_speedup = Some(v),
                Some(v) if arg == "--min-quant-speedup" => min_quant_speedup = Some(v),
                Some(v) => min_warp_speedup = Some(v),
                None => {
                    eprintln!("error: {arg} needs a numeric value");
                    std::process::exit(2);
                }
            }
        } else if nn_path.is_none() {
            nn_path = Some(arg);
        } else if recon_path.is_none() {
            recon_path = Some(arg);
        } else if quant_path.is_none() {
            quant_path = Some(arg);
        } else {
            featprop_path = Some(arg);
        }
    }
    let nn_path = nn_path.unwrap_or_else(|| "BENCH_nn.json".into());
    let recon_path = recon_path.unwrap_or_else(|| "BENCH_recon.json".into());
    let quant_path = quant_path.unwrap_or_else(|| "BENCH_quant.json".into());
    let featprop_path = featprop_path.unwrap_or_else(|| "BENCH_featprop.json".into());

    // One NN-S HD measurement shared by the nn and quant artifacts.
    let nns_hd = measure_nns_hd();
    write_or_die(&nn_path, &render_json(&nn_rows(&nns_hd)));

    let recon = recon_rows();
    write_or_die(&recon_path, &render_json(&recon));

    let quant = quant_rows(&nns_hd);
    write_or_die(&quant_path, &render_quant_json(&quant));

    let featprop = featprop_rows();
    write_or_die(&featprop_path, &render_json(&featprop));

    let mut ok = true;
    if let Some(min) = min_recon_speedup {
        for r in &recon {
            let speedup = r.naive_ms / r.optimized_ms;
            if speedup < min {
                eprintln!(
                    "speedup check failed: {} is {speedup:.2}x, need >= {min:.2}x",
                    r.name
                );
                ok = false;
            }
        }
    }
    if let Some(min) = min_warp_speedup {
        for r in &featprop {
            let speedup = r.naive_ms / r.optimized_ms;
            if speedup < min {
                eprintln!(
                    "warp speedup check failed: {} is {speedup:.2}x, need >= {min:.2}x",
                    r.name
                );
                ok = false;
            }
        }
    }
    if let Some(min) = min_quant_speedup {
        for r in &quant {
            let speedup = r.f32_ms / r.int8_ms;
            if speedup < min {
                eprintln!(
                    "quant speedup check failed: {} is {speedup:.2}x, need >= {min:.2}x",
                    r.name
                );
                ok = false;
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
