//! Resilience sweep: accuracy vs injected loss rate.
//!
//! Prints the degradation-curve table and writes `results_resilience.txt`
//! plus machine-readable `results_resilience.json`. Pass `--quick` for the
//! reduced scale; `--smoke` sweeps a single loss rate (the CI smoke check).

use vrd_bench::{resilience, Context, Scale};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ctx = Context::new(Scale::from_args());
    let sweep = if smoke {
        resilience::run_rates(&ctx, &[resilience::SMOKE_RATE])
    } else {
        resilience::run(&ctx)
    };
    let text = sweep.render();
    println!("{text}");
    if let Err(e) = std::fs::write("results_resilience.txt", &text) {
        eprintln!("could not write results_resilience.txt: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write("results_resilience.json", sweep.to_json()) {
        eprintln!("could not write results_resilience.json: {e}");
        std::process::exit(1);
    }
    if smoke {
        // The smoke row must show planted faults that were concealed, not a
        // silently clean pass.
        let row = &sweep.rows[0];
        let concealed = row.seg_bmv.concealment.total();
        if row.seg_bmv.fault_events == 0 || concealed == 0 {
            eprintln!(
                "smoke check planted {} faults but concealed {concealed}",
                row.seg_bmv.fault_events
            );
            std::process::exit(1);
        }
    }
}
