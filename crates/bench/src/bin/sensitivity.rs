//! Prints the platform sensitivity study. Pass --quick for the reduced
//! scale.
use vrd_bench::{sensitivity, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    println!("{}", sensitivity::run(&ctx).render());
}
