//! Serving sweep: 1→K concurrent sessions on one shared virtual NPU.
//!
//! Prints the FIFO-vs-batching table and writes `results_serve.txt` plus
//! machine-readable `BENCH_serve.json`. Pass `--quick` for the reduced
//! scale. The run fails (exit 1) if any contended row — ≥ 4 admitted
//! sessions — does not show the batching scheduler strictly beating
//! per-stream FIFO on both model switches and p99 frame latency, so CI
//! guards the subsystem's headline claim, not just its determinism.

use vrd_bench::{serve_bench, Context, Scale};

fn main() {
    let ctx = Context::new(Scale::from_args());
    let sweep = serve_bench::run(&ctx);
    let text = sweep.render();
    println!("{text}");
    if let Err(e) = std::fs::write("results_serve.txt", &text) {
        eprintln!("could not write results_serve.txt: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write("BENCH_serve.json", sweep.to_json()) {
        eprintln!("could not write BENCH_serve.json: {e}");
        std::process::exit(1);
    }

    let mut contended = 0usize;
    for r in sweep.contended_rows() {
        contended += 1;
        if r.batched.switches >= r.fifo.switches
            || r.batched.latency.p99_ns >= r.fifo.latency.p99_ns
        {
            eprintln!(
                "acceptance check failed at {} sessions: switches {} vs {}, p99 {:.0} vs {:.0}",
                r.requested,
                r.batched.switches,
                r.fifo.switches,
                r.batched.latency.p99_ns,
                r.fifo.latency.p99_ns
            );
            std::process::exit(1);
        }
    }
    if contended == 0 {
        eprintln!("acceptance check failed: no row admitted >= 4 sessions");
        std::process::exit(1);
    }
}
