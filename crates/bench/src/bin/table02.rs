//! Prints the paper's Table II configuration summary.
use vrd_sim::SimConfig;

fn main() {
    println!("{}", vrd_bench::table02::render(&SimConfig::default()));
}
