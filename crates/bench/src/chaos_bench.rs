//! Chaos sweep: the serving workload replayed under seeded fault timelines.
//!
//! Reuses the `serve_bench` workload (K concurrent DAVIS-like sessions on
//! one shared virtual NPU) but replays the admitted work through
//! [`vrd_serve::schedule_chaos`] against deterministic fault plans. Each
//! session count pays the real NN-L/NN-S compute **once** (via
//! [`vrd_serve::admit_and_drive`]); every scenario is then a pure replay of
//! the same stamped work:
//!
//! * `clean` — a quiet fault profile. Must be byte-identical to the plain
//!   [`vrd_serve::schedule`] replay under both policies: the fault
//!   branches change no arithmetic when nothing fires.
//! * `itemfail10-shed` — 10 % work-item failures (plus the profile's
//!   transient stalls) under the PR-4 shed-only posture: one attempt per
//!   item, misses dropped at the deadline.
//! * `itemfail10-ladder` — the same fault timeline with the full recovery
//!   stack: bounded-backoff retries and the graceful-degradation ladder.
//! * `crash-shed` — a single NPU crash/recover window with no checkpoints:
//!   sessions with device-resident work die.
//! * `crash-restore` — the same crash with checkpoint restore: every
//!   session resumes after the outage plus the restore penalty.
//!
//! The acceptance gates (enforced by the `chaos_bench` binary and the
//! quick-scale test) mirror the resilience claims: on contended rows the
//! ladder delivers ≥ 95 % of offered frames where shed-only serves ≤ 80 %,
//! and checkpoints turn "sessions lost" into "zero lost, all frames
//! delivered". Everything is deterministic: reruns are byte-identical.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_pct, Table};
use vrd_codec::EncodedVideo;
use vrd_serve::{
    admit_and_drive, schedule, schedule_chaos, ChaosConfig, ChaosOutcome, DrivenSession,
    LatencyStats, NpuFaultProfile, RecoveryConfig, SchedConfig, SchedPolicy, ScheduleOutcome,
    ServeConfig,
};

/// The session counts the sweep offers (the serve sweep's contended tail
/// plus a light row so the fault scenarios are also exercised uncontended).
pub const SESSIONS: [usize; 3] = [1, 4, 6];

/// Work-item failure rate of the head-line fault scenario.
pub const FAIL_RATE: f64 = 0.10;

/// Seed for every fault lottery in the sweep.
pub const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// One scenario's chaos replay, flattened for reporting.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario name (`clean`, `itemfail10-shed`, ...).
    pub name: &'static str,
    /// Work items offered across the admitted sessions.
    pub frames_offered: usize,
    /// Frames delivered at their session's own fidelity.
    pub frames_full: usize,
    /// Frames delivered degraded (ladder rung or copy-forward).
    pub frames_degraded: usize,
    /// Frames dropped at the deadline.
    pub frames_shed: usize,
    /// Frames lost to a crash kill.
    pub frames_lost: usize,
    /// Delivered fraction of the offered load.
    pub delivered_frac: f64,
    /// Sessions killed by the crash window.
    pub sessions_lost: usize,
    /// Checkpoint restores paid.
    pub restores: usize,
    /// Failed attempts that were retried.
    pub retries: usize,
    /// Items whose retry budget ran out.
    pub retry_exhausted: usize,
    /// Deadline misses delivered as copy-forward.
    pub watchdog_degraded: usize,
    /// Ladder rungs stepped down across sessions.
    pub downgrades: usize,
    /// Ladder rungs stepped back up across sessions.
    pub upgrades: usize,
    /// Transient stalls drawn.
    pub stalls: usize,
    /// Crash windows hit.
    pub crashes: usize,
    /// Service time burnt by failed attempts and crash-voided work.
    pub wasted_ns: f64,
    /// Wall time to the last NPU event.
    pub makespan_ns: f64,
    /// Arrival → delivery latency over delivered frames.
    pub latency: LatencyStats,
}

impl ScenarioSummary {
    fn new(name: &'static str, o: &ChaosOutcome) -> Self {
        Self {
            name,
            frames_offered: o.frames_offered,
            frames_full: o.frames_full,
            frames_degraded: o.frames_degraded,
            frames_shed: o.frames_shed,
            frames_lost: o.frames_lost,
            delivered_frac: o.delivered_fraction(),
            sessions_lost: o.sessions_lost,
            restores: o.session_restores,
            retries: o.retries,
            retry_exhausted: o.retry_exhausted,
            watchdog_degraded: o.watchdog_degraded,
            downgrades: o.per_session.iter().map(|p| p.degradation.downgrades).sum(),
            upgrades: o.per_session.iter().map(|p| p.degradation.upgrades).sum(),
            stalls: o.stalls,
            crashes: o.crashes,
            wasted_ns: o.wasted_ns,
            makespan_ns: o.makespan_ns,
            latency: o.latency,
        }
    }
}

/// One session count's chaos results (all replays under the batching
/// policy — the serving discipline the subsystem actually runs).
#[derive(Debug, Clone)]
pub struct ChaosBenchRow {
    /// Sessions offered.
    pub requested: usize,
    /// Sessions the SLO admitted.
    pub admitted: usize,
    /// Whether the quiet-profile chaos replay reproduced the plain
    /// [`schedule`] replay bit-for-bit under **both** policies.
    pub clean_matches_plain: bool,
    /// The shedding deadline the fault scenarios ran with, derived from
    /// the clean replay's latency distribution (just above the p50) so
    /// quick and full scales stress comparably.
    pub deadline_ns: f64,
    /// When the single crash window opens, on the NPU clock.
    pub crash_at_ns: f64,
    /// How long the NPU stays down.
    pub crash_down_ns: f64,
    /// Scenario replays, fixed order: clean, itemfail10-shed,
    /// itemfail10-ladder, crash-shed, crash-restore.
    pub scenarios: Vec<ScenarioSummary>,
}

impl ChaosBenchRow {
    /// Looks a scenario up by name.
    pub fn scenario(&self, name: &str) -> &ScenarioSummary {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no scenario named {name}"))
    }
}

/// The complete chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosBench {
    /// One row per offered session count, ascending.
    pub rows: Vec<ChaosBenchRow>,
}

/// Quiet chaos must reproduce the plain replay's arithmetic exactly.
fn matches_plain(c: &ChaosOutcome, p: &ScheduleOutcome) -> bool {
    c.frames_full == p.frames_served
        && c.frames_degraded == 0
        && c.frames_shed == p.frames_shed
        && c.frames_lost == 0
        && c.switches == p.switches
        && c.switch_ns == p.switch_ns
        && c.busy_ns == p.busy_ns
        && c.makespan_ns == p.makespan_ns
        && c.max_queue_depth == p.max_queue_depth
        && c.mean_queue_depth == p.mean_queue_depth
        && c.decoder_stalls == p.decoder_stalls
        && c.latency == p.latency
}

fn run_row(requested: usize, driven: &[DrivenSession], cfg: &ServeConfig) -> ChaosBenchRow {
    let sim = &cfg.sim;
    let quiet = ChaosConfig {
        faults: NpuFaultProfile::none(),
        recovery: RecoveryConfig::default(),
    };

    // Clean identity: the quiet replay against the plain scheduler, both
    // policies, the serve-bench configuration (no deadline).
    let mut clean_matches_plain = true;
    let mut clean_batch: Option<ChaosOutcome> = None;
    for policy in [SchedPolicy::Fifo, SchedPolicy::Batch] {
        let plain = schedule(driven, policy, &cfg.sched, sim).expect("plain replay");
        let chaos =
            schedule_chaos(driven, policy, &cfg.sched, sim, &quiet).expect("quiet chaos replay");
        clean_matches_plain &= matches_plain(&chaos, &plain);
        if policy == SchedPolicy::Batch {
            clean_batch = Some(chaos);
        }
    }
    let clean = clean_batch.expect("batch policy replayed");

    // The fault scenarios' deadline scales with the clean tail latency
    // (just past the p95, so only genuinely late frames are at risk and
    // quick and full runs shed under comparable relative pressure). The
    // crash window opens at the median work-item hand-over instant — by
    // construction the NPU has device-resident work then, whatever the
    // scale — and stays down for a makespan-relative outage.
    let deadline_ns = (0.9 * clean.latency.p50_ns + 0.1 * clean.latency.p95_ns).max(1.0);
    let mut ready: Vec<f64> = driven
        .iter()
        .flat_map(|d| d.items.iter().map(|i| i.ready_ns))
        .collect();
    ready.sort_by(f64::total_cmp);
    let crash_at_ns = ready.get(ready.len() / 2).copied().unwrap_or(0.0) + 1.0;
    let crash_down_ns = 0.1 * clean.makespan_ns;

    let deadline_cfg = SchedConfig {
        shed_after_ns: Some(deadline_ns),
        ..cfg.sched
    };
    let faults = NpuFaultProfile::chaos(FAIL_RATE, CHAOS_SEED);
    let crash = NpuFaultProfile::single_crash(crash_at_ns, crash_down_ns);

    let replay = |sched: &SchedConfig, faults: &NpuFaultProfile, recovery: RecoveryConfig| {
        let chaos = ChaosConfig {
            faults: faults.clone(),
            recovery,
        };
        schedule_chaos(driven, SchedPolicy::Batch, sched, sim, &chaos).expect("chaos replay")
    };

    let scenarios = vec![
        ScenarioSummary::new("clean", &clean),
        ScenarioSummary::new(
            "itemfail10-shed",
            &replay(&deadline_cfg, &faults, RecoveryConfig::shed_only()),
        ),
        ScenarioSummary::new(
            "itemfail10-ladder",
            &replay(&deadline_cfg, &faults, RecoveryConfig::default()),
        ),
        ScenarioSummary::new(
            "crash-shed",
            &replay(&cfg.sched, &crash, RecoveryConfig::shed_only()),
        ),
        ScenarioSummary::new(
            "crash-restore",
            &replay(&cfg.sched, &crash, RecoveryConfig::default()),
        ),
    ];

    ChaosBenchRow {
        requested,
        admitted: driven.len(),
        clean_matches_plain,
        deadline_ns,
        crash_at_ns,
        crash_down_ns,
        scenarios,
    }
}

/// Runs the sweep at the given offered-session counts.
pub fn run_sessions(ctx: &Context, sessions: &[usize]) -> ChaosBench {
    let encoded: Vec<EncodedVideo> = parallel_map(&ctx.davis, |seq| {
        ctx.model.encode(seq).expect("suite sequences encode")
    });
    let cfg = ServeConfig {
        sim: ctx.sim,
        ..ServeConfig::default()
    };
    let mut rows = Vec::with_capacity(sessions.len());
    for &k in sessions {
        let requests: Vec<_> = (0..k)
            .map(|i| {
                let j = i % ctx.davis.len();
                (&ctx.davis[j], &encoded[j])
            })
            .collect();
        // The real compute, paid once; every scenario replays this work.
        let (_, driven, _) =
            admit_and_drive(&ctx.model, &requests, &cfg).expect("admitted suite sessions drive");
        rows.push(run_row(k, &driven, &cfg));
    }
    ChaosBench { rows }
}

/// Runs the full sweep (all counts in [`SESSIONS`]).
pub fn run(ctx: &Context) -> ChaosBench {
    run_sessions(ctx, &SESSIONS)
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

impl ChaosBench {
    /// Rows with enough admitted sessions for the NPU to be contended —
    /// where the resilience gates apply (≥ 4, the serve-bench regime).
    pub fn contended_rows(&self) -> impl Iterator<Item = &ChaosBenchRow> {
        self.rows.iter().filter(|r| r.admitted >= 4)
    }

    /// Every acceptance-gate violation in the sweep (empty = pass).
    ///
    /// Gates, per contended row: the quiet replay is bit-identical to the
    /// plain scheduler; at a 10 % work-item fault rate the shed-only
    /// posture serves ≤ 80 % while the recovery stack delivers ≥ 95 %;
    /// a single NPU crash kills sessions without checkpoints and loses
    /// nothing with them.
    pub fn acceptance_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        let mut contended = 0usize;
        for r in self.contended_rows() {
            contended += 1;
            let k = r.requested;
            if !r.clean_matches_plain {
                fails.push(format!("{k} sessions: quiet chaos != plain schedule"));
            }
            let shed = r.scenario("itemfail10-shed");
            if shed.delivered_frac > 0.80 {
                fails.push(format!(
                    "{k} sessions: shed-only served {:.1}% > 80% at {:.0}% faults",
                    100.0 * shed.delivered_frac,
                    100.0 * FAIL_RATE
                ));
            }
            let ladder = r.scenario("itemfail10-ladder");
            if ladder.delivered_frac < 0.95 {
                fails.push(format!(
                    "{k} sessions: recovery stack delivered {:.1}% < 95%",
                    100.0 * ladder.delivered_frac
                ));
            }
            let crash = r.scenario("crash-shed");
            if crash.sessions_lost == 0 {
                fails.push(format!(
                    "{k} sessions: crash without checkpoints killed nobody"
                ));
            }
            let restore = r.scenario("crash-restore");
            if restore.sessions_lost != 0
                || restore.frames_lost != 0
                || restore.frames_full + restore.frames_degraded + restore.frames_shed
                    != restore.frames_offered
            {
                fails.push(format!(
                    "{k} sessions: checkpointed crash lost {} sessions / {} frames",
                    restore.sessions_lost, restore.frames_lost
                ));
            }
        }
        if contended == 0 {
            fails.push("no row admitted >= 4 sessions".to_string());
        }
        fails
    }

    /// Renders the chaos table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "sessions",
            "scenario",
            "delivered",
            "full",
            "degraded",
            "shed",
            "lost",
            "sess lost",
            "restores",
            "retries",
            "p99 ms",
            "span ms",
        ]);
        for r in &self.rows {
            for s in &r.scenarios {
                t.row(vec![
                    r.requested.to_string(),
                    s.name.to_string(),
                    fmt_pct(s.delivered_frac),
                    s.frames_full.to_string(),
                    s.frames_degraded.to_string(),
                    s.frames_shed.to_string(),
                    s.frames_lost.to_string(),
                    s.sessions_lost.to_string(),
                    s.restores.to_string(),
                    s.retries.to_string(),
                    fmt_ms(s.latency.p99_ns),
                    fmt_ms(s.makespan_ns),
                ]);
            }
        }
        format!(
            "Chaos: fault-injected serving, shed-only vs retry/checkpoint/ladder recovery\n{}",
            t.render()
        )
    }

    /// Machine-readable JSON of the sweep (hand-rolled — the workspace
    /// carries no serialisation dependency).
    pub fn to_json(&self) -> String {
        fn scenario_json(s: &ScenarioSummary) -> String {
            format!(
                "{{\"name\":\"{}\",\"frames_offered\":{},\"frames_full\":{},\
                 \"frames_degraded\":{},\"frames_shed\":{},\"frames_lost\":{},\
                 \"delivered_frac\":{:.6},\"sessions_lost\":{},\"restores\":{},\
                 \"retries\":{},\"retry_exhausted\":{},\"watchdog_degraded\":{},\
                 \"downgrades\":{},\"upgrades\":{},\"stalls\":{},\"crashes\":{},\
                 \"wasted_ns\":{:.1},\"makespan_ns\":{:.1},\
                 \"latency\":{{\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p95_ns\":{:.1},\
                 \"p99_ns\":{:.1},\"max_ns\":{:.1}}}}}",
                s.name,
                s.frames_offered,
                s.frames_full,
                s.frames_degraded,
                s.frames_shed,
                s.frames_lost,
                s.delivered_frac,
                s.sessions_lost,
                s.restores,
                s.retries,
                s.retry_exhausted,
                s.watchdog_degraded,
                s.downgrades,
                s.upgrades,
                s.stalls,
                s.crashes,
                s.wasted_ns,
                s.makespan_ns,
                s.latency.mean_ns,
                s.latency.p50_ns,
                s.latency.p95_ns,
                s.latency.p99_ns,
                s.latency.max_ns,
            )
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let scenarios: Vec<String> = r.scenarios.iter().map(scenario_json).collect();
                format!(
                    "    {{\"sessions\":{},\"admitted\":{},\"clean_matches_plain\":{},\
                     \"deadline_ns\":{:.1},\"crash_at_ns\":{:.1},\"crash_down_ns\":{:.1},\
                     \"scenarios\":[\n      {}\n    ]}}",
                    r.requested,
                    r.admitted,
                    r.clean_matches_plain,
                    r.deadline_ns,
                    r.crash_at_ns,
                    r.crash_down_ns,
                    scenarios.join(",\n      "),
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"chaos\",\n  \"seed\": {},\n  \"fail_rate\": {:.2},\n  \"rows\": [\n{}\n  ]\n}}\n",
            CHAOS_SEED,
            FAIL_RATE,
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn chaos_quick_gates_hold_and_reports_render() {
        let ctx = Context::new(Scale::Quick);
        let sweep = run_sessions(&ctx, &[1, 4]);
        assert_eq!(sweep.rows.len(), 2);

        // Every acceptance gate holds at quick scale — the same predicate
        // the binary exits nonzero on.
        let fails = sweep.acceptance_failures();
        assert!(fails.is_empty(), "acceptance gates failed: {fails:?}");

        // The quiet replay reproduces the plain scheduler on every row,
        // contended or not.
        for r in &sweep.rows {
            assert!(r.clean_matches_plain, "{} sessions drifted", r.requested);
            let clean = r.scenario("clean");
            assert_eq!(clean.frames_full, clean.frames_offered);
            assert_eq!(clean.retries + clean.stalls + clean.crashes, 0);
        }

        // The contended row separates the postures: shed-only loses real
        // frames, the recovery stack delivers (degraded allowed), the
        // checkpointed crash pays restores instead of losing sessions.
        let r = &sweep.rows[1];
        assert!(r.admitted >= 4, "quick scale no longer contends at K=4");
        let shed = r.scenario("itemfail10-shed");
        assert!(shed.frames_shed > 0);
        let ladder = r.scenario("itemfail10-ladder");
        assert!(ladder.retries > 0);
        assert!(ladder.delivered_frac >= 0.95);
        assert!(r.scenario("crash-shed").sessions_lost > 0);
        let restore = r.scenario("crash-restore");
        assert_eq!(restore.sessions_lost, 0);
        assert!(restore.restores > 0);

        // Deterministic: a rerun over the same context is byte-identical.
        let again = run_sessions(&ctx, &[1, 4]);
        assert_eq!(sweep.to_json(), again.to_json());

        let text = sweep.render();
        assert!(text.contains("Chaos"));
        assert!(text.contains("itemfail10-ladder"));
        assert!(text.contains("crash-restore"));
        let json = sweep.to_json();
        assert!(json.contains("\"experiment\": \"chaos\""));
        assert!(json.contains("\"clean_matches_plain\":true"));
        assert!(json.contains("\"delivered_frac\""));
    }
}
