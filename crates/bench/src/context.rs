//! Shared experiment context: suites, trained models and common runners.
//!
//! Every figure binary builds a [`Context`] once (training NN-S is the
//! expensive part) and then runs its sweep. [`Scale::Quick`] shrinks the
//! canvas, the sequence count and the training set so criterion benches and
//! CI runs stay fast; [`Scale::Full`] is the paper-scale configuration every
//! number in `EXPERIMENTS.md` was produced with.

use vr_dann::{ComputeMode, SegmentationRun, TrainTask, VrDann, VrDannConfig};
use vrd_codec::{CodecConfig, EncodedVideo};
use vrd_metrics::{score_sequence, SegScores};
use vrd_sim::{ExecMode, ParallelOptions, SimConfig, SimReport};
use vrd_video::davis::{davis_train_suite, davis_val_suite, SuiteConfig};
use vrd_video::vid::vid_val_suite;
use vrd_video::Sequence;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale: 160×96 × 48 frames, all 20 DAVIS-like videos.
    Full,
    /// Reduced: 64×48 × 16 frames, 6 videos — for benches and smoke runs.
    Quick,
}

impl Scale {
    /// Parses `--quick` from a binary's arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// The video-suite configuration of this scale.
    pub fn suite_config(self) -> SuiteConfig {
        match self {
            Scale::Full => SuiteConfig::default(),
            Scale::Quick => SuiteConfig::tiny(),
        }
    }

    /// Training sequences for NN-S.
    pub fn train_sequences(self) -> usize {
        match self {
            Scale::Full => 6,
            Scale::Quick => 2,
        }
    }

    /// Validation sequences used by the experiment.
    pub fn val_sequences(self) -> usize {
        match self {
            Scale::Full => 20,
            Scale::Quick => 6,
        }
    }

    /// Detection sequences per speed group.
    pub fn vid_per_group(self) -> usize {
        match self {
            Scale::Full => 5,
            Scale::Quick => 1,
        }
    }
}

/// Shared state across one experiment run.
pub struct Context {
    /// The experiment scale.
    pub scale: Scale,
    /// Suite generation settings.
    pub suite_cfg: SuiteConfig,
    /// Simulator settings.
    pub sim: SimConfig,
    /// The DAVIS-like validation suite.
    pub davis: Vec<Sequence>,
    /// A segmentation-trained pipeline at the default codec settings.
    pub model: VrDann,
}

impl Context {
    /// Builds the context: generates suites and trains NN-S (the slow step).
    pub fn new(scale: Scale) -> Self {
        Self::new_with(scale, ComputeMode::F32Reference)
    }

    /// [`Context::new`] with an explicit NN-S compute mode — training is
    /// mode-independent (always f32), only inference switches paths.
    pub fn new_with(scale: Scale, compute: ComputeMode) -> Self {
        let suite_cfg = scale.suite_config();
        let train = davis_train_suite(&suite_cfg, scale.train_sequences());
        let model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default())
            .expect("training the default pipeline succeeds")
            .with_compute(compute);
        let mut davis = davis_val_suite(&suite_cfg);
        davis.truncate(scale.val_sequences());
        Self {
            scale,
            suite_cfg,
            sim: SimConfig::default(),
            davis,
            model,
        }
    }

    /// Trains a pipeline with non-default settings (codec sweeps retrain
    /// NN-S because the motion vectors change with the encoder).
    pub fn train_variant(&self, cfg: VrDannConfig, task: TrainTask) -> VrDann {
        let train = davis_train_suite(&self.suite_cfg, self.scale.train_sequences());
        VrDann::train(&train, task, cfg).expect("training a sweep variant succeeds")
    }

    /// The VID-like detection suite of this scale.
    pub fn vid_suite(&self) -> Vec<Sequence> {
        vid_val_suite(&self.suite_cfg, self.scale.vid_per_group())
    }

    /// A detection-trained pipeline.
    pub fn detection_model(&self) -> VrDann {
        // Train on detection-style rectangle masks from a disjoint VID-like
        // set (different master seed).
        let train_cfg = SuiteConfig {
            seed: self.suite_cfg.seed ^ 0xdead,
            ..self.suite_cfg
        };
        let train = vid_val_suite(&train_cfg, self.scale.vid_per_group());
        VrDann::train(&train, TrainTask::Detection, VrDannConfig::default())
            .expect("training the detection pipeline succeeds")
    }

    /// Runs VR-DANN segmentation on one sequence (encoding included).
    pub fn run_vrdann(&self, seq: &Sequence) -> (EncodedVideo, SegmentationRun) {
        let encoded = self.model.encode(seq).expect("suite sequences encode");
        let run = self
            .model
            .run_segmentation(seq, &encoded)
            .expect("suite sequences segment");
        (encoded, run)
    }

    /// Runs VR-DANN segmentation over a whole suite as one batch through
    /// the pipeline's multi-sequence serving entry point
    /// ([`VrDann::run_segmentation_batch`]). Results are in suite order and
    /// identical to per-sequence [`Context::run_vrdann`] calls.
    pub fn run_vrdann_batch(&self, seqs: &[Sequence]) -> Vec<(EncodedVideo, SegmentationRun)> {
        let encoded: Vec<EncodedVideo> = parallel_map(seqs, |seq| {
            self.model.encode(seq).expect("suite sequences encode")
        });
        let jobs: Vec<(&Sequence, &EncodedVideo)> = seqs.iter().zip(encoded.iter()).collect();
        let runs = self.model.run_segmentation_batch(&jobs);
        encoded
            .into_iter()
            .zip(runs)
            .map(|(e, r)| (e, r.expect("suite sequences segment")))
            .collect()
    }

    /// Simulates a trace on the default parallel architecture (fed through
    /// the streaming scheduler entry point).
    pub fn sim_parallel(&self, trace: &vr_dann::SchemeTrace) -> SimReport {
        vrd_sim::simulate_stream(
            trace.frames.iter(),
            trace.scheme,
            trace.width,
            trace.height,
            trace.mb_size,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &self.sim,
        )
    }

    /// Simulates a trace in order (baselines), fed through the streaming
    /// scheduler entry point.
    pub fn sim_in_order(&self, trace: &vr_dann::SchemeTrace) -> SimReport {
        vrd_sim::simulate_stream(
            trace.frames.iter(),
            trace.scheme,
            trace.width,
            trace.height,
            trace.mb_size,
            ExecMode::InOrder,
            &self.sim,
        )
    }

    /// Scores a mask sequence against ground truth.
    pub fn score(&self, seq: &Sequence, masks: &[vrd_video::SegMask]) -> SegScores {
        score_sequence(masks, &seq.gt_masks)
    }
}

// The scoped-thread map the experiments fan out with now lives in the
// shared runtime crate; re-exported so experiment modules keep their
// `crate::context::parallel_map` imports.
pub use vrd_runtime::parallel_map;

/// The default codec configuration (shared by experiments for readability).
pub fn default_codec() -> CodecConfig {
    CodecConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds_and_runs() {
        let ctx = Context::new(Scale::Quick);
        assert_eq!(ctx.davis.len(), 6);
        let (encoded, run) = ctx.run_vrdann(&ctx.davis[0]);
        assert_eq!(run.masks.len(), ctx.davis[0].len());
        assert!(encoded.stats.b_frames > 0);
        let report = ctx.sim_parallel(&run.trace);
        assert!(report.fps > 0.0);
        let scores = ctx.score(&ctx.davis[0], &run.masks);
        assert!(scores.iou > 0.3);
    }
}
