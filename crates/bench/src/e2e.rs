//! End-to-end wall-clock benchmark of the pipelined executor.
//!
//! Every other artefact in the repository times a *kernel*
//! (`BENCH_nn.json`, `BENCH_recon.json`) or replays a *simulated* machine
//! (`fig13`). This module closes the loop: it drives the real
//! decode → plan → wave-front compute path over an 854×480-class stream
//! (864×480 — the codec needs macroblock-aligned dimensions, matching
//! [`crate::fig13::fps_hd`]) and reports **measured** frames per second
//! for the sequential engine and the two-lane pipelined executor, next to
//! the simulator's predicted decoder ceiling at the same resolution.
//!
//! Determinism is split from measurement so CI can diff the artefact:
//! [`E2eConfig::quick`] produces only reproducible fields — output
//! digests at several thread counts, frame counts, simulated fps — and
//! the JSON is byte-identical run to run. [`E2eConfig::full`] adds the
//! wall-clock measurement block, which no two runs reproduce exactly.

use crate::timing::time_median;
use vr_dann::{PipelineOptions, SegmentationRun, TrainTask, VrDann, VrDannConfig};
use vrd_codec::FrameType;
use vrd_sim::{ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

/// Thread counts the deterministic digest pass re-runs the pipelined
/// executor at. Bit-identity across these (and the sequential baseline)
/// is asserted inside [`run`].
pub const DIGEST_THREADS: [usize; 3] = [1, 2, 4];

/// Benchmark shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E2eConfig {
    /// Frame width in pixels (must be a multiple of the macroblock size).
    pub width: usize,
    /// Frame height in pixels (must be a multiple of the macroblock size).
    pub height: usize,
    /// Stream length in frames.
    pub frames: usize,
    /// Run the wall-clock measurement (non-deterministic fields).
    pub measure: bool,
    /// Timing repetitions per measured variant (median is reported).
    pub reps: usize,
}

impl E2eConfig {
    /// Deterministic CI shape: digests and simulated fps only.
    pub fn quick() -> Self {
        Self {
            width: 864,
            height: 480,
            frames: 48,
            measure: false,
            reps: 0,
        }
    }

    /// Measurement shape: the deterministic block plus measured fps.
    pub fn full() -> Self {
        Self {
            width: 864,
            height: 480,
            frames: 96,
            measure: true,
            reps: 3,
        }
    }
}

/// The measured (wall-clock) half of the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredFps {
    /// Wave-front worker threads the pipelined run used.
    pub threads: usize,
    /// Sequential engine throughput, frames per second.
    pub sequential_fps: f64,
    /// Pipelined executor throughput, frames per second.
    pub pipelined_fps: f64,
    /// `pipelined_fps / sequential_fps`.
    pub speedup: f64,
}

/// Everything one benchmark run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eReport {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Stream length in frames.
    pub frames: usize,
    /// NN-L anchor frames (I/P) in the trace.
    pub anchors: usize,
    /// Reconstructed + NN-S-refined B-frames in the trace.
    pub b_frames: usize,
    /// FNV-1a digest over every output mask and trace frame, identical
    /// for the sequential engine and the pipelined executor at every
    /// thread count in [`DIGEST_THREADS`].
    pub output_digest: u64,
    /// Decoder-limited fps ceiling the simulator predicts at this
    /// resolution (`freq / (w·h·cycles_per_pixel_full)`).
    pub sim_decoder_ceiling_fps: f64,
    /// The simulator's VR-DANN-parallel fps for this exact trace.
    pub sim_parallel_fps: f64,
    /// Wall-clock measurement ([`E2eConfig::measure`] runs only).
    pub measured: Option<MeasuredFps>,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// FNV-1a digest over a segmentation run's observable outputs: every mask
/// word plus every trace frame's identity, cost and routing. Two runs with
/// the same digest produced bit-identical masks and traces.
pub fn digest_run(run: &SegmentationRun) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for mask in &run.masks {
        for w in mask.words() {
            fnv1a(&mut h, &w.to_le_bytes());
        }
    }
    for f in &run.trace.frames {
        fnv1a(&mut h, &f.display.to_le_bytes());
        let ft = match f.ftype {
            FrameType::I => 0u8,
            FrameType::P => 1,
            FrameType::B => 2,
        };
        fnv1a(
            &mut h,
            &[
                ft,
                u8::from(f.kind.uses_large_model()),
                u8::from(f.full_decode),
            ],
        );
        fnv1a(&mut h, &f.kind.ops().to_le_bytes());
        fnv1a(&mut h, &(f.bitstream_bytes as u64).to_le_bytes());
    }
    h
}

/// Runs the benchmark: train once (reduced suite — NN-S transfers to HD
/// because the pipeline is fully convolutional), drive the HD-class stream
/// sequentially and pipelined at each digest thread count (asserting
/// bit-identity), then optionally measure wall-clock fps.
///
/// # Panics
/// Panics if the pipelined executor's outputs diverge from the sequential
/// engine at any thread count — that is the regression this benchmark
/// exists to catch.
pub fn run(cfg: &E2eConfig) -> E2eReport {
    let hd = SuiteConfig {
        width: cfg.width,
        height: cfg.height,
        frames: cfg.frames,
        seed: 0x40f0,
    };
    let train = davis_train_suite(&SuiteConfig::tiny(), 2);
    let model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default())
        .expect("training succeeds");
    let seq = davis_sequence("cows", &hd).expect("HD sequence generates");
    let encoded = model.encode(&seq).expect("HD sequence encodes");

    let baseline = model
        .run_segmentation(&seq, &encoded)
        .expect("sequential HD run succeeds");
    let digest = digest_run(&baseline);
    for threads in DIGEST_THREADS {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: None,
        };
        let piped = model
            .run_segmentation_pipelined(&seq, &encoded, &opts)
            .expect("pipelined HD run succeeds");
        assert_eq!(
            digest_run(&piped),
            digest,
            "pipelined outputs diverged from the sequential engine at \
             {threads} threads"
        );
    }

    let sim = SimConfig::default();
    let ceiling = sim.decoder.freq_hz
        / (cfg.width as f64 * cfg.height as f64 * sim.decoder.cycles_per_pixel_full);
    let sim_par = vrd_sim::simulate_stream(
        baseline.trace.frames.iter(),
        baseline.trace.scheme,
        baseline.trace.width,
        baseline.trace.height,
        baseline.trace.mb_size,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        &sim,
    );

    let measured = cfg.measure.then(|| {
        let threads = vrd_runtime::max_threads();
        let seq_s = time_median(cfg.reps, || {
            std::hint::black_box(model.run_segmentation(&seq, &encoded).unwrap());
        });
        let pipe_s = time_median(cfg.reps, || {
            std::hint::black_box(
                model
                    .run_segmentation_pipelined(&seq, &encoded, &PipelineOptions::default())
                    .unwrap(),
            );
        });
        let sequential_fps = cfg.frames as f64 / seq_s;
        let pipelined_fps = cfg.frames as f64 / pipe_s;
        MeasuredFps {
            threads,
            sequential_fps,
            pipelined_fps,
            speedup: pipelined_fps / sequential_fps,
        }
    });

    let anchors = baseline
        .trace
        .frames
        .iter()
        .filter(|f| f.ftype != FrameType::B)
        .count();
    E2eReport {
        width: cfg.width,
        height: cfg.height,
        frames: cfg.frames,
        anchors,
        b_frames: baseline.trace.frames.len() - anchors,
        output_digest: digest,
        sim_decoder_ceiling_fps: ceiling,
        sim_parallel_fps: sim_par.fps,
        measured,
    }
}

/// Renders the report as the `BENCH_e2e.json` artefact. Quick reports
/// (no `measured` block) render byte-identically across runs.
pub fn render_json(r: &E2eReport) -> String {
    let mut json = format!(
        "{{\n  \"resolution\": \"{}x{}\",\n  \"frames\": {},\n  \
         \"anchors\": {},\n  \"b_frames\": {},\n  \
         \"output_digest\": \"{:#018x}\",\n  \"digest_threads\": [1, 2, 4],\n  \
         \"sim\": {{\"decoder_ceiling_fps\": {:.2}, \"vrdann_parallel_fps\": {:.2}}}",
        r.width,
        r.height,
        r.frames,
        r.anchors,
        r.b_frames,
        r.output_digest,
        r.sim_decoder_ceiling_fps,
        r.sim_parallel_fps,
    );
    if let Some(m) = &r.measured {
        json.push_str(&format!(
            ",\n  \"measured\": {{\"threads\": {}, \"sequential_fps\": {:.2}, \
             \"pipelined_fps\": {:.2}, \"speedup\": {:.2}}}",
            m.threads, m.sequential_fps, m.pipelined_fps, m.speedup
        ));
    }
    json.push_str("\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down shape so the test stays fast: the digest pass and the
    /// JSON rendering exercise exactly the code the CI artefact uses.
    fn tiny_cfg() -> E2eConfig {
        E2eConfig {
            width: 64,
            height: 48,
            frames: 24,
            measure: false,
            reps: 0,
        }
    }

    #[test]
    fn quick_report_is_deterministic_and_pipelined_is_identical() {
        let a = run(&tiny_cfg());
        let b = run(&tiny_cfg());
        assert_eq!(a, b, "two quick runs must agree field for field");
        assert_eq!(render_json(&a), render_json(&b));
        assert!(a.measured.is_none());
        assert_eq!(a.anchors + a.b_frames, a.frames);
        assert!(a.b_frames > 0, "no B-frames — nothing was pipelined");
        assert!(a.sim_decoder_ceiling_fps > 0.0);
        assert!(a.sim_parallel_fps > 0.0);
        let json = render_json(&a);
        assert!(json.contains("\"output_digest\""));
        assert!(!json.contains("\"measured\""));
    }

    #[test]
    fn measured_report_carries_fps_fields() {
        let report = run(&E2eConfig {
            measure: true,
            reps: 1,
            ..tiny_cfg()
        });
        let m = report.measured.expect("measure=true produces the block");
        assert!(m.sequential_fps > 0.0 && m.pipelined_fps > 0.0);
        assert!(m.speedup > 0.0);
        assert!(render_json(&report).contains("\"measured\""));
    }
}
