//! Feature-space propagation (Jain & Gonzalez) in the Fig. 13 frame:
//! suite-averaged performance/energy of the FeatProp baseline next to DFF
//! and VR-DANN-parallel, all normalised to FAVOS, plus the
//! accuracy-vs-NPU-load point that places each scheme on the paper's
//! central tradeoff — how much NPU compute buys how much accuracy.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_x, Table};
use vr_dann::baselines::{run_dff, run_favos, DFF_KEY_INTERVAL};
use vrd_sim::{simulate, ExecMode, ParallelOptions};

/// One scheme's position: speed/efficiency vs FAVOS, plus the accuracy and
/// NPU-load coordinates (FAVOS = 1.0 load by construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemePoint {
    /// FAVOS time / scheme time (higher = faster).
    pub performance: f64,
    /// FAVOS energy / scheme energy (higher = more efficient).
    pub energy: f64,
    /// Suite-mean IoU of the scheme's masks.
    pub iou: f64,
    /// Scheme NPU ops / FAVOS NPU ops (lower = lighter).
    pub npu_load: f64,
}

/// The complete comparison.
#[derive(Debug, Clone, Default)]
pub struct FeatPropBench {
    /// FAVOS itself (performance/energy/load 1.0; the accuracy reference).
    pub favos: SchemePoint,
    /// DFF: flow-warped *outputs*, key-frame NN-L.
    pub dff: SchemePoint,
    /// Feature propagation: warped *intermediate activations*, head-only
    /// B-frames.
    pub featprop: SchemePoint,
    /// VR-DANN-parallel: mask-space reconstruction + NN-S refinement.
    pub parallel: SchemePoint,
}

/// Runs the suite experiment.
pub fn run(ctx: &Context) -> FeatPropBench {
    let per_video = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let fp = ctx
            .model
            .run_feature_propagation(seq, &encoded)
            .expect("suite sequences propagate in feature space");
        let favos = run_favos(seq, &encoded, 1);
        let dff = run_dff(seq, &encoded, DFF_KEY_INTERVAL, 1);

        let favos_sim = ctx.sim_in_order(&favos.trace);
        let favos_ops = favos.trace.total_ops().max(1) as f64;
        let point = |r: &vrd_sim::SimReport, run: &vr_dann::SegmentationRun| SchemePoint {
            performance: favos_sim.total_ns / r.total_ns,
            energy: favos_sim.energy.total_mj() / r.energy.total_mj(),
            iou: ctx.score(seq, &run.masks).iou,
            npu_load: run.trace.total_ops() as f64 / favos_ops,
        };
        (
            point(&favos_sim, &favos),
            point(&ctx.sim_in_order(&dff.trace), &dff),
            point(&ctx.sim_in_order(&fp.trace), &fp),
            point(
                &simulate(
                    &vr.trace,
                    ExecMode::VrDannParallel(ParallelOptions::default()),
                    &ctx.sim,
                ),
                &vr,
            ),
        )
    });
    let n = per_video.len().max(1) as f64;
    type Tuple = (SchemePoint, SchemePoint, SchemePoint, SchemePoint);
    let mean = |f: fn(&Tuple) -> SchemePoint| {
        let sum = per_video
            .iter()
            .map(f)
            .fold(SchemePoint::default(), |acc, p| SchemePoint {
                performance: acc.performance + p.performance,
                energy: acc.energy + p.energy,
                iou: acc.iou + p.iou,
                npu_load: acc.npu_load + p.npu_load,
            });
        SchemePoint {
            performance: sum.performance / n,
            energy: sum.energy / n,
            iou: sum.iou / n,
            npu_load: sum.npu_load / n,
        }
    };
    FeatPropBench {
        favos: mean(|t| t.0),
        dff: mean(|t| t.1),
        featprop: mean(|t| t.2),
        parallel: mean(|t| t.3),
    }
}

impl FeatPropBench {
    /// Renders the fig13-style rows plus the accuracy-vs-load points.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "scheme",
            "performance",
            "energy reduction",
            "IoU",
            "NPU load",
        ]);
        for (name, p) in [
            ("FAVOS (baseline)", self.favos),
            ("DFF", self.dff),
            ("FeatProp (Jain-Gonzalez)", self.featprop),
            ("VR-DANN-parallel", self.parallel),
        ] {
            t.row(vec![
                name.to_string(),
                fmt_x(p.performance),
                fmt_x(p.energy),
                format!("{:.3}", p.iou),
                format!("{:.2}", p.npu_load),
            ]);
        }
        format!(
            "Feature propagation vs the mask-space schemes (normalised to FAVOS).\n         FeatProp: {} at {:.2}x FAVOS NPU load; VR-DANN-parallel: {} at {:.2}x\n{}",
            fmt_x(self.featprop.performance),
            self.featprop.npu_load,
            fmt_x(self.parallel.performance),
            self.parallel.npu_load,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn featprop_quick_sits_between_dff_and_vrdann() {
        let ctx = Context::new(Scale::Quick);
        let b = run(&ctx);
        // Performance: head-only B-frames beat DFF's FlowNet warps but a
        // quarter of NN-L per B-frame cannot touch VR-DANN's tiny NN-S.
        assert!(b.featprop.performance > b.dff.performance);
        assert!(b.featprop.performance > 1.0, "FeatProp must beat FAVOS");
        assert!(b.parallel.performance > b.featprop.performance);
        // NPU load: FeatProp is lighter than FAVOS but clearly heavier
        // than VR-DANN (a quarter-NN-L head vs NN-S per B-frame) — the
        // accuracy-vs-load point the comparison exists for.
        assert!(b.featprop.npu_load < 1.0);
        assert!(b.featprop.npu_load > 1.2 * b.parallel.npu_load);
        // Accuracy: anchors are bit-identical across schemes, so the gap
        // is purely the propagation method; warped features must beat
        // DFF's flow-warped outputs and stay near the FAVOS reference.
        assert!(b.featprop.iou > b.dff.iou, "features should beat DFF");
        assert!(b.favos.iou >= b.featprop.iou - 0.005);
        assert!(b.render().contains("FeatProp"));
    }
}
