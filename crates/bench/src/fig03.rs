//! Fig. 3: (a) B-frame ratio per video; (b) reference frames per B-frame.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_pct, Table};
use vrd_codec::Encoder;

/// One video's encoder statistics.
#[derive(Debug, Clone)]
pub struct Fig03Row {
    /// Sequence name.
    pub name: String,
    /// Fraction of B-frames (Fig. 3a).
    pub b_ratio: f64,
    /// Mean distinct reference frames per B-frame (Fig. 3b).
    pub mean_refs: f64,
    /// Maximum distinct reference frames any B-frame needed.
    pub max_refs: usize,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Per-video rows.
    pub rows: Vec<Fig03Row>,
    /// Suite-mean B ratio (the paper reports ~65%).
    pub mean_b_ratio: f64,
    /// Histogram of reference-frame counts over all B-frames (index =
    /// number of distinct references).
    pub refs_histogram: Vec<usize>,
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig03 {
    let encoder = Encoder::new(ctx.model.config().codec);
    let stats = parallel_map(&ctx.davis, |seq| {
        let ev = encoder.encode(&seq.frames).expect("suite encodes");
        (seq.name.clone(), ev.stats)
    });
    let mut rows = Vec::new();
    let mut hist = vec![0usize; 10];
    for (name, s) in &stats {
        for &r in &s.refs_per_b {
            hist[r.min(9)] += 1;
        }
        rows.push(Fig03Row {
            name: name.clone(),
            b_ratio: s.b_ratio(),
            mean_refs: s.mean_refs_per_b(),
            max_refs: s.max_refs_per_b(),
        });
    }
    let mean_b_ratio = rows.iter().map(|r| r.b_ratio).sum::<f64>() / rows.len().max(1) as f64;
    Fig03 {
        rows,
        mean_b_ratio,
        refs_histogram: hist,
    }
}

impl Fig03 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["video", "B ratio", "mean refs/B", "max refs/B"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_pct(r.b_ratio),
                format!("{:.2}", r.mean_refs),
                r.max_refs.to_string(),
            ]);
        }
        t.row(vec![
            "MEAN".to_string(),
            fmt_pct(self.mean_b_ratio),
            String::new(),
            String::new(),
        ]);
        let mut out = String::from("Fig. 3(a): B-frame ratio per video (auto GOP)\n");
        out.push_str(&t.render());
        out.push_str("\nFig. 3(b): distinct reference frames per B-frame\n");
        let mut h = Table::new(vec!["refs", "B-frames"]);
        for (n, &count) in self.refs_histogram.iter().enumerate() {
            if count > 0 {
                h.row(vec![n.to_string(), count.to_string()]);
            }
        }
        out.push_str(&h.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig03_quick_produces_paper_shape() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), ctx.davis.len());
        assert!(fig.mean_b_ratio > 0.2 && fig.mean_b_ratio < 0.85);
        // Up to 7 references (never more, per the auto search interval).
        assert!(fig.rows.iter().all(|r| r.max_refs <= 7));
        let rendered = fig.render();
        assert!(rendered.contains("Fig. 3(a)"));
        assert!(rendered.contains("MEAN"));
    }
}
