//! Fig. 7: the execution timelines of FAVOS, VR-DANN-serial and
//! VR-DANN-parallel on one sequence, rendered as four-lane Gantt charts.
//!
//! This is the paper's schedule illustration, regenerated from the actual
//! simulator: FAVOS's wall of NN-L inferences, the serial flow's
//! switch/reconstruction bubbles interleaved with NPU work, and the
//! parallel architecture's lagged switching with reconstruction hidden in
//! the agent lane.

use crate::context::Context;
use vr_dann::baselines::run_favos;
use vrd_sim::{simulate_traced, ExecMode, ParallelOptions, SimReport, Timeline};

/// One scheme's traced execution.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Scheme label.
    pub label: String,
    /// Simulation report.
    pub report: SimReport,
    /// Recorded timeline.
    pub timeline: Timeline,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// The sequence the timelines were recorded on.
    pub sequence: String,
    /// FAVOS, VR-DANN-serial and VR-DANN-parallel, in that order.
    pub runs: Vec<TracedRun>,
}

/// Runs the experiment on the given suite sequence (by index).
pub fn run(ctx: &Context, seq_index: usize) -> Fig07 {
    let seq = &ctx.davis[seq_index.min(ctx.davis.len() - 1)];
    let (encoded, vr) = ctx.run_vrdann(seq);
    let favos = run_favos(seq, &encoded, 1);
    let mut runs = Vec::new();
    for (label, trace, mode) in [
        ("FAVOS", &favos.trace, ExecMode::InOrder),
        ("VR-DANN-serial", &vr.trace, ExecMode::VrDannSerial),
        (
            "VR-DANN-parallel",
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
        ),
    ] {
        let (report, timeline) = simulate_traced(trace, mode, &ctx.sim);
        runs.push(TracedRun {
            label: label.to_string(),
            report,
            timeline,
        });
    }
    Fig07 {
        sequence: seq.name.clone(),
        runs,
    }
}

impl Fig07 {
    /// Renders the three Gantt charts on a shared time axis.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!(
            "Fig. 7: execution timelines on '{}' (all charts share one time scale)\n",
            self.sequence
        );
        // Shared scale: pad every timeline to the slowest scheme's end.
        let max_end = self
            .runs
            .iter()
            .map(|r| r.report.total_ns)
            .fold(0.0f64, f64::max);
        for run in &self.runs {
            let scaled_width = ((run.report.total_ns / max_end) * width as f64).ceil() as usize;
            out.push_str(&format!(
                "\n{} — {:.2} ms, {} switches\n",
                run.label,
                run.report.total_ms(),
                run.report.switches
            ));
            out.push_str(&run.timeline.render_gantt(scaled_width.max(8)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig07_quick_shows_the_three_schedules() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx, 0);
        assert_eq!(fig.runs.len(), 3);
        // Parallel fastest, FAVOS slowest.
        assert!(fig.runs[2].report.total_ns <= fig.runs[1].report.total_ns);
        assert!(fig.runs[1].report.total_ns < fig.runs[0].report.total_ns);
        // FAVOS timeline has no agent or CPU reconstruction work.
        assert_eq!(fig.runs[0].timeline.lane_busy_ns(vrd_sim::Lane::Agent), 0.0);
        assert_eq!(fig.runs[0].timeline.lane_busy_ns(vrd_sim::Lane::Cpu), 0.0);
        // Serial uses the CPU, parallel uses the agent.
        assert!(fig.runs[1].timeline.lane_busy_ns(vrd_sim::Lane::Cpu) > 0.0);
        assert!(fig.runs[2].timeline.lane_busy_ns(vrd_sim::Lane::Agent) > 0.0);
        let rendered = fig.render(100);
        assert!(rendered.contains("VR-DANN-parallel"));
        assert!(rendered.contains("NPU"));
    }
}
