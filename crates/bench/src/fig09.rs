//! Fig. 9: per-video segmentation accuracy, FAVOS vs VR-DANN.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_score, Table};
use vr_dann::baselines::run_favos;
use vrd_metrics::SegScores;

/// One video's scores.
#[derive(Debug, Clone)]
pub struct Fig09Row {
    /// Sequence name.
    pub name: String,
    /// FAVOS accuracy.
    pub favos: SegScores,
    /// VR-DANN accuracy.
    pub vrdann: SegScores,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// Per-video rows, suite order.
    pub rows: Vec<Fig09Row>,
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig09 {
    // The whole suite is served as one batch through the pipeline engine;
    // FAVOS and the scoring then fan out per video.
    let vr_runs = ctx.run_vrdann_batch(&ctx.davis);
    let per_video: Vec<_> = ctx.davis.iter().zip(vr_runs).collect();
    let rows = parallel_map(&per_video, |(seq, (encoded, vr))| {
        let favos = run_favos(seq, encoded, 1);
        Fig09Row {
            name: seq.name.clone(),
            favos: ctx.score(seq, &favos.masks),
            vrdann: ctx.score(seq, &vr.masks),
        }
    });
    Fig09 { rows }
}

impl Fig09 {
    /// Videos where VR-DANN trails FAVOS by more than `gap` IoU (the
    /// paper's problem cases: dramatic deformation / very fast motion).
    pub fn problem_videos(&self, gap: f64) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.favos.iou - r.vrdann.iou > gap)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "video",
            "FAVOS F",
            "FAVOS IoU",
            "VR-DANN F",
            "VR-DANN IoU",
            "dIoU",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_score(r.favos.f_score),
                fmt_score(r.favos.iou),
                fmt_score(r.vrdann.f_score),
                fmt_score(r.vrdann.iou),
                format!("{:+.3}", r.vrdann.iou - r.favos.iou),
            ]);
        }
        format!(
            "Fig. 9: per-video segmentation accuracy (FAVOS vs VR-DANN)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig09_quick_matches_on_most_videos() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), ctx.davis.len());
        // VR-DANN matches FAVOS on the bulk of the suite (the paper's
        // claim), with at most a few problem videos.
        let problems = fig.problem_videos(0.05);
        assert!(
            problems.len() <= fig.rows.len() / 2,
            "too many problem videos: {problems:?}"
        );
        assert!(fig.render().contains("Fig. 9"));
    }
}
