//! Fig. 10: suite-averaged segmentation accuracy of OSVOS, DFF, FAVOS and
//! VR-DANN.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_score, Table};
use vr_dann::baselines::{run_dff, run_favos, run_osvos, DFF_KEY_INTERVAL};
use vrd_metrics::{boundary_f_sequence, mean_scores, SegScores};

/// Tolerance (pixels) of the contour F-measure.
const CONTOUR_TOLERANCE: usize = 1;

/// One scheme's suite-averaged scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeScores {
    /// Pixel-level F-score and IoU (the paper's metrics).
    pub pixel: SegScores,
    /// Contour F-measure (DAVIS's boundary metric; extra, beyond the
    /// paper): the most sensitive probe of macro-block reconstruction noise
    /// and what NN-S refinement fixes.
    pub contour_f: f64,
}

/// Averaged scores for the four schemes.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// OSVOS average.
    pub osvos: SchemeScores,
    /// DFF average.
    pub dff: SchemeScores,
    /// FAVOS average.
    pub favos: SchemeScores,
    /// VR-DANN average.
    pub vrdann: SchemeScores,
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig10 {
    let per_video = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let favos = run_favos(seq, &encoded, 1);
        let osvos = run_osvos(seq, &encoded, 1);
        let dff = run_dff(seq, &encoded, DFF_KEY_INTERVAL, 1);
        let eval = |masks: &[vrd_video::SegMask]| {
            (
                ctx.score(seq, masks),
                boundary_f_sequence(masks, &seq.gt_masks, CONTOUR_TOLERANCE),
            )
        };
        (
            eval(&osvos.masks),
            eval(&dff.masks),
            eval(&favos.masks),
            eval(&vr.masks),
        )
    });
    type Row = (
        (SegScores, f64),
        (SegScores, f64),
        (SegScores, f64),
        (SegScores, f64),
    );
    let col = |f: fn(&Row) -> (SegScores, f64)| {
        let picked: Vec<(SegScores, f64)> = per_video.iter().map(f).collect();
        SchemeScores {
            pixel: mean_scores(&picked.iter().map(|p| p.0).collect::<Vec<_>>()),
            contour_f: picked.iter().map(|p| p.1).sum::<f64>() / picked.len().max(1) as f64,
        }
    };
    Fig10 {
        osvos: col(|t| t.0),
        dff: col(|t| t.1),
        favos: col(|t| t.2),
        vrdann: col(|t| t.3),
    }
}

impl Fig10 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["scheme", "F-score", "IoU", "contour F"]);
        for (name, s) in [
            ("OSVOS", self.osvos),
            ("DFF", self.dff),
            ("FAVOS", self.favos),
            ("VR-DANN", self.vrdann),
        ] {
            t.row(vec![
                name.to_string(),
                fmt_score(s.pixel.f_score),
                fmt_score(s.pixel.iou),
                fmt_score(s.contour_f),
            ]);
        }
        format!(
            "Fig. 10: averaged segmentation accuracy (DAVIS-like suite)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig10_quick_preserves_paper_ordering() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        // FAVOS and VR-DANN on top, DFF/OSVOS behind.
        assert!(fig.vrdann.pixel.iou > fig.dff.pixel.iou);
        assert!(fig.vrdann.pixel.iou > fig.osvos.pixel.iou);
        assert!(fig.favos.pixel.iou >= fig.vrdann.pixel.iou - 0.02);
        // Contour F is bounded and ranks VR-DANN above the noisy OSVOS.
        for s in [fig.osvos, fig.dff, fig.favos, fig.vrdann] {
            assert!((0.0..=1.0).contains(&s.contour_f));
        }
        assert!(fig.vrdann.contour_f > fig.osvos.contour_f);
        assert!(fig.render().contains("contour F"));
    }
}
