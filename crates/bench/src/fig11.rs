//! Fig. 11: detection mAP of SELSA, Euphrates-2/-4 and VR-DANN, overall and
//! grouped by object speed.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_score, Table};
use vr_dann::baselines::{run_euphrates, run_selsa};
use vr_dann::DetectionRun;
use vrd_metrics::{average_precision, FrameDetections};
use vrd_video::{Sequence, SpeedClass};

/// mAP per speed group plus the overall mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupedMap {
    /// All sequences.
    pub overall: f64,
    /// Slow group.
    pub slow: f64,
    /// Medium group.
    pub medium: f64,
    /// Fast group.
    pub fast: f64,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// SELSA (the accuracy reference).
    pub selsa: GroupedMap,
    /// Euphrates with key interval 2.
    pub euphrates2: GroupedMap,
    /// Euphrates with key interval 4.
    pub euphrates4: GroupedMap,
    /// VR-DANN detection.
    pub vrdann: GroupedMap,
}

fn ap_of(run: &DetectionRun, seq: &Sequence) -> f64 {
    let frames: Vec<FrameDetections> = run
        .detections
        .iter()
        .zip(&seq.gt_boxes)
        .map(|(dets, gts)| FrameDetections {
            detections: dets.clone(),
            ground_truth: gts.clone(),
        })
        .collect();
    average_precision(&frames)
}

fn grouped(values: &[(SpeedClass, f64)]) -> GroupedMap {
    let mean = |class: Option<SpeedClass>| {
        let v: Vec<f64> = values
            .iter()
            .filter(|(c, _)| class.is_none_or(|cl| *c == cl))
            .map(|(_, ap)| *ap)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    GroupedMap {
        overall: mean(None),
        slow: mean(Some(SpeedClass::Slow)),
        medium: mean(Some(SpeedClass::Medium)),
        fast: mean(Some(SpeedClass::Fast)),
    }
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig11 {
    let suite = ctx.vid_suite();
    let det_model = ctx.detection_model();
    let results = parallel_map(&suite, |seq| {
        let encoded = det_model.encode(seq).expect("suite sequences encode");
        let vr = det_model
            .run_detection(seq, &encoded)
            .expect("suite sequences detect");
        let selsa = run_selsa(seq, &encoded, 2);
        let e2 = run_euphrates(seq, &encoded, 2, 2);
        let e4 = run_euphrates(seq, &encoded, 4, 2);
        let class = seq.speed_class();
        (
            (class, ap_of(&selsa, seq)),
            (class, ap_of(&e2, seq)),
            (class, ap_of(&e4, seq)),
            (class, ap_of(&vr, seq)),
        )
    });
    Fig11 {
        selsa: grouped(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
        euphrates2: grouped(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
        euphrates4: grouped(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
        vrdann: grouped(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

impl Fig11 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["scheme", "overall", "slow", "medium", "fast"]);
        for (name, g) in [
            ("SELSA", self.selsa),
            ("Euphrates-2", self.euphrates2),
            ("Euphrates-4", self.euphrates4),
            ("VR-DANN", self.vrdann),
        ] {
            t.row(vec![
                name.to_string(),
                fmt_score(g.overall),
                fmt_score(g.slow),
                fmt_score(g.medium),
                fmt_score(g.fast),
            ]);
        }
        format!(
            "Fig. 11: averaged detection mAP (VID-like suite, by object speed)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig11_quick_preserves_paper_ordering() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        // SELSA is the reference; VR-DANN close; Euphrates-4 degrades.
        assert!(fig.selsa.overall > 0.6, "selsa {:.3}", fig.selsa.overall);
        assert!(
            fig.selsa.overall >= fig.vrdann.overall - 0.05,
            "vrdann {:.3} should not beat selsa {:.3} materially",
            fig.vrdann.overall,
            fig.selsa.overall
        );
        assert!(
            fig.euphrates2.overall >= fig.euphrates4.overall - 0.02,
            "euphrates-2 {:.3} vs -4 {:.3}",
            fig.euphrates2.overall,
            fig.euphrates4.overall
        );
        assert!(fig.render().contains("Euphrates-2"));
    }
}
