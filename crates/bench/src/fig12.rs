//! Fig. 12: per-video execution cycles (normalised to FAVOS) and NPU
//! operations per frame.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_x, Table};
use vr_dann::baselines::run_favos;
use vrd_sim::{simulate, ExecMode, ParallelOptions};

/// One video's timing results.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Sequence name.
    pub name: String,
    /// B-frame ratio of this encode (explains the per-video variance).
    pub b_ratio: f64,
    /// FAVOS time / VR-DANN-serial time.
    pub serial_speedup: f64,
    /// FAVOS time / VR-DANN-parallel time.
    pub parallel_speedup: f64,
    /// FAVOS mean TOPS per frame.
    pub favos_tops: f64,
    /// VR-DANN mean TOPS per frame.
    pub vrdann_tops: f64,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Per-video rows.
    pub rows: Vec<Fig12Row>,
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig12 {
    let rows = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let favos = run_favos(seq, &encoded, 1);
        let r_favos = ctx.sim_in_order(&favos.trace);
        let r_serial = simulate(&vr.trace, ExecMode::VrDannSerial, &ctx.sim);
        let r_par = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &ctx.sim,
        );
        Fig12Row {
            name: seq.name.clone(),
            b_ratio: encoded.stats.b_ratio(),
            serial_speedup: r_favos.total_ns / r_serial.total_ns,
            parallel_speedup: r_favos.total_ns / r_par.total_ns,
            favos_tops: favos.trace.tops_per_frame(),
            vrdann_tops: vr.trace.tops_per_frame(),
        }
    });
    Fig12 { rows }
}

impl Fig12 {
    /// Mean parallel speed-up over the suite.
    pub fn mean_parallel_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.parallel_speedup).sum::<f64>() / self.rows.len().max(1) as f64
    }

    /// Mean drop in TOPS per frame (the paper reports ~60%).
    pub fn mean_ops_drop(&self) -> f64 {
        let favos: f64 = self.rows.iter().map(|r| r.favos_tops).sum();
        let vrdann: f64 = self.rows.iter().map(|r| r.vrdann_tops).sum();
        1.0 - vrdann / favos
    }

    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "video",
            "B ratio",
            "serial speedup",
            "parallel speedup",
            "FAVOS TOPS/frame",
            "VR-DANN TOPS/frame",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.0}%", r.b_ratio * 100.0),
                fmt_x(r.serial_speedup),
                fmt_x(r.parallel_speedup),
                format!("{:.4}", r.favos_tops),
                format!("{:.4}", r.vrdann_tops),
            ]);
        }
        format!(
            "Fig. 12: per-video execution time (normalised to FAVOS) and ops\n{}\nmean parallel speedup: {} | ops drop: {:.0}%\n",
            t.render(),
            fmt_x(self.mean_parallel_speedup()),
            self.mean_ops_drop() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig12_quick_shows_b_ratio_driven_speedups() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), ctx.davis.len());
        for r in &fig.rows {
            assert!(
                r.parallel_speedup >= r.serial_speedup * 0.99,
                "{}: parallel {} < serial {}",
                r.name,
                r.parallel_speedup,
                r.serial_speedup
            );
            assert!(r.parallel_speedup >= 1.0, "{} slower than FAVOS", r.name);
            assert!(r.vrdann_tops < r.favos_tops);
        }
        // Ops drop in the paper's ballpark (~60%, ours tracks the B ratio).
        assert!(fig.mean_ops_drop() > 0.2, "{}", fig.mean_ops_drop());
        assert!(fig.render().contains("speedup"));
    }
}
