//! Fig. 13: suite-averaged performance and energy of every scheme,
//! normalised to FAVOS, plus the §VI-B real-time rate (13 fps → ~40 fps).

use crate::context::{parallel_map, Context};
use crate::table::{fmt_x, Table};
use vr_dann::baselines::{run_dff, run_favos, run_osvos, DFF_KEY_INTERVAL};
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_train_suite, SuiteConfig};

/// Relative performance/energy of one scheme (FAVOS = 1.0).
#[derive(Debug, Clone, Copy, Default)]
pub struct Relative {
    /// FAVOS time / scheme time (higher = faster).
    pub performance: f64,
    /// FAVOS energy / scheme energy (higher = more efficient).
    pub energy: f64,
}

/// The complete figure data.
#[derive(Debug, Clone, Default)]
pub struct Fig13 {
    /// OSVOS relative to FAVOS.
    pub osvos: Relative,
    /// DFF relative to FAVOS.
    pub dff: Relative,
    /// VR-DANN-serial relative to FAVOS.
    pub serial: Relative,
    /// VR-DANN-parallel relative to FAVOS.
    pub parallel: Relative,
}

/// Runs the suite experiment.
pub fn run(ctx: &Context) -> Fig13 {
    let per_video = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let favos = ctx.sim_in_order(&run_favos(seq, &encoded, 1).trace);
        let osvos = ctx.sim_in_order(&run_osvos(seq, &encoded, 1).trace);
        let dff = ctx.sim_in_order(&run_dff(seq, &encoded, DFF_KEY_INTERVAL, 1).trace);
        let serial = simulate(&vr.trace, ExecMode::VrDannSerial, &ctx.sim);
        let par = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &ctx.sim,
        );
        let rel = |r: &vrd_sim::SimReport| Relative {
            performance: favos.total_ns / r.total_ns,
            energy: favos.energy.total_mj() / r.energy.total_mj(),
        };
        (rel(&osvos), rel(&dff), rel(&serial), rel(&par))
    });
    let n = per_video.len().max(1) as f64;
    let mean = |f: fn(&(Relative, Relative, Relative, Relative)) -> Relative| {
        let (p, e) = per_video.iter().map(f).fold((0.0, 0.0), |acc, r| {
            (acc.0 + r.performance, acc.1 + r.energy)
        });
        Relative {
            performance: p / n,
            energy: e / n,
        }
    };
    Fig13 {
        osvos: mean(|t| t.0),
        dff: mean(|t| t.1),
        serial: mean(|t| t.2),
        parallel: mean(|t| t.3),
    }
}

/// Recognition rate at high definition: FAVOS vs VR-DANN-parallel on an
/// 864×480 sequence (the paper's "13 fps → 40 fps" result). The pipeline is
/// fully convolutional, so the 160×96-trained NN-S runs at HD directly.
pub fn fps_hd(frames: usize) -> (f64, f64, f64) {
    let cfg = SuiteConfig {
        width: 864,
        height: 480,
        frames,
        seed: 0x40f0,
    };
    let train = davis_train_suite(&SuiteConfig::default(), 4);
    let model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default())
        .expect("training succeeds");
    let seq = vrd_video::davis::davis_sequence("cows", &cfg).expect("HD sequence generates");
    let encoded = model.encode(&seq).expect("HD sequence encodes");
    let vr = model
        .run_segmentation(&seq, &encoded)
        .expect("HD sequence segments");
    let favos = run_favos(&seq, &encoded, 1);
    let sim = SimConfig::default();
    let r_favos = simulate(&favos.trace, ExecMode::InOrder, &sim);
    let r_par = simulate(
        &vr.trace,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        &sim,
    );
    // Decoder-limited ceiling at this resolution.
    let decoder_fps = sim.decoder.freq_hz
        / (cfg.width as f64 * cfg.height as f64 * sim.decoder.cycles_per_pixel_full);
    (r_favos.fps, r_par.fps, decoder_fps)
}

impl Fig13 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["scheme", "performance", "energy reduction"]);
        t.row(vec!["FAVOS (baseline)", "1.00x", "1.00x"]);
        for (name, r) in [
            ("OSVOS", self.osvos),
            ("DFF", self.dff),
            ("VR-DANN-serial", self.serial),
            ("VR-DANN-parallel", self.parallel),
        ] {
            t.row(vec![
                name.to_string(),
                fmt_x(r.performance),
                fmt_x(r.energy),
            ]);
        }
        format!(
            "Fig. 13: averaged performance and energy (normalised to FAVOS).\n         VR-DANN-parallel vs OSVOS {}, vs FAVOS {}, vs DFF {}\n{}",
            fmt_x(self.parallel.performance / self.osvos.performance),
            fmt_x(self.parallel.performance),
            fmt_x(self.parallel.performance / self.dff.performance),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig13_quick_preserves_paper_ordering() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        // Paper: parallel > serial > DFF > FAVOS > OSVOS in performance.
        assert!(fig.parallel.performance > fig.serial.performance);
        assert!(fig.serial.performance > 1.0);
        assert!(fig.osvos.performance < 1.0, "OSVOS is slower than FAVOS");
        assert!(fig.parallel.performance > fig.dff.performance);
        // Energy: parallel most efficient.
        assert!(fig.parallel.energy > fig.dff.energy);
        assert!(fig.parallel.energy > 1.0);
        assert!(fig.render().contains("VR-DANN-parallel"));
    }
}
