//! Fig. 14: DRAM access breakdown, normalised to FAVOS.

use crate::context::{parallel_map, Context};
use crate::table::Table;
use vr_dann::baselines::run_favos;
use vrd_sim::{simulate, ExecMode, ParallelOptions, TrafficBreakdown};

/// Traffic of the three schemes the paper breaks down.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig14 {
    /// FAVOS traffic (the 1.0 reference).
    pub favos: TrafficBreakdown,
    /// VR-DANN-serial traffic.
    pub serial: TrafficBreakdown,
    /// VR-DANN-parallel traffic.
    pub parallel: TrafficBreakdown,
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> Fig14 {
    let per_video = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let favos = ctx.sim_in_order(&run_favos(seq, &encoded, 1).trace);
        let serial = simulate(&vr.trace, ExecMode::VrDannSerial, &ctx.sim);
        let par = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &ctx.sim,
        );
        (favos.traffic, serial.traffic, par.traffic)
    });
    let mut out = Fig14::default();
    for (f, s, p) in per_video {
        out.favos.merge(&f);
        out.serial.merge(&s);
        out.parallel.merge(&p);
    }
    out
}

impl Fig14 {
    /// Renders the paper-style rows (fractions of FAVOS's total).
    pub fn render(&self) -> String {
        let base = self.favos.total().max(1) as f64;
        let mut t = Table::new(vec![
            "scheme",
            "weights",
            "activations",
            "MV",
            "seg",
            "bitstream",
            "total",
        ]);
        for (name, tr) in [
            ("FAVOS", self.favos),
            ("VR-DANN-serial", self.serial),
            ("VR-DANN-parallel", self.parallel),
        ] {
            t.row(vec![
                name.to_string(),
                format!("{:.3}", tr.weights as f64 / base),
                format!("{:.3}", tr.activations as f64 / base),
                format!("{:.4}", tr.mv as f64 / base),
                format!("{:.4}", tr.seg as f64 / base),
                format!("{:.4}", tr.bitstream as f64 / base),
                format!("{:.3}", tr.total() as f64 / base),
            ]);
        }
        format!(
            "Fig. 14: DRAM access breakdown (fractions of FAVOS's total traffic)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig14_quick_shows_traffic_savings() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        // VR-DANN fetches far less than FAVOS overall.
        assert!(fig.parallel.total() < fig.favos.total() * 3 / 4);
        // Parallel coalescing reads less segmentation data than serial's
        // scattered software walk.
        assert!(fig.parallel.seg < fig.serial.seg);
        // Only VR-DANN moves motion vectors.
        assert!(fig.parallel.mv > 0);
        assert_eq!(fig.favos.mv, 0);
        assert!(fig.render().contains("weights"));
    }
}
