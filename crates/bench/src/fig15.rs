//! Fig. 15: segmentation accuracy and execution time as a function of the
//! B-frame ratio (the `-b` encoder override vs "auto B ratio").

use crate::context::{parallel_map, Context};
use crate::table::{fmt_pct, fmt_score, fmt_x, Table};
use vr_dann::baselines::run_favos;
use vr_dann::{TrainTask, VrDannConfig};
use vrd_codec::{BFrameMode, CodecConfig};
use vrd_metrics::{mean_scores, SegScores};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Human-readable setting label.
    pub label: String,
    /// Achieved mean B-frame ratio.
    pub b_ratio: f64,
    /// Mean accuracy.
    pub scores: SegScores,
    /// Mean speed-up of VR-DANN-parallel over FAVOS.
    pub speedup: f64,
    /// Mean time the NPU stalled waiting for B-frame reconstruction, in
    /// microseconds per sequence. End-to-end time is insensitive to the
    /// memory-access dispersion of large `n` while reconstruction hides
    /// under NPU compute; this column shows where that headroom goes
    /// (the onset of the paper's n = 9 efficiency drop).
    pub recon_stall_us: f64,
}

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Sweep rows in increasing-B order, auto last.
    pub rows: Vec<Fig15Row>,
}

/// Evaluates one codec configuration over the suite (shared by the
/// Fig. 15/16/17 sweeps).
pub fn sweep_point(ctx: &Context, label: &str, codec: CodecConfig) -> Fig15Row {
    let model = ctx.train_variant(
        VrDannConfig {
            codec,
            ..VrDannConfig::default()
        },
        TrainTask::Segmentation,
    );
    let results = parallel_map(&ctx.davis, |seq| {
        let encoded = model.encode(seq).expect("sweep sequences encode");
        let vr = model
            .run_segmentation(seq, &encoded)
            .expect("sweep sequences segment");
        let favos = ctx.sim_in_order(&run_favos(seq, &encoded, 1).trace);
        let par = ctx.sim_parallel(&vr.trace);
        (
            encoded.stats.b_ratio(),
            ctx.score(seq, &vr.masks),
            favos.total_ns / par.total_ns,
            par.recon_stall_ns / 1e3,
        )
    });
    let n = results.len().max(1) as f64;
    Fig15Row {
        label: label.to_string(),
        b_ratio: results.iter().map(|r| r.0).sum::<f64>() / n,
        scores: mean_scores(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
        speedup: results.iter().map(|r| r.2).sum::<f64>() / n,
        recon_stall_us: results.iter().map(|r| r.3).sum::<f64>() / n,
    }
}

/// Runs the sweep.
pub fn run(ctx: &Context) -> Fig15 {
    let base = CodecConfig::default();
    let rows = vec![
        sweep_point(
            ctx,
            "B run 1 (~50%)",
            CodecConfig {
                b_frames: BFrameMode::Fixed(1),
                ..base
            },
        ),
        sweep_point(
            ctx,
            "B run 2 (~67%)",
            CodecConfig {
                b_frames: BFrameMode::Fixed(2),
                ..base
            },
        ),
        sweep_point(
            ctx,
            "B run 3 (~75%)",
            CodecConfig {
                b_frames: BFrameMode::Fixed(3),
                ..base
            },
        ),
        sweep_point(ctx, "auto B ratio", base),
    ];
    Fig15 { rows }
}

impl Fig15 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "setting",
            "B ratio",
            "F-score",
            "IoU",
            "speedup vs FAVOS",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                fmt_pct(r.b_ratio),
                fmt_score(r.scores.f_score),
                fmt_score(r.scores.iou),
                fmt_x(r.speedup),
            ]);
        }
        format!(
            "Fig. 15: accuracy and performance vs the B-frame ratio\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig15_quick_trades_accuracy_for_speed() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 4);
        let b1 = &fig.rows[0];
        let b3 = &fig.rows[2];
        // More B-frames = faster...
        assert!(b3.speedup > b1.speedup, "{} vs {}", b3.speedup, b1.speedup);
        assert!(b3.b_ratio > b1.b_ratio);
        // ... but not more accurate.
        assert!(b3.scores.iou <= b1.scores.iou + 0.02);
        assert!(fig.render().contains("auto B ratio"));
    }
}
