//! Fig. 16: segmentation accuracy and execution time as a function of the
//! reference search interval `n`.

use crate::context::Context;
use crate::fig15::{sweep_point, Fig15Row};
use crate::table::{fmt_score, fmt_x, Table};
use vrd_codec::{CodecConfig, SearchInterval};

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig16 {
    /// Sweep rows for n = 1, 3, 5, 7, 9 and auto.
    pub rows: Vec<Fig15Row>,
}

/// Runs the sweep.
pub fn run(ctx: &Context) -> Fig16 {
    let base = CodecConfig::default();
    let mut rows: Vec<Fig15Row> = [1u8, 3, 5, 7, 9]
        .into_iter()
        .map(|n| {
            sweep_point(
                ctx,
                &format!("n = {n}"),
                CodecConfig {
                    search_interval: SearchInterval::Fixed(n),
                    ..base
                },
            )
        })
        .collect();
    rows.push(sweep_point(ctx, "auto n", base));
    Fig16 { rows }
}

impl Fig16 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "setting",
            "F-score",
            "IoU",
            "speedup vs FAVOS",
            "recon stall (us)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                fmt_score(r.scores.f_score),
                fmt_score(r.scores.iou),
                fmt_x(r.speedup),
                format!("{:.1}", r.recon_stall_us),
            ]);
        }
        format!(
            "Fig. 16: accuracy and performance vs the search interval n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig16_quick_larger_n_does_not_hurt_accuracy() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 6);
        let n1 = &fig.rows[0];
        let n7 = &fig.rows[3];
        // Larger n: at least comparable accuracy (more references to match).
        assert!(
            n7.scores.iou >= n1.scores.iou - 0.03,
            "n=7 {:.3} much worse than n=1 {:.3}",
            n7.scores.iou,
            n1.scores.iou
        );
        assert!(fig.render().contains("auto n"));
    }
}
