//! Fig. 17: segmentation accuracy under H.264 vs H.265 encoding.

use crate::context::Context;
use crate::fig15::{sweep_point, Fig15Row};
use crate::table::{fmt_score, Table};
use vrd_codec::{CodecConfig, Standard};

/// The complete figure data.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// H.264 (16-pixel macro-blocks) result.
    pub h264: Fig15Row,
    /// H.265 (8-pixel macro-blocks) result.
    pub h265: Fig15Row,
}

/// Runs the comparison.
pub fn run(ctx: &Context) -> Fig17 {
    let base = CodecConfig::default();
    Fig17 {
        h264: sweep_point(
            ctx,
            "H.264",
            CodecConfig {
                standard: Standard::H264,
                ..base
            },
        ),
        h265: sweep_point(
            ctx,
            "H.265",
            CodecConfig {
                standard: Standard::H265,
                ..base
            },
        ),
    }
}

impl Fig17 {
    /// Renders the paper-style rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["standard", "F-score", "IoU"]);
        for r in [&self.h264, &self.h265] {
            t.row(vec![
                r.label.clone(),
                fmt_score(r.scores.f_score),
                fmt_score(r.scores.iou),
            ]);
        }
        format!(
            "Fig. 17: segmentation accuracy by encoding standard\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig17_quick_h265_at_least_as_accurate() {
        let ctx = Context::new(Scale::Quick);
        let fig = run(&ctx);
        // The paper: H.265's finer macro-blocks reconstruct boundaries
        // better than H.264's 16-pixel blocks.
        assert!(
            fig.h265.scores.iou >= fig.h264.scores.iou - 0.01,
            "H.265 {:.3} should not trail H.264 {:.3}",
            fig.h265.scores.iou,
            fig.h264.scores.iou
        );
        assert!(fig.render().contains("H.264"));
    }
}
