//! Fleet sweep: shards × offered load under trace-driven traffic.
//!
//! Supersedes `serve_bench`'s fixed 1→8 sweep for scaling claims: offered
//! load comes from the deterministic load generator (Poisson-bursty
//! arrivals, heterogeneous session shapes, mid-stream churn) and is placed
//! across N virtual NPU shards by the fleet layer's affinity scheduler.
//! Two experiments:
//!
//! * **Scaling rows** — fixed fleets of 1/2/4/8 shards, offered load
//!   proportional to the fleet (≈12 sessions per shard), autoscaling off.
//!   The headline is throughput *efficiency*: served frames per second
//!   relative to ideal linear scaling of the 1-shard baseline. The
//!   acceptance gate demands ≥ 0.8× ideal at 8 shards with ≥ 64 sessions
//!   resident at peak.
//! * **Spike scenario** — a 4× arrival-rate flash crowd against the
//!   autoscaler: shards are provisioned (spin-up billed on the simulated
//!   clock) and drained as the wave passes. The gate: fleet p99 holds the
//!   clean-run SLO, with the shed/reject rate reported, not hidden.
//!
//! Deterministic for a fixed scale: reruns are byte-identical (CI diffs
//! the JSON).

use crate::context::Context;
use crate::table::{fmt_pct, Table};
use vr_dann::{TrainTask, VrDannConfig};
use vrd_codec::{BFrameMode, CodecConfig};
use vrd_serve::{
    drive_template, generate, run_fleet, AutoscaleConfig, Envelope, FleetConfig, FleetReport,
    LoadGenConfig, ResClass, SessionDemand, SloConfig, StreamEntry, TaskKind, TrafficTrace,
};
use vrd_video::davis::{davis_val_suite, SuiteConfig};

/// Shard counts the scaling sweep runs, ascending; the last is the gated
/// 8-shard row.
pub const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Offered sessions per shard in the scaling rows.
pub const SESSIONS_PER_SHARD: usize = 12;

/// Fixed trace seed — the whole bench is a pure function of it.
const TRACE_SEED: u64 = 0x000f_1ee7_5eed;

/// Stream-library slots (arrival shapes resolve to these).
const STD_STREAMS: usize = 2;
const IDX_SHORT_GOP: usize = STD_STREAMS;
const IDX_DETECTION: usize = STD_STREAMS + 1;
const IDX_LOW_RES: usize = STD_STREAMS + 2;

/// One fixed-fleet scaling row.
#[derive(Debug, Clone)]
pub struct FleetBenchRow {
    /// Shards in the fixed fleet.
    pub shards: usize,
    /// Sessions offered.
    pub offered: usize,
    /// Sessions admitted.
    pub admitted: usize,
    /// Sessions rejected by admission.
    pub rejected: usize,
    /// Sessions churned out before service.
    pub churned_out: usize,
    /// Peak simultaneously-resident sessions.
    pub peak_concurrent: usize,
    /// Sessions moved by the rebalancer.
    pub migrations: usize,
    /// Frames served across the fleet.
    pub frames_served: usize,
    /// Served frames per second of makespan.
    pub throughput_fps: f64,
    /// Throughput relative to ideal linear scaling of the 1-shard row.
    pub efficiency: f64,
    /// Fleet p50 frame latency, nanoseconds.
    pub p50_ns: f64,
    /// Fleet p99 frame latency, nanoseconds.
    pub p99_ns: f64,
    /// Last completion instant, nanoseconds.
    pub makespan_ns: f64,
    /// NPU busy time over every shard's alive time.
    pub mean_utilization: f64,
    /// Fleet energy, joules.
    pub energy_j: f64,
}

/// The autoscaler-vs-spike scenario.
#[derive(Debug, Clone)]
pub struct SpikeSummary {
    /// Sessions offered.
    pub offered: usize,
    /// Sessions admitted.
    pub admitted: usize,
    /// Sessions rejected.
    pub rejected: usize,
    /// Shards added by the autoscaler.
    pub scale_ups: usize,
    /// Shards drained by the autoscaler.
    pub scale_downs: usize,
    /// Peak simultaneously-active shards.
    pub peak_shards: usize,
    /// Peak simultaneously-resident sessions.
    pub peak_concurrent: usize,
    /// Fleet p99 frame latency, nanoseconds.
    pub p99_ns: f64,
    /// The SLO the p99 is gated against, nanoseconds.
    pub slo_p99_ns: f64,
    /// Fraction of offered sessions turned away (reported, not hidden).
    pub reject_rate: f64,
    /// Fraction of NPU-bound frames shed past deadline.
    pub shed_rate: f64,
    /// Whether the autoscaled fleet held the SLO under the spike.
    pub held: bool,
}

/// The complete fleet bench.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// One row per fixed shard count, ascending.
    pub rows: Vec<FleetBenchRow>,
    /// The 4× spike scenario under autoscaling.
    pub spike: SpikeSummary,
}

/// Builds the heterogeneous stream library: two standard segmentation
/// streams, a short-GOP (NN-L-heavy) variant, a detection stream and a
/// low-resolution stream. Each entry carries the driven template (the NN
/// compute, paid once) plus the analytic demand admission bills.
fn build_library(ctx: &Context, base_interval_ns: f64) -> Vec<StreamEntry> {
    let mut entries = Vec::new();
    let mut push = |model: &vr_dann::VrDann, seq: &vrd_video::Sequence| {
        let encoded = model.encode(seq).expect("library sequences encode");
        let template =
            drive_template(model, seq, &encoded, &ctx.sim).expect("library streams drive");
        let demand = SessionDemand::estimate(model, seq, &encoded, base_interval_ns, &ctx.sim);
        entries.push(StreamEntry { template, demand });
    };
    for i in 0..STD_STREAMS {
        push(&ctx.model, &ctx.davis[i % ctx.davis.len()]);
    }
    // Short GOP: anchors every other frame — the NN-L-heavy mix the
    // affinity placer keeps apart from NN-S-dominated streams.
    let short_gop = ctx.train_variant(
        VrDannConfig {
            codec: CodecConfig {
                gop_len: 4,
                b_frames: BFrameMode::Fixed(1),
                ..CodecConfig::default()
            },
            ..VrDannConfig::default()
        },
        TrainTask::Segmentation,
    );
    push(&short_gop, &ctx.davis[STD_STREAMS % ctx.davis.len()]);
    // Detection task on a VID-like stream.
    let detect = ctx.detection_model();
    let vid = ctx.vid_suite();
    push(&detect, &vid[0]);
    // Low resolution: half width (kept a multiple of 16 for the codec).
    let low_cfg = SuiteConfig {
        width: ((ctx.suite_cfg.width / 2) / 16 * 16).max(32),
        ..ctx.suite_cfg
    };
    let low = davis_val_suite(&low_cfg);
    push(&ctx.model, &low[0]);
    entries
}

/// Resolves every arrival's heterogeneous shape to a library slot: task
/// first (detection has its own model), then resolution, then GOP class;
/// plain sessions cycle the standard streams.
fn resolve_shapes(trace: &mut TrafficTrace) {
    for a in &mut trace.arrivals {
        a.stream = match (a.shape.task, a.shape.res, a.shape.gop) {
            (TaskKind::Detection, _, _) => IDX_DETECTION,
            (_, ResClass::Low, _) => IDX_LOW_RES,
            (_, _, vrd_serve::GopClass::Short) => IDX_SHORT_GOP,
            _ => a.stream % STD_STREAMS,
        };
    }
}

/// The bench SLO, scaled from the workload so quick and full runs gate
/// comparably: the admission projection's base latency (one NN-L plus a
/// switch pair) with 8× headroom.
fn bench_slo(library: &[StreamEntry], ctx: &Context) -> SloConfig {
    let base =
        library[0].demand.nnl_ns + ctx.sim.switch_to_large_ns() + ctx.sim.switch_to_small_ns();
    SloConfig {
        target_p99_ns: 8.0 * base,
        ..SloConfig::default()
    }
}

fn scaling_trace(shards: usize, library: &[StreamEntry], base_interval_ns: f64) -> TrafficTrace {
    let sessions = SESSIONS_PER_SHARD * shards;
    let stream_frames = library[0].template.frames;
    let span_ns = stream_frames as f64 * base_interval_ns;
    let mut trace = generate(&LoadGenConfig {
        seed: TRACE_SEED,
        sessions,
        streams: STD_STREAMS,
        stream_frames,
        base_interval_ns,
        // Offered rate scales with the fleet: the arrival window stays
        // ~0.6 stream spans at every shard count, so sessions overlap and
        // per-shard load is constant across rows (the premise of the
        // linear-scaling gate).
        mean_interarrival_ns: span_ns * 0.6 / sessions as f64,
        horizon_ns: span_ns,
        envelope: Envelope::Bursty {
            period_frac: 0.25,
            duty: 0.5,
            quiet_level: 0.25,
        },
        churn_rate: 0.05,
        heterogeneous: true,
    });
    resolve_shapes(&mut trace);
    trace
}

fn row_from_report(shards: usize, report: &FleetReport, base_fps: f64) -> FleetBenchRow {
    let alive_ns: f64 = report
        .shards
        .iter()
        .map(|s| (report.makespan_ns - s.created_ns).max(0.0))
        .sum();
    FleetBenchRow {
        shards,
        offered: report.offered,
        admitted: report.admitted,
        rejected: report.rejected,
        churned_out: report.churned_out,
        peak_concurrent: report.peak_concurrent,
        migrations: report.migrations,
        frames_served: report.frames_served,
        throughput_fps: report.throughput_fps,
        efficiency: if base_fps > 0.0 {
            report.throughput_fps / (shards as f64 * base_fps)
        } else {
            0.0
        },
        p50_ns: report.latency.p50_ns,
        p99_ns: report.latency.p99_ns,
        makespan_ns: report.makespan_ns,
        mean_utilization: if alive_ns > 0.0 {
            report.busy_ns / alive_ns
        } else {
            0.0
        },
        energy_j: report.energy_j,
    }
}

/// Runs the fleet bench: the fixed-shard scaling sweep plus the autoscaled
/// spike scenario.
pub fn run(ctx: &Context) -> FleetBench {
    // Pacing from the workload itself (scale-invariant): 12 NN-L times
    // per frame interval, the light-per-session regime a fleet serves.
    let probe = SessionDemand::estimate(
        &ctx.model,
        &ctx.davis[0],
        &ctx.model.encode(&ctx.davis[0]).expect("suite encodes"),
        1.0,
        &ctx.sim,
    );
    let base_interval_ns = 12.0 * probe.nnl_ns;
    let library = build_library(ctx, base_interval_ns);
    let slo = bench_slo(&library, ctx);

    let mut rows: Vec<FleetBenchRow> = Vec::with_capacity(SHARDS.len());
    let mut base_fps = 0.0;
    for &shards in &SHARDS {
        let trace = scaling_trace(shards, &library, base_interval_ns);
        let cfg = FleetConfig {
            min_shards: shards,
            max_shards: shards,
            slo,
            sim: ctx.sim,
            autoscale: None,
            ..FleetConfig::default()
        };
        let report = run_fleet(&trace, &library, &cfg).expect("scaling row serves");
        if shards == SHARDS[0] {
            base_fps = report.throughput_fps / shards as f64;
        }
        rows.push(row_from_report(shards, &report, base_fps));
    }

    // The 4× flash crowd: a small fleet with autoscaling absorbs a spike
    // that a fixed fleet of the same floor would have to reject.
    let stream_frames = library[0].template.frames;
    let span_ns = stream_frames as f64 * base_interval_ns;
    let spike_sessions = 6 * SESSIONS_PER_SHARD;
    let mut spike_trace = generate(&LoadGenConfig {
        seed: TRACE_SEED ^ 0x51_1ce5,
        sessions: spike_sessions,
        streams: STD_STREAMS,
        stream_frames,
        base_interval_ns,
        // Base rate sized for ~2 shards; the spike quadruples it.
        mean_interarrival_ns: span_ns * 2.0 / spike_sessions as f64,
        horizon_ns: 2.0 * span_ns,
        envelope: Envelope::Spike {
            factor: 4.0,
            start_frac: 0.35,
            end_frac: 0.65,
        },
        churn_rate: 0.1,
        heterogeneous: true,
    });
    resolve_shapes(&mut spike_trace);
    let spike_cfg = FleetConfig {
        min_shards: 2,
        max_shards: 16,
        slo,
        sim: ctx.sim,
        autoscale: Some(AutoscaleConfig::default()),
        ..FleetConfig::default()
    };
    let spike_report = run_fleet(&spike_trace, &library, &spike_cfg).expect("spike serves");
    let spike = SpikeSummary {
        offered: spike_report.offered,
        admitted: spike_report.admitted,
        rejected: spike_report.rejected,
        scale_ups: spike_report.scale_ups,
        scale_downs: spike_report.scale_downs,
        peak_shards: spike_report.peak_shards,
        peak_concurrent: spike_report.peak_concurrent,
        p99_ns: spike_report.latency.p99_ns,
        slo_p99_ns: slo.target_p99_ns,
        reject_rate: spike_report.rejected as f64 / spike_report.offered.max(1) as f64,
        shed_rate: spike_report.shed_rate(),
        held: spike_report.latency.p99_ns <= slo.target_p99_ns,
    };

    FleetBench { rows, spike }
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

impl FleetBench {
    /// Acceptance gates: ≥ 64 sessions resident across ≥ 8 shards, fleet
    /// throughput ≥ 0.8× ideal linear scaling at 8 shards, and the
    /// autoscaler holding the p99 SLO under the 4× spike.
    pub fn acceptance_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        match self.rows.iter().find(|r| r.shards >= 8) {
            None => fails.push("no ≥8-shard scaling row was produced".to_string()),
            Some(r) => {
                if r.peak_concurrent < 64 {
                    fails.push(format!(
                        "{}-shard row peaked at {} concurrent sessions (< 64)",
                        r.shards, r.peak_concurrent
                    ));
                }
                if r.efficiency < 0.8 {
                    fails.push(format!(
                        "{}-shard throughput efficiency {:.3} below 0.8× ideal linear",
                        r.shards, r.efficiency
                    ));
                }
            }
        }
        if !self.spike.held {
            fails.push(format!(
                "autoscaler missed the SLO under the 4× spike: p99 {:.3} ms > {:.3} ms",
                self.spike.p99_ns / 1e6,
                self.spike.slo_p99_ns / 1e6
            ));
        }
        if self.spike.scale_ups == 0 {
            fails.push("the 4× spike never triggered a scale-up".to_string());
        }
        fails
    }

    /// Renders the scaling table and the spike summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "shards",
            "offered",
            "admitted",
            "churn",
            "peak conc",
            "served",
            "fps",
            "efficiency",
            "p50 ms",
            "p99 ms",
            "util",
            "energy J",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.shards.to_string(),
                r.offered.to_string(),
                r.admitted.to_string(),
                r.churned_out.to_string(),
                r.peak_concurrent.to_string(),
                r.frames_served.to_string(),
                format!("{:.1}", r.throughput_fps),
                format!("{:.3}", r.efficiency),
                fmt_ms(r.p50_ns),
                fmt_ms(r.p99_ns),
                fmt_pct(r.mean_utilization),
                format!("{:.4}", r.energy_j),
            ]);
        }
        let s = &self.spike;
        format!(
            "Fleet: shards × trace-driven load, affinity placement, autoscaled spike\n{}\
             spike 4x: offered {} admitted {} rejected {} (reject rate {:.1}%, shed rate {:.1}%)\n\
             spike 4x: scale-ups {} scale-downs {} peak shards {} peak concurrent {}\n\
             spike 4x: p99 {} ms vs SLO {} ms — {}\n",
            t.render(),
            s.offered,
            s.admitted,
            s.rejected,
            100.0 * s.reject_rate,
            100.0 * s.shed_rate,
            s.scale_ups,
            s.scale_downs,
            s.peak_shards,
            s.peak_concurrent,
            fmt_ms(s.p99_ns),
            fmt_ms(s.slo_p99_ns),
            if s.held { "HELD" } else { "MISSED" },
        )
    }

    /// Machine-readable JSON (hand-rolled — the workspace carries no
    /// serialisation dependency).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"shards\":{},\"offered\":{},\"admitted\":{},\"rejected\":{},\
                     \"churned_out\":{},\"peak_concurrent\":{},\"migrations\":{},\
                     \"frames_served\":{},\"throughput_fps\":{:.3},\"efficiency\":{:.6},\
                     \"p50_ns\":{:.1},\"p99_ns\":{:.1},\"makespan_ns\":{:.1},\
                     \"mean_utilization\":{:.6},\"energy_j\":{:.6}}}",
                    r.shards,
                    r.offered,
                    r.admitted,
                    r.rejected,
                    r.churned_out,
                    r.peak_concurrent,
                    r.migrations,
                    r.frames_served,
                    r.throughput_fps,
                    r.efficiency,
                    r.p50_ns,
                    r.p99_ns,
                    r.makespan_ns,
                    r.mean_utilization,
                    r.energy_j,
                )
            })
            .collect();
        let s = &self.spike;
        format!(
            "{{\n  \"experiment\": \"fleet\",\n  \"rows\": [\n{}\n  ],\n  \"spike\": \
             {{\"offered\":{},\"admitted\":{},\"rejected\":{},\"scale_ups\":{},\
             \"scale_downs\":{},\"peak_shards\":{},\"peak_concurrent\":{},\
             \"p99_ns\":{:.1},\"slo_p99_ns\":{:.1},\"reject_rate\":{:.6},\
             \"shed_rate\":{:.6},\"held\":{}}}\n}}\n",
            rows.join(",\n"),
            s.offered,
            s.admitted,
            s.rejected,
            s.scale_ups,
            s.scale_downs,
            s.peak_shards,
            s.peak_concurrent,
            s.p99_ns,
            s.slo_p99_ns,
            s.reject_rate,
            s.shed_rate,
            s.held,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fleet_quick_scales_and_absorbs_the_spike() {
        let ctx = Context::new(Scale::Quick);
        let bench = run(&ctx);
        assert_eq!(bench.rows.len(), SHARDS.len());

        // The acceptance gates hold at quick scale.
        let fails = bench.acceptance_failures();
        assert!(fails.is_empty(), "acceptance failures: {fails:?}");

        // Offered load scales with the fleet; the 8-shard row serves ≥ 64
        // concurrent sessions across 8 shards.
        for (r, &s) in bench.rows.iter().zip(&SHARDS) {
            assert_eq!(r.shards, s);
            assert_eq!(r.offered, SESSIONS_PER_SHARD * s);
            assert_eq!(r.admitted + r.rejected + r.churned_out, r.offered);
            assert!(r.frames_served > 0);
            assert!(r.energy_j > 0.0);
        }
        let heavy = bench.rows.last().unwrap();
        assert!(heavy.peak_concurrent >= 64);
        assert!(heavy.efficiency >= 0.8);

        // The spike scenario exercises the autoscaler both ways and
        // reports its shedding honestly.
        assert!(bench.spike.scale_ups > 0);
        assert!(bench.spike.peak_shards > 2);
        assert!(bench.spike.held);
        assert!(bench.spike.reject_rate >= 0.0 && bench.spike.reject_rate < 1.0);

        let text = bench.render();
        assert!(text.contains("Fleet"));
        assert!(text.contains("efficiency"));
        assert!(text.contains("spike 4x"));
        let json = bench.to_json();
        assert!(json.contains("\"experiment\": \"fleet\""));
        assert!(json.contains("\"efficiency\""));
        assert!(json.contains("\"held\":true"));

        // Byte-identical rerun — the determinism CI guards with `cmp`.
        let again = run(&ctx);
        assert_eq!(json, again.to_json());
        assert_eq!(text, again.render());
    }
}
