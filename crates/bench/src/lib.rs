//! # vrd-bench — the experiment harness
//!
//! Regenerates every table and figure of the VR-DANN paper's evaluation
//! (MICRO 2020, §VI) from this repository's substrates. One module per
//! figure; each exposes `run(&Context)` returning structured rows plus a
//! `render()` that prints the same rows/series the paper reports.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig03`] | Fig. 3: B-frame ratio, refs per B-frame |
//! | [`fig07`] | Fig. 7: execution timelines (Gantt) |
//! | [`fig09`] | Fig. 9: per-video accuracy, FAVOS vs VR-DANN |
//! | [`fig10`] | Fig. 10: averaged segmentation accuracy |
//! | [`fig11`] | Fig. 11: detection mAP by speed group |
//! | [`fig12`] | Fig. 12: per-video cycles + TOPS |
//! | [`fig13`] | Fig. 13: averaged performance & energy (+ HD fps) |
//! | [`featprop`] | extra: feature-propagation baseline, accuracy vs NPU load |
//! | [`fig14`] | Fig. 14: DRAM traffic breakdown |
//! | [`fig15`] | Fig. 15: B-ratio sweep |
//! | [`fig16`] | Fig. 16: search-interval sweep |
//! | [`fig17`] | Fig. 17: H.264 vs H.265 |
//! | [`table02`] | Table II: architecture configuration |
//! | [`ablation`] | extra: design-choice ablations |
//! | [`sensitivity`] | extra: platform sensitivity (NPU/DRAM/decoder) |
//! | [`nns_width`] | extra: NN-S width design-space sweep |
//! | [`resilience`] | extra: accuracy vs injected bitstream loss |
//! | [`serve_bench`] | extra: multi-session serving, FIFO vs batching |
//! | [`chaos_bench`] | extra: fault-injected serving, recovery vs shed-only |
//! | [`fleet_bench`] | extra: fleet scaling, sharded NPUs + autoscaled spike |
//! | [`e2e`] | extra: measured end-to-end fps, sequential vs pipelined |
//!
//! Binaries (`cargo run --release --bin fig10`, …) print the tables;
//! `--quick` switches to the reduced scale.

pub mod ablation;
pub mod chaos_bench;
pub mod context;
pub mod e2e;
pub mod featprop;
pub mod fig03;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fleet_bench;
pub mod nns_width;
pub mod resilience;
pub mod sensitivity;
pub mod serve_bench;
pub mod table;
pub mod table02;
pub mod timing;

pub use context::{parallel_map, Context, Scale};
pub use timing::time_median;
