//! NN-S width design-space sweep (beyond the paper): accuracy vs compute of
//! the refinement network.
//!
//! The paper fixes NN-S at "3 layers" without exploring its width; this
//! sweep shows the knee — below some width the network cannot express the
//! boundary corrections, above it the extra MACs buy nothing — which is the
//! evidence behind this repository's default of 8 hidden channels.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_score, Table};
use vr_dann::{TrainTask, VrDannConfig};
use vrd_metrics::{mean_scores, SegScores};

/// One width's result.
#[derive(Debug, Clone)]
pub struct WidthRow {
    /// Hidden channel count.
    pub hidden: usize,
    /// Trainable parameters.
    pub params: usize,
    /// Inference MACs per frame at the suite resolution.
    pub macs_per_frame: u64,
    /// Suite-mean accuracy.
    pub scores: SegScores,
}

/// The complete sweep.
#[derive(Debug, Clone)]
pub struct NnsWidth {
    /// Rows in increasing width order.
    pub rows: Vec<WidthRow>,
}

/// Runs the sweep over the given hidden widths.
pub fn run(ctx: &Context, widths: &[usize]) -> NnsWidth {
    let rows = widths
        .iter()
        .map(|&hidden| {
            let model = ctx.train_variant(
                VrDannConfig {
                    nns_hidden: hidden,
                    ..VrDannConfig::default()
                },
                TrainTask::Segmentation,
            );
            let scores = parallel_map(&ctx.davis, |seq| {
                let encoded = model.encode(seq).expect("sweep sequences encode");
                let run = model
                    .run_segmentation(seq, &encoded)
                    .expect("sweep sequences segment");
                ctx.score(seq, &run.masks)
            });
            WidthRow {
                hidden,
                params: model.nns().n_params(),
                macs_per_frame: model.nns().macs(ctx.suite_cfg.height, ctx.suite_cfg.width),
                scores: mean_scores(&scores),
            }
        })
        .collect();
    NnsWidth { rows }
}

impl NnsWidth {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["hidden", "params", "MMACs/frame", "F-score", "IoU"]);
        for r in &self.rows {
            t.row(vec![
                r.hidden.to_string(),
                r.params.to_string(),
                format!("{:.2}", r.macs_per_frame as f64 / 1e6),
                fmt_score(r.scores.f_score),
                fmt_score(r.scores.iou),
            ]);
        }
        format!(
            "NN-S width sweep: refinement accuracy vs compute\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn width_sweep_quick_shows_a_knee() {
        let ctx = Context::new(Scale::Quick);
        let sweep = run(&ctx, &[2, 8]);
        assert_eq!(sweep.rows.len(), 2);
        let narrow = &sweep.rows[0];
        let wide = &sweep.rows[1];
        assert!(wide.params > narrow.params);
        assert!(wide.macs_per_frame > narrow.macs_per_frame);
        // Wider must not be materially worse.
        assert!(
            wide.scores.iou >= narrow.scores.iou - 0.02,
            "wide {:.3} vs narrow {:.3}",
            wide.scores.iou,
            narrow.scores.iou
        );
        assert!(sweep.render().contains("MMACs"));
    }
}
