//! Resilience sweep: recognition accuracy vs injected bitstream loss.
//!
//! Packetizes each validation sequence, plants transport faults at a range
//! of loss rates (0–20 %) and runs the concealing pipeline entry points,
//! reporting how the DAVIS J-mean and the VID detection mAP degrade. Two
//! fault profiles are swept side by side:
//!
//! * **b-mv** — [`FaultConfig::b_mv_loss`]: only B-frame motion-vector
//!   payloads are dropped or truncated. This is the loss VR-DANN is uniquely
//!   exposed to (the baselines decode pixels; VR-DANN reconstructs from the
//!   MV records themselves).
//! * **mixed** — [`FaultConfig::uniform`]: bit flips, truncation and whole
//!   lost frames across all frame types (first I-frame protected), which
//!   also exercises anchor substitution and NN-L re-inference.
//!
//! At a 0 % rate both profiles plant nothing and the rows must reproduce
//! the clean pipeline's accuracy exactly (the concealment counters are
//! asserted clean in the module test).

use crate::context::{parallel_map, Context};
use crate::table::{fmt_pct, fmt_score, Table};
use vr_dann::{ConcealmentStats, DetectionRun, ResilienceOptions, VrDann};
use vrd_codec::{inject, packetize, FaultConfig, PacketStream};
use vrd_metrics::{average_precision, FrameDetections};
use vrd_video::Sequence;

/// The swept loss rates (fraction of frames faulted).
pub const RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20];

/// The single rate the CI smoke mode runs at.
pub const SMOKE_RATE: f64 = 0.05;

/// Aggregate outcome of one segmentation leg at one loss rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegLeg {
    /// Mean region similarity (IoU) over the suite — the DAVIS J-mean.
    pub j_mean: f64,
    /// Mean contour score over the suite — the DAVIS F-mean.
    pub f_mean: f64,
    /// Faults the injector planted across the suite.
    pub fault_events: usize,
    /// Summed concealment counters across the suite.
    pub concealment: ConcealmentStats,
}

/// Aggregate outcome of the detection leg at one loss rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetLeg {
    /// Mean average precision over the VID-like suite.
    pub map: f64,
    /// Faults the injector planted across the suite.
    pub fault_events: usize,
    /// Summed concealment counters across the suite.
    pub concealment: ConcealmentStats,
}

/// One loss rate's results.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceRow {
    /// Injected loss rate.
    pub rate: f64,
    /// Segmentation under B-frame MV loss.
    pub seg_bmv: SegLeg,
    /// Segmentation under mixed faults (all kinds, anchors included).
    pub seg_mixed: SegLeg,
    /// Detection under B-frame MV loss.
    pub det_bmv: DetLeg,
}

/// The complete sweep.
#[derive(Debug, Clone)]
pub struct Resilience {
    /// One row per swept loss rate, ascending.
    pub rows: Vec<ResilienceRow>,
}

/// Deterministic per-(rate, sequence) injector seed, so every rerun plants
/// the same faults and adjacent rates are not trivially nested patterns.
fn fault_seed(rate_idx: usize, seq_idx: usize, leg: u64) -> u64 {
    0x5eed_0000 + leg * 0x0100_0000 + (rate_idx as u64) * 251 + seq_idx as u64
}

/// A sequence with its packetized clean stream and suite index.
type Packetized<'a> = (usize, &'a Sequence, PacketStream);

fn seg_leg(
    model: &VrDann,
    pairs: &[Packetized<'_>],
    rate_idx: usize,
    leg_id: u64,
    cfg_of: impl Fn(u64) -> FaultConfig + Sync,
    score: impl Fn(&Sequence, &[vrd_video::SegMask]) -> vrd_metrics::SegScores + Sync,
) -> SegLeg {
    let per_seq = parallel_map(pairs, |(i, seq, ps)| {
        let (damaged, log) = inject(ps, &cfg_of(fault_seed(rate_idx, *i, leg_id)));
        let run = model
            .run_segmentation_resilient(seq, &damaged, &ResilienceOptions::default())
            .expect("resilient segmentation completes on damaged streams");
        let scores = score(seq, &run.masks);
        (
            scores.iou,
            scores.f_score,
            log.events.len(),
            run.concealment,
        )
    });
    let n = per_seq.len().max(1) as f64;
    let mut leg = SegLeg::default();
    for (iou, f, events, conceal) in &per_seq {
        leg.j_mean += iou / n;
        leg.f_mean += f / n;
        leg.fault_events += events;
        leg.concealment.merge(conceal);
    }
    leg
}

fn det_ap(run: &DetectionRun, seq: &Sequence) -> f64 {
    let frames: Vec<FrameDetections> = run
        .detections
        .iter()
        .zip(&seq.gt_boxes)
        .map(|(dets, gts)| FrameDetections {
            detections: dets.clone(),
            ground_truth: gts.clone(),
        })
        .collect();
    average_precision(&frames)
}

/// Runs the sweep at the given loss rates (ascending order recommended).
pub fn run_rates(ctx: &Context, rates: &[f64]) -> Resilience {
    // Encode + packetize once per sequence; only the injected faults vary
    // across rates.
    let seg_streams = parallel_map(&ctx.davis, |seq| {
        let encoded = ctx.model.encode(seq).expect("suite sequences encode");
        packetize(&encoded.bitstream).expect("valid streams packetize")
    });
    let seg_pairs: Vec<Packetized<'_>> = ctx
        .davis
        .iter()
        .zip(seg_streams)
        .enumerate()
        .map(|(i, (s, ps))| (i, s, ps))
        .collect();

    let det_model = ctx.detection_model();
    let vid = ctx.vid_suite();
    let det_streams = parallel_map(&vid, |seq| {
        let encoded = det_model.encode(seq).expect("suite sequences encode");
        packetize(&encoded.bitstream).expect("valid streams packetize")
    });
    let det_pairs: Vec<Packetized<'_>> = vid
        .iter()
        .zip(det_streams)
        .enumerate()
        .map(|(i, (s, ps))| (i, s, ps))
        .collect();

    let rows = rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let seg_bmv = seg_leg(
                &ctx.model,
                &seg_pairs,
                ri,
                0,
                |seed| FaultConfig::b_mv_loss(rate, seed),
                |seq, masks| ctx.score(seq, masks),
            );
            let seg_mixed = seg_leg(
                &ctx.model,
                &seg_pairs,
                ri,
                1,
                |seed| FaultConfig::uniform(rate, seed),
                |seq, masks| ctx.score(seq, masks),
            );
            let det_results = parallel_map(&det_pairs, |(i, seq, ps)| {
                let cfg = FaultConfig::b_mv_loss(rate, fault_seed(ri, *i, 2));
                let (damaged, log) = inject(ps, &cfg);
                let run = det_model
                    .run_detection_resilient(seq, &damaged, &ResilienceOptions::default())
                    .expect("resilient detection completes on damaged streams");
                (det_ap(&run, seq), log.events.len(), run.concealment)
            });
            let dn = det_results.len().max(1) as f64;
            let mut det_bmv = DetLeg::default();
            for (ap, events, conceal) in &det_results {
                det_bmv.map += ap / dn;
                det_bmv.fault_events += events;
                det_bmv.concealment.merge(conceal);
            }
            ResilienceRow {
                rate,
                seg_bmv,
                seg_mixed,
                det_bmv,
            }
        })
        .collect();
    Resilience { rows }
}

/// Runs the full sweep (all rates in [`RATES`]).
pub fn run(ctx: &Context) -> Resilience {
    run_rates(ctx, &RATES)
}

impl Resilience {
    /// The zero-loss row, if swept — the clean-pipeline reference point.
    pub fn clean_row(&self) -> Option<&ResilienceRow> {
        self.rows.iter().find(|r| r.rate == 0.0)
    }

    /// Renders the degradation-curve table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "loss",
            "J b-mv",
            "F b-mv",
            "J mixed",
            "det mAP",
            "faults b-mv",
            "faults mixed",
            "concealed",
        ]);
        for r in &self.rows {
            t.row(vec![
                fmt_pct(r.rate),
                fmt_score(r.seg_bmv.j_mean),
                fmt_score(r.seg_bmv.f_mean),
                fmt_score(r.seg_mixed.j_mean),
                fmt_score(r.det_bmv.map),
                r.seg_bmv.fault_events.to_string(),
                r.seg_mixed.fault_events.to_string(),
                (r.seg_bmv.concealment.total()
                    + r.seg_mixed.concealment.total()
                    + r.det_bmv.concealment.total())
                .to_string(),
            ]);
        }
        format!(
            "Resilience: accuracy vs injected loss rate (concealing pipeline)\n{}",
            t.render()
        )
    }

    /// Machine-readable JSON of the sweep (hand-rolled — the workspace
    /// carries no serialisation dependency).
    pub fn to_json(&self) -> String {
        fn conceal_json(c: &ConcealmentStats) -> String {
            format!(
                "{{\"b_copied\":{},\"b_salvaged\":{},\"anchors_lost\":{},\
                 \"anchors_substituted\":{},\"nnl_reinferences\":{},\"nns_failures\":{}}}",
                c.b_copied,
                c.b_salvaged,
                c.anchors_lost,
                c.anchors_substituted,
                c.nnl_reinferences,
                c.nns_failures
            )
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"rate\":{:.3},\
                     \"seg_b_mv\":{{\"j_mean\":{:.6},\"f_mean\":{:.6},\"fault_events\":{},\"concealment\":{}}},\
                     \"seg_mixed\":{{\"j_mean\":{:.6},\"f_mean\":{:.6},\"fault_events\":{},\"concealment\":{}}},\
                     \"det_b_mv\":{{\"map\":{:.6},\"fault_events\":{},\"concealment\":{}}}}}",
                    r.rate,
                    r.seg_bmv.j_mean,
                    r.seg_bmv.f_mean,
                    r.seg_bmv.fault_events,
                    conceal_json(&r.seg_bmv.concealment),
                    r.seg_mixed.j_mean,
                    r.seg_mixed.f_mean,
                    r.seg_mixed.fault_events,
                    conceal_json(&r.seg_mixed.concealment),
                    r.det_bmv.map,
                    r.det_bmv.fault_events,
                    conceal_json(&r.det_bmv.concealment),
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"resilience\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn resilience_quick_zero_loss_is_clean_and_loss_degrades() {
        let ctx = Context::new(Scale::Quick);
        let sweep = run_rates(&ctx, &[0.0, 0.15]);
        assert_eq!(sweep.rows.len(), 2);
        let clean = sweep.clean_row().expect("0% rate was swept");
        // No faults planted, nothing concealed: the clean pipeline's score.
        assert_eq!(clean.seg_bmv.fault_events, 0);
        assert!(clean.seg_bmv.concealment.is_clean());
        assert!(clean.seg_mixed.concealment.is_clean());
        assert!(clean.det_bmv.concealment.is_clean());
        assert!(
            clean.seg_bmv.j_mean > 0.3,
            "clean J {:.3}",
            clean.seg_bmv.j_mean
        );
        // At 15% loss something was planted, concealed, and the score is a
        // bounded degradation rather than a collapse.
        let lossy = sweep.rows[1];
        assert!(lossy.seg_bmv.fault_events > 0);
        assert!(lossy.seg_bmv.concealment.total() > 0);
        assert!(lossy.seg_bmv.j_mean <= clean.seg_bmv.j_mean + 1e-9);
        assert!(
            lossy.seg_bmv.j_mean > clean.seg_bmv.j_mean * 0.5,
            "J collapsed: {:.3} vs clean {:.3}",
            lossy.seg_bmv.j_mean,
            clean.seg_bmv.j_mean
        );
        let text = sweep.render();
        assert!(text.contains("Resilience"));
        assert!(text.contains("15.0%"));
        let json = sweep.to_json();
        assert!(json.contains("\"experiment\": \"resilience\""));
        assert!(json.contains("\"j_mean\""));
    }
}
