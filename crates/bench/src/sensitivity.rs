//! Sensitivity study (beyond the paper): how the headline speed-up responds
//! to the platform parameters — NPU utilisation, DRAM bandwidth and decoder
//! throughput.
//!
//! The most interesting effect is the **decoder ceiling**: once the NPU is
//! fast enough, VR-DANN-parallel saturates at the decoder's frame rate —
//! exactly the paper's §VI-B observation that VR-DANN "matches the speed of
//! the high-definition 854×480 decoder".

use crate::context::{parallel_map, Context};
use crate::table::{fmt_x, Table};
use vr_dann::baselines::run_favos;
use vr_dann::SchemeTrace;
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Knob label.
    pub label: String,
    /// FAVOS frames/second.
    pub favos_fps: f64,
    /// VR-DANN-parallel frames/second.
    pub vrdann_fps: f64,
    /// Speed-up of VR-DANN-parallel over FAVOS.
    pub speedup: f64,
    /// Whether VR-DANN-parallel is limited by the decoder stream rather
    /// than the NPU.
    pub decoder_bound: bool,
}

/// The complete study.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// NPU-utilisation sweep.
    pub npu: Vec<SensitivityRow>,
    /// DRAM-bandwidth sweep (scaling the burst time).
    pub dram: Vec<SensitivityRow>,
    /// Decoder-throughput sweep.
    pub decoder: Vec<SensitivityRow>,
}

fn point(
    label: String,
    favos_traces: &[SchemeTrace],
    vr_traces: &[SchemeTrace],
    sim: &SimConfig,
) -> SensitivityRow {
    let mut favos_ns = 0.0;
    let mut vr_ns = 0.0;
    let mut frames = 0usize;
    let mut decoder_bound = true;
    for (f, v) in favos_traces.iter().zip(vr_traces) {
        let rf = simulate(f, ExecMode::InOrder, sim);
        let rv = simulate(v, ExecMode::VrDannParallel(ParallelOptions::default()), sim);
        favos_ns += rf.total_ns;
        vr_ns += rv.total_ns;
        frames += rv.frames;
        // Decoder-bound when the stream time dominates the NPU time.
        let decode_share = rv.total_ns - rv.npu_busy_ns - rv.switch_ns - rv.recon_stall_ns;
        decoder_bound &= decode_share > 0.5 * rv.total_ns;
    }
    SensitivityRow {
        label,
        favos_fps: frames as f64 / (favos_ns / 1e9),
        vrdann_fps: frames as f64 / (vr_ns / 1e9),
        speedup: favos_ns / vr_ns,
        decoder_bound,
    }
}

/// Runs all three sweeps.
pub fn run(ctx: &Context) -> Sensitivity {
    let traces: Vec<(SchemeTrace, SchemeTrace)> = parallel_map(&ctx.davis, |seq| {
        let (encoded, vr) = ctx.run_vrdann(seq);
        let favos = run_favos(seq, &encoded, 1);
        (favos.trace, vr.trace)
    });
    let favos_traces: Vec<SchemeTrace> = traces.iter().map(|t| t.0.clone()).collect();
    let vr_traces: Vec<SchemeTrace> = traces.iter().map(|t| t.1.clone()).collect();

    let base = SimConfig::default();
    let npu = [0.2, 0.41, 0.6, 0.8, 1.0]
        .into_iter()
        .map(|u| {
            let mut sim = base;
            sim.npu.utilization = u;
            point(format!("NPU util {u:.2}"), &favos_traces, &vr_traces, &sim)
        })
        .collect();
    let dram = [0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|k| {
            let mut sim = base;
            sim.dram.burst_ns = base.dram.burst_ns / k;
            point(
                format!("DRAM {k:.1}x bandwidth"),
                &favos_traces,
                &vr_traces,
                &sim,
            )
        })
        .collect();
    let decoder = [0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|k| {
            let mut sim = base;
            sim.decoder.freq_hz = base.decoder.freq_hz * k;
            point(
                format!("decoder {k:.1}x speed"),
                &favos_traces,
                &vr_traces,
                &sim,
            )
        })
        .collect();
    Sensitivity { npu, dram, decoder }
}

impl Sensitivity {
    /// Renders all three tables.
    pub fn render(&self) -> String {
        let render_one = |title: &str, rows: &[SensitivityRow]| {
            let mut t = Table::new(vec![
                "setting",
                "FAVOS fps",
                "VR-DANN fps",
                "speedup",
                "bound",
            ]);
            for r in rows {
                t.row(vec![
                    r.label.clone(),
                    format!("{:.1}", r.favos_fps),
                    format!("{:.1}", r.vrdann_fps),
                    fmt_x(r.speedup),
                    if r.decoder_bound { "decoder" } else { "NPU" }.to_string(),
                ]);
            }
            format!("{title}\n{}", t.render())
        };
        format!(
            "{}\n{}\n{}",
            render_one("Sensitivity: NPU utilisation", &self.npu),
            render_one("Sensitivity: DRAM bandwidth", &self.dram),
            render_one("Sensitivity: decoder throughput", &self.decoder),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn sensitivity_quick_shows_expected_monotonicity() {
        let ctx = Context::new(Scale::Quick);
        let s = run(&ctx);
        // Faster NPU -> higher fps for both schemes.
        assert!(s.npu.last().unwrap().vrdann_fps > s.npu.first().unwrap().vrdann_fps);
        assert!(s.npu.last().unwrap().favos_fps > s.npu.first().unwrap().favos_fps);
        // VR-DANN always at least as fast as FAVOS.
        for row in s.npu.iter().chain(&s.dram).chain(&s.decoder) {
            assert!(row.speedup >= 1.0, "{}: {}", row.label, row.speedup);
        }
        assert!(s.render().contains("Sensitivity"));
    }
}
