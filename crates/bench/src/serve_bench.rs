//! Serving sweep: 1→K concurrent sessions on one shared virtual NPU.
//!
//! Drives the `vrd-serve` subsystem over the DAVIS-like validation suite:
//! each row offers K concurrent recognition sessions (cycling the suite when
//! K exceeds it) to the admission controller, serves the admitted set, and
//! reports the shared NPU under both disciplines — per-stream FIFO and the
//! cross-session extension of the paper's lagged queue switching (§V-B's
//! b_Q idea applied across streams). The headline columns are the model
//! switches the batching scheduler saves and the p99 frame latency under
//! each policy; the admission columns show where the SLO starts shedding
//! load. Deterministic for a fixed scale: reruns are byte-identical.

use crate::context::{parallel_map, Context};
use crate::table::{fmt_pct, Table};
use vrd_codec::EncodedVideo;
use vrd_serve::{serve, LatencyStats, ScheduleOutcome, ServeConfig, ServeReport, SessionState};

/// The session counts the full sweep offers.
pub const SESSIONS: [usize; 5] = [1, 2, 4, 6, 8];

/// One policy's shared-NPU outcome, flattened for reporting.
#[derive(Debug, Clone, Copy)]
pub struct PolicySummary {
    /// Frames the NPU served.
    pub frames_served: usize,
    /// Frames shed past their deadline.
    pub frames_shed: usize,
    /// NN-L↔NN-S model switches paid.
    pub switches: usize,
    /// Nanoseconds spent switching models.
    pub switch_ns: f64,
    /// Nanoseconds the NPU spent busy (switching + serving).
    pub busy_ns: f64,
    /// Wall time from first arrival to last completion.
    pub makespan_ns: f64,
    /// Deepest any session queue got.
    pub max_queue_depth: usize,
    /// Mean total queue depth sampled at each service completion.
    pub mean_queue_depth: f64,
    /// Times a bounded session queue backpressured its decode lane.
    pub decoder_stalls: usize,
    /// Frame latency distribution (arrival → NPU completion).
    pub latency: LatencyStats,
}

impl From<&ScheduleOutcome> for PolicySummary {
    fn from(o: &ScheduleOutcome) -> Self {
        Self {
            frames_served: o.frames_served,
            frames_shed: o.frames_shed,
            switches: o.switches,
            switch_ns: o.switch_ns,
            busy_ns: o.busy_ns,
            makespan_ns: o.makespan_ns,
            max_queue_depth: o.max_queue_depth,
            mean_queue_depth: o.mean_queue_depth,
            decoder_stalls: o.decoder_stalls,
            latency: o.latency,
        }
    }
}

/// One session count's results.
#[derive(Debug, Clone)]
pub struct ServeBenchRow {
    /// Sessions offered.
    pub requested: usize,
    /// Sessions the SLO admitted.
    pub admitted: usize,
    /// Sessions admission control rejected.
    pub rejected: usize,
    /// Names of the admitted sessions, in offered order.
    pub admitted_sessions: Vec<String>,
    /// `Some(k)` when admission saturated and this row's admitted set is
    /// identical to the earlier `k`-session row's — its schedule is a
    /// verbatim repeat of that row, not new information.
    pub duplicate_of: Option<usize>,
    /// Projected NPU utilisation over the admitted set.
    pub projected_utilization: f64,
    /// Shared NPU under per-stream FIFO.
    pub fifo: PolicySummary,
    /// Shared NPU under cross-session batching.
    pub batched: PolicySummary,
    /// Switches batching saved over FIFO (positive = saved).
    pub switches_saved: i64,
}

/// The complete serving sweep.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// One row per offered session count, ascending.
    pub rows: Vec<ServeBenchRow>,
}

fn row_from_report(requested: usize, report: &ServeReport) -> ServeBenchRow {
    ServeBenchRow {
        requested,
        admitted: report.admitted,
        rejected: report.rejected,
        admitted_sessions: report
            .sessions
            .iter()
            .filter(|s| s.state == SessionState::Drained)
            .map(|s| s.name.clone())
            .collect(),
        duplicate_of: None,
        projected_utilization: report.projected_utilization,
        fifo: PolicySummary::from(&report.fifo),
        batched: PolicySummary::from(&report.batched),
        switches_saved: report.switches_saved(),
    }
}

/// Runs the sweep at the given offered-session counts.
pub fn run_sessions(ctx: &Context, sessions: &[usize]) -> ServeBench {
    // Encode once per suite sequence; each session count reuses the streams.
    let encoded: Vec<EncodedVideo> = parallel_map(&ctx.davis, |seq| {
        ctx.model.encode(seq).expect("suite sequences encode")
    });
    let cfg = ServeConfig {
        sim: ctx.sim,
        ..ServeConfig::default()
    };
    let mut rows: Vec<ServeBenchRow> = Vec::with_capacity(sessions.len());
    for &k in sessions {
        // The load generator's fixed-seed legacy profile reproduces this
        // sweep's historical offered set exactly (k simultaneous standard
        // sessions cycling the suite), so the rows stay byte-identical
        // while the arrival list now comes from the same machinery the
        // fleet bench traces.
        let arrivals = vrd_serve::legacy_sweep(k, ctx.davis.len()).arrivals;
        let requests: Vec<_> = arrivals
            .iter()
            .map(|a| (&ctx.davis[a.stream], &encoded[a.stream]))
            .collect();
        let report = serve(&ctx.model, &requests, &cfg)
            .expect("admitted suite sessions serve to completion");
        let mut row = row_from_report(k, &report);
        // When admission saturates, a larger offered count admits the same
        // sessions as an earlier row and serving is deterministic, so the
        // whole schedule is a verbatim repeat — mark it instead of letting
        // the table re-report it as a distinct data point.
        row.duplicate_of = rows
            .iter()
            .find(|r| r.admitted_sessions == row.admitted_sessions)
            .map(|r| r.requested);
        rows.push(row);
    }
    ServeBench { rows }
}

/// Runs the full sweep (all counts in [`SESSIONS`]).
pub fn run(ctx: &Context) -> ServeBench {
    run_sessions(ctx, &SESSIONS)
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

impl ServeBench {
    /// Rows whose admitted set is large enough for cross-session batching
    /// to have headroom (the acceptance regime: ≥ 4 concurrent sessions).
    pub fn contended_rows(&self) -> impl Iterator<Item = &ServeBenchRow> {
        self.rows.iter().filter(|r| r.admitted >= 4)
    }

    /// Renders the serving table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "sessions",
            "admitted",
            "util",
            "fifo sw",
            "batch sw",
            "saved",
            "fifo p99 ms",
            "batch p99 ms",
            "fifo span ms",
            "batch span ms",
            "stalls",
            "note",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.requested.to_string(),
                r.admitted.to_string(),
                fmt_pct(r.projected_utilization),
                r.fifo.switches.to_string(),
                r.batched.switches.to_string(),
                r.switches_saved.to_string(),
                fmt_ms(r.fifo.latency.p99_ns),
                fmt_ms(r.batched.latency.p99_ns),
                fmt_ms(r.fifo.makespan_ns),
                fmt_ms(r.batched.makespan_ns),
                r.batched.decoder_stalls.to_string(),
                match r.duplicate_of {
                    Some(k) => format!("saturated (= {k}-session schedule)"),
                    None => String::new(),
                },
            ]);
        }
        // Pointer line (render-only; not a data point, absent from the
        // JSON, and appended after the table so the rows above stay
        // byte-identical): the fleet bench owns scaling claims past one
        // NPU.
        format!(
            "Serving: shared-NPU scheduling, per-stream FIFO vs cross-session batching\n{}\
             → scaling: fleet_bench supersedes this 1→8 sweep (sharded NPUs, trace-driven load)\n",
            t.render()
        )
    }

    /// Machine-readable JSON of the sweep (hand-rolled — the workspace
    /// carries no serialisation dependency).
    pub fn to_json(&self) -> String {
        fn policy_json(p: &PolicySummary) -> String {
            format!(
                "{{\"frames_served\":{},\"frames_shed\":{},\"switches\":{},\
                 \"switch_ns\":{:.1},\"busy_ns\":{:.1},\"makespan_ns\":{:.1},\
                 \"max_queue_depth\":{},\"mean_queue_depth\":{:.3},\
                 \"decoder_stalls\":{},\"latency\":{{\"mean_ns\":{:.1},\
                 \"p50_ns\":{:.1},\"p95_ns\":{:.1},\"p99_ns\":{:.1},\"max_ns\":{:.1}}}}}",
                p.frames_served,
                p.frames_shed,
                p.switches,
                p.switch_ns,
                p.busy_ns,
                p.makespan_ns,
                p.max_queue_depth,
                p.mean_queue_depth,
                p.decoder_stalls,
                p.latency.mean_ns,
                p.latency.p50_ns,
                p.latency.p95_ns,
                p.latency.p99_ns,
                p.latency.max_ns,
            )
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let admitted_sessions: Vec<String> = r
                    .admitted_sessions
                    .iter()
                    .map(|n| format!("\"{n}\""))
                    .collect();
                format!(
                    "    {{\"sessions\":{},\"admitted\":{},\"rejected\":{},\
                     \"admitted_sessions\":[{}],\"duplicate_of\":{},\
                     \"projected_utilization\":{:.6},\"switches_saved\":{},\
                     \"fifo\":{},\"batched\":{}}}",
                    r.requested,
                    r.admitted,
                    r.rejected,
                    admitted_sessions.join(","),
                    r.duplicate_of
                        .map_or_else(|| "null".to_string(), |k| k.to_string()),
                    r.projected_utilization,
                    r.switches_saved,
                    policy_json(&r.fifo),
                    policy_json(&r.batched),
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"serve\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn serve_quick_batching_wins_under_contention_and_slo_sheds() {
        let ctx = Context::new(Scale::Quick);
        let sweep = run_sessions(&ctx, &[1, 4, 6, 8]);
        assert_eq!(sweep.rows.len(), 4);

        // One stream: nothing to batch across sessions; policies agree.
        let solo = &sweep.rows[0];
        assert_eq!(solo.admitted, 1);
        assert_eq!(solo.admitted_sessions.len(), 1);
        assert_eq!(solo.switches_saved, 0);
        assert_eq!(solo.fifo.switches, solo.batched.switches);

        // The acceptance regime: at ≥ 4 admitted sessions the batching
        // scheduler pays strictly fewer switches AND a lower p99 than FIFO.
        let contended: Vec<_> = sweep.contended_rows().collect();
        assert!(!contended.is_empty(), "no row admitted ≥ 4 sessions");
        for r in contended {
            assert!(
                r.batched.switches < r.fifo.switches,
                "{} sessions: batch {} vs fifo {} switches",
                r.requested,
                r.batched.switches,
                r.fifo.switches
            );
            assert!(r.switches_saved > 0);
            assert!(
                r.batched.latency.p99_ns < r.fifo.latency.p99_ns,
                "{} sessions: batch p99 {:.0} vs fifo {:.0}",
                r.requested,
                r.batched.latency.p99_ns,
                r.fifo.latency.p99_ns
            );
            // Both policies served the full admitted workload.
            assert_eq!(r.fifo.frames_served, r.batched.frames_served);
            assert_eq!(r.fifo.frames_shed, 0);
        }

        // Offered load beyond the SLO gets shed at admission.
        let heavy = &sweep.rows[3];
        assert_eq!(heavy.requested, 8);
        assert!(heavy.rejected > 0, "8 offered sessions all admitted");
        assert!(heavy.admitted + heavy.rejected == 8);
        assert_eq!(heavy.admitted_sessions.len(), heavy.admitted);

        // Admission saturated: the 8-session row admits the same set the
        // 6-session row did, so it must be flagged as a verbatim repeat of
        // that schedule instead of re-reported as new data. Rows with
        // distinct admitted sets must not be flagged.
        let six = &sweep.rows[2];
        assert_eq!(six.requested, 6);
        assert_eq!(heavy.admitted_sessions, six.admitted_sessions);
        assert_eq!(heavy.duplicate_of, Some(6));
        for r in &sweep.rows[..3] {
            assert_eq!(
                r.duplicate_of, None,
                "{} sessions wrongly flagged",
                r.requested
            );
        }

        let text = sweep.render();
        assert!(text.contains("Serving"));
        assert!(text.contains("batch sw"));
        assert!(text.contains("saturated (= 6-session schedule)"));
        let json = sweep.to_json();
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"switches_saved\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"duplicate_of\":6"));
        assert!(json.contains("\"admitted_sessions\":["));
    }
}
