//! Plain-text table rendering for the experiment binaries.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like `2.9x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats an accuracy score with three decimals.
pub fn fmt_score(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["video", "iou"]);
        t.row(vec!["cows", "0.93"]);
        t.row(vec!["parkour-long-name", "0.88"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("video"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("parkour-long-name"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("0.93"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(2.899), "2.90x");
        assert_eq!(fmt_pct(0.651), "65.1%");
        assert_eq!(fmt_score(0.9157), "0.916");
    }
}
