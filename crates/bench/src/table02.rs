//! Table II: the VR-DANN-parallel architecture configuration, including the
//! agent unit's hardware budget.

use crate::table::Table;
use vrd_sim::{AgentFootprint, SimConfig};

/// Renders the configuration summary.
pub fn render(cfg: &SimConfig) -> String {
    let fp = AgentFootprint::from_config(&cfg.agent);
    let mut t = Table::new(vec!["component", "value"]);
    t.row(vec![
        "NPU compute (INT8)".to_string(),
        format!("{:.0} TOPS", cfg.npu.peak_ops_per_s / 1e12),
    ]);
    t.row(vec![
        "NPU buffer".to_string(),
        format!("{} MB", cfg.npu.buffer_bytes >> 20),
    ]);
    t.row(vec!["NPU frequency".to_string(), "1 GHz".to_string()]);
    t.row(vec![
        "Agent unit frequency".to_string(),
        format!("{:.0} MHz", cfg.agent.freq_hz / 1e6),
    ]);
    t.row(vec![
        "Decoder frequency".to_string(),
        format!("{:.0} MHz", cfg.decoder.freq_hz / 1e6),
    ]);
    t.row(vec![
        "tmp_B".to_string(),
        format!(
            "{} x {} KB = {} KB",
            cfg.agent.tmp_b_buffers,
            cfg.agent.tmp_b_bytes >> 10,
            fp.tmp_b_bytes >> 10
        ),
    ]);
    t.row(vec![
        "mv_T".to_string(),
        format!("{} entries, {} B", cfg.agent.mv_t_entries, fp.mv_t_bytes),
    ]);
    t.row(vec![
        "ip_Q".to_string(),
        format!("{} entries, {} B", cfg.agent.ip_q_entries, fp.ip_q_bytes),
    ]);
    t.row(vec![
        "b_Q".to_string(),
        format!("{} entries, {} B", cfg.agent.b_q_entries, fp.b_q_bytes),
    ]);
    t.row(vec![
        "agent control SRAM total".to_string(),
        format!("{} B (< 2 KB)", fp.control_bytes()),
    ]);
    format!(
        "Table II: VR-DANN-parallel architecture configuration\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_lists_paper_numbers() {
        let s = render(&SimConfig::default());
        assert!(s.contains("16 TOPS"));
        assert!(s.contains("8 MB"));
        assert!(s.contains("600 MHz"));
        assert!(s.contains("300 KB"));
        assert!(s.contains("< 2 KB"));
    }
}
