//! Shared wall-clock measurement helpers.
//!
//! Every bench binary that reports a measured time (`perf_snapshot`,
//! `e2e_bench`) goes through this module, so artifacts like
//! `BENCH_nn.json`, `BENCH_quant.json` and `BENCH_e2e.json` are produced
//! by one measurement harness and their numbers are directly comparable.

use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f`.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_reps_is_positive_and_finite() {
        let mut n = 0u64;
        let t = time_median(5, || {
            n += 1;
            std::hint::black_box(n);
        });
        assert!(t.is_finite() && t >= 0.0);
        assert_eq!(n, 5);
    }

    #[test]
    fn zero_reps_clamps_to_one_run() {
        let mut ran = false;
        let t = time_median(0, || ran = true);
        assert!(ran && t >= 0.0);
    }
}
