//! Golden-output pinning: the `--quick` renderings of Fig. 9, Fig. 13 and
//! the resilience sweep must stay byte-identical to the committed fixtures.
//!
//! These fixtures were captured from the corresponding binaries
//! (`fig09 --quick`, `fig13 --quick`, `resilience --quick`); any change to
//! seeding, trace layout, scheduling arithmetic or table formatting shows
//! up here as a diff. Refresh a fixture only when an output change is
//! intended, by re-running the binary and committing the new capture.

use vrd_bench::{fig09, fig13, resilience, Context, Scale};

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

fn assert_pinned(actual: &str, name: &str) {
    let expected = fixture(name);
    assert!(
        actual == expected,
        "{name} drifted from the committed fixture.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn quick_outputs_match_committed_fixtures() {
    let ctx = Context::new(Scale::Quick);

    // The binaries print the rendering with a trailing println newline.
    let fig09_out = format!("{}\n", fig09::run(&ctx).render());
    assert_pinned(&fig09_out, "fig09_quick.txt");

    let fig13_out = format!("{}\n", fig13::run(&ctx).render());
    assert_pinned(&fig13_out, "fig13_quick.txt");

    let sweep = resilience::run(&ctx);
    assert_pinned(&sweep.render(), "resilience_quick_results.txt");
    assert_pinned(&sweep.to_json(), "resilience_quick_results.json");
}
