//! Int8 tolerance regression (ISSUE 6 acceptance): on the quick suites the
//! quantized compute path must track the pinned f32 reference within 0.005
//! J-mean (DAVIS-like segmentation, the fig. 13 suite) and 0.005 detection
//! mAP (VID-like suite, the fig. 11 configuration), while putting the
//! byte-identical workload trace on the simulated NPU.

use vr_dann::{ComputeMode, DetectionRun, VrDann};
use vrd_bench::{Context, Scale};
use vrd_metrics::{average_precision, FrameDetections};
use vrd_video::Sequence;

const TOLERANCE: f64 = 0.005;

#[test]
fn int8_segmentation_j_mean_within_tolerance() {
    let ctx = Context::new(Scale::Quick);
    let int8 = ctx.model.clone().with_compute(ComputeMode::Int8);
    let (mut j_f32, mut j_int8) = (0.0f64, 0.0f64);
    for seq in &ctx.davis {
        // One encode feeds both paths: the decoder-side work is
        // mode-independent, only NN-S's arithmetic changes.
        let encoded = ctx.model.encode(seq).expect("suite sequences encode");
        let run_f32 = ctx
            .model
            .run_segmentation(seq, &encoded)
            .expect("f32 segmentation runs");
        let run_int8 = int8
            .run_segmentation(seq, &encoded)
            .expect("int8 segmentation runs");
        assert_eq!(
            run_f32.trace, run_int8.trace,
            "the NPU workload trace must be compute-mode-invariant"
        );
        j_f32 += ctx.score(seq, &run_f32.masks).iou;
        j_int8 += ctx.score(seq, &run_int8.masks).iou;
    }
    let n = ctx.davis.len() as f64;
    let (j_f32, j_int8) = (j_f32 / n, j_int8 / n);
    assert!(
        (j_f32 - j_int8).abs() <= TOLERANCE,
        "int8 J-mean {j_int8:.4} drifted more than {TOLERANCE} from f32 {j_f32:.4}"
    );
}

fn ap_of(run: &DetectionRun, seq: &Sequence) -> f64 {
    let frames: Vec<FrameDetections> = run
        .detections
        .iter()
        .zip(&seq.gt_boxes)
        .map(|(dets, gts)| FrameDetections {
            detections: dets.clone(),
            ground_truth: gts.clone(),
        })
        .collect();
    average_precision(&frames)
}

#[test]
fn int8_detection_map_within_tolerance() {
    let ctx = Context::new(Scale::Quick);
    let det_f32 = ctx.detection_model();
    let det_int8 = det_f32.clone().with_compute(ComputeMode::Int8);
    let suite = ctx.vid_suite();
    let map_of = |model: &VrDann, encoded: &[vrd_codec::EncodedVideo]| -> f64 {
        let sum: f64 = suite
            .iter()
            .zip(encoded)
            .map(|(seq, enc)| {
                let run = model.run_detection(seq, enc).expect("detection runs");
                ap_of(&run, seq)
            })
            .sum();
        sum / suite.len() as f64
    };
    let encoded: Vec<vrd_codec::EncodedVideo> = suite
        .iter()
        .map(|seq| det_f32.encode(seq).expect("suite sequences encode"))
        .collect();
    let map_f32 = map_of(&det_f32, &encoded);
    let map_int8 = map_of(&det_int8, &encoded);
    assert!(
        (map_f32 - map_int8).abs() <= TOLERANCE,
        "int8 mAP {map_int8:.4} drifted more than {TOLERANCE} from f32 {map_f32:.4}"
    );
}
