//! `vrdstat` — bitstream inspector.
//!
//! Encodes a DAVIS-like sequence and prints a per-frame breakdown of the
//! resulting bitstream: frame types in decode order, bytes, block-mode mix,
//! motion statistics and reference usage.
//!
//! ```text
//! cargo run --release -p vrd-codec --bin vrdstat -- [video] [--h264] [--quick]
//! ```

use vrd_codec::{CodecConfig, Decoder, Encoder, Standard};
use vrd_video::davis::{davis_sequence, davis_val_names, SuiteConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "cows".into());
    if !davis_val_names().contains(&name.as_str()) {
        return Err(format!(
            "unknown sequence {name:?}; choose from: {}",
            davis_val_names().join(", ")
        )
        .into());
    }
    let suite_cfg = if args.iter().any(|a| a == "--quick") {
        SuiteConfig::tiny()
    } else {
        SuiteConfig::default()
    };
    let codec = CodecConfig {
        standard: if args.iter().any(|a| a == "--h264") {
            Standard::H264
        } else {
            Standard::H265
        },
        ..CodecConfig::default()
    };

    let seq = davis_sequence(&name, &suite_cfg)?;
    let encoded = Encoder::new(codec).encode(&seq.frames)?;
    let summaries = Decoder::new().inspect(&encoded.bitstream)?;

    println!(
        "{} @ {}x{} | {} | {} frames | {} bytes ({:.1}x compression)",
        name,
        seq.width(),
        seq.height(),
        codec.standard,
        seq.len(),
        encoded.bitstream.len(),
        encoded.stats.compression_ratio(),
    );
    println!(
        "{:>4} {:>4} {:>4} | {:>6} | {:>5} {:>5} {:>5} | {:>7} | refs",
        "dec", "disp", "type", "bytes", "intra", "inter", "bi", "mean|mv|"
    );
    for s in &summaries {
        let refs: Vec<String> = s.refs.iter().map(|r| r.to_string()).collect();
        println!(
            "{:>4} {:>4} {:>4} | {:>6} | {:>5} {:>5} {:>5} | {:>7.2} | {}",
            s.decode_idx,
            s.display_idx,
            s.ftype.to_string(),
            s.bytes,
            s.intra_blocks,
            s.inter_blocks,
            s.bi_blocks,
            s.mean_mv(),
            refs.join(",")
        );
    }
    let b_bytes: usize = summaries
        .iter()
        .filter(|s| s.ftype == vrd_codec::FrameType::B)
        .map(|s| s.bytes)
        .sum();
    println!(
        "B-frames hold {:.0}% of the stream; VR-DANN skips decoding all of their pixels.",
        100.0 * b_bytes as f64 / encoded.bitstream.len() as f64
    );
    Ok(())
}
