//! Bitstream serialisation primitives.
//!
//! A byte-aligned container format with LEB128 varints and a zero-run-length
//! code for quantised residuals. It is deliberately simpler than CABAC but
//! it is a *real* bitstream: the decoder parses exactly these bytes, the
//! compression-ratio statistics come from its length, and the recognition
//! path's "decode I/P only" saving is measured on it.

use crate::error::{CodecError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a VR-DANN codec bitstream.
pub const MAGIC: [u8; 4] = *b"VRDC";
/// Format version written into every stream.
pub const VERSION: u8 = 1;

/// Append-only bitstream writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a signed varint (zigzag encoding).
    pub fn put_svarint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a zero-run-length coded residual block.
    ///
    /// Encoding: varint pair count, then for each non-zero coefficient a
    /// (varint zero-run, signed varint value) pair.
    pub fn put_residual(&mut self, vals: &[i16]) {
        let pairs: Vec<(u64, i16)> = {
            let mut out = Vec::new();
            let mut run = 0u64;
            for &v in vals {
                if v == 0 {
                    run += 1;
                } else {
                    out.push((run, v));
                    run = 0;
                }
            }
            out
        };
        self.put_varint(pairs.len() as u64);
        for (run, v) in pairs {
            self.put_varint(run);
            self.put_svarint(v as i64);
        }
    }

    /// Finalises the stream.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential bitstream reader.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wraps a byte buffer for reading.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] at end of stream.
    pub fn get_u8(&mut self) -> Result<u8> {
        if !self.buf.has_remaining() {
            return Err(CodecError::Bitstream(
                "unexpected end of stream (0 bytes remaining)".into(),
            ));
        }
        Ok(self.buf.get_u8())
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] on truncation or a varint longer
    /// than 10 bytes; messages carry the remaining-byte count so corrupt
    /// streams can be located.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Bitstream(format!(
            "varint longer than 10 bytes ({} bytes remaining)",
            self.remaining()
        )))
    }

    /// Reads a varint that must fit in `max` (counts, dimensions, indices).
    ///
    /// An out-of-range value is reported as an error with remaining-byte
    /// context — it is never silently clamped.
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] on truncation or when the decoded
    /// value exceeds `max`.
    pub fn get_varint_bounded(&mut self, max: u64, what: &str) -> Result<u64> {
        let v = self.get_varint()?;
        if v > max {
            return Err(CodecError::Bitstream(format!(
                "{what} {v} exceeds limit {max} ({} bytes remaining)",
                self.remaining()
            )));
        }
        Ok(v)
    }

    /// Reads a signed (zigzag) varint.
    ///
    /// # Errors
    /// Propagates [`CodecError::Bitstream`] from the underlying varint.
    pub fn get_svarint(&mut self) -> Result<i64> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Validates a residual pair count against the block size and the bytes
    /// actually left in the stream (each pair needs at least two bytes), so
    /// a corrupt count fails immediately with context instead of spinning
    /// through the rest of the stream.
    fn check_pairs(&self, pairs: u64, len: usize) -> Result<usize> {
        let remaining = self.remaining() as u64;
        if pairs > len as u64 || pairs * 2 > remaining {
            return Err(CodecError::Bitstream(format!(
                "residual pair count {pairs} impossible for block of {len} \
                 ({remaining} bytes remaining)"
            )));
        }
        Ok(pairs as usize)
    }

    /// Reads a residual block of exactly `len` coefficients.
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] if the coded runs overflow `len` or
    /// the pair count cannot fit the remaining bytes.
    pub fn get_residual(&mut self, len: usize) -> Result<Vec<i16>> {
        let mut out = vec![0i16; len];
        let pairs = self.get_varint()?;
        let pairs = self.check_pairs(pairs, len)?;
        let mut idx = 0usize;
        for _ in 0..pairs {
            let run = self.get_varint()? as usize;
            let val = self.get_svarint()?;
            idx = idx.checked_add(run).filter(|&i| i < len).ok_or_else(|| {
                CodecError::Bitstream(format!(
                    "residual run overflow past {len} ({} bytes remaining)",
                    self.remaining()
                ))
            })?;
            out[idx] = val as i16;
            idx += 1;
        }
        Ok(out)
    }

    /// Skips a residual block of a `len`-coefficient block without
    /// materialising it (recognition mode skips B-frame residuals).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] on truncation or an impossible
    /// pair count.
    pub fn skip_residual(&mut self, len: usize) -> Result<()> {
        let pairs = self.get_varint()?;
        let pairs = self.check_pairs(pairs, len)?;
        for _ in 0..pairs {
            self.get_varint()?;
            self.get_svarint()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            w.put_varint(v);
        }
        let mut r = Reader::new(w.into_bytes());
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn svarint_roundtrip() {
        let mut w = Writer::new();
        let values = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &values {
            w.put_svarint(v);
        }
        let mut r = Reader::new(w.into_bytes());
        for &v in &values {
            assert_eq!(r.get_svarint().unwrap(), v);
        }
    }

    #[test]
    fn residual_roundtrip_sparse_and_dense() {
        let sparse: Vec<i16> = {
            let mut v = vec![0i16; 64];
            v[3] = -5;
            v[40] = 17;
            v[63] = 1;
            v
        };
        let dense: Vec<i16> = (0..64).map(|i| (i as i16) - 32).collect();
        for vals in [sparse, dense, vec![0i16; 64]] {
            let mut w = Writer::new();
            w.put_residual(&vals);
            let mut r = Reader::new(w.into_bytes());
            assert_eq!(r.get_residual(64).unwrap(), vals);
        }
    }

    #[test]
    fn sparse_residual_is_compact() {
        let mut w = Writer::new();
        w.put_residual(&vec![0i16; 256]);
        assert_eq!(w.len(), 1, "all-zero residual should be a single byte");
    }

    #[test]
    fn skip_residual_advances_past_block() {
        let mut w = Writer::new();
        let vals = {
            let mut v = vec![0i16; 64];
            v[10] = 3;
            v
        };
        w.put_residual(&vals);
        w.put_u8(0xAB);
        let mut r = Reader::new(w.into_bytes());
        r.skip_residual(64).unwrap();
        assert_eq!(r.get_u8().unwrap(), 0xAB);
    }

    #[test]
    fn bounded_varint_rejects_out_of_range_with_context() {
        let mut w = Writer::new();
        w.put_varint(5000);
        w.put_u8(0);
        let mut r = Reader::new(w.into_bytes());
        let err = r.get_varint_bounded(4096, "frame width").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("frame width 5000"), "{msg}");
        assert!(msg.contains("exceeds limit 4096"), "{msg}");
        assert!(msg.contains("1 bytes remaining"), "{msg}");
        // In-range values pass through untouched (no clamping).
        let mut w = Writer::new();
        w.put_varint(4096);
        let mut r = Reader::new(w.into_bytes());
        assert_eq!(r.get_varint_bounded(4096, "frame width").unwrap(), 4096);
    }

    #[test]
    fn impossible_residual_pair_count_errors_with_remaining_bytes() {
        // Claim 1000 pairs into a 64-coefficient block: rejected up front.
        let mut w = Writer::new();
        w.put_varint(1000);
        let mut r = Reader::new(w.into_bytes());
        let err = r.get_residual(64).unwrap_err();
        assert!(err.to_string().contains("pair count 1000"), "{err}");
        // Claim more pairs than the remaining bytes can hold: also rejected,
        // for both the materialising and the skipping reader.
        let mut w = Writer::new();
        w.put_varint(30); // 30 pairs need >= 60 bytes; only 2 follow
        w.put_u8(0);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let err = Reader::new(bytes.clone()).get_residual(64).unwrap_err();
        assert!(err.to_string().contains("bytes remaining"), "{err}");
        assert!(Reader::new(bytes).skip_residual(64).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = Writer::new();
        w.put_varint(1000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(bytes.slice(0..1));
        assert!(r.get_varint().is_err());
        let mut empty = Reader::new(Bytes::new());
        assert!(empty.get_u8().is_err());
    }

    #[test]
    fn residual_run_overflow_is_an_error() {
        let mut w = Writer::new();
        w.put_varint(1); // one pair
        w.put_varint(100); // run of 100 into a 64-length block
        w.put_svarint(5);
        let mut r = Reader::new(w.into_bytes());
        assert!(r.get_residual(64).is_err());
    }
}
