//! Macro-block pixel operations: extraction, SAE, averaging.
//!
//! The encoder's mode decision is driven entirely by the **sum of absolute
//! errors (SAE)** between a candidate prediction and the source block, as
//! described in §II of the paper.

use vrd_video::Frame;

/// Copies the `size`×`size` block at `(x, y)` out of `frame`.
///
/// # Panics
/// Panics if the block does not lie fully inside the frame.
pub fn extract_block(frame: &Frame, x: usize, y: usize, size: usize) -> Vec<u8> {
    assert!(x + size <= frame.width() && y + size <= frame.height());
    let mut out = Vec::with_capacity(size * size);
    let data = frame.as_slice();
    for row in 0..size {
        let start = (y + row) * frame.width() + x;
        out.extend_from_slice(&data[start..start + size]);
    }
    out
}

/// Writes a `size`×`size` block into `frame` at `(x, y)`.
///
/// # Panics
/// Panics if the block does not lie fully inside the frame or
/// `block.len() != size * size`.
pub fn write_block(frame: &mut Frame, x: usize, y: usize, size: usize, block: &[u8]) {
    assert_eq!(block.len(), size * size);
    assert!(x + size <= frame.width() && y + size <= frame.height());
    let w = frame.width();
    let data = frame.as_mut_slice();
    for row in 0..size {
        let start = (y + row) * w + x;
        data[start..start + size].copy_from_slice(&block[row * size..(row + 1) * size]);
    }
}

/// SAE between the `size`×`size` block of `cur` at `(cx, cy)` and the block
/// of `reference` at `(rx, ry)`, early-exiting once the partial sum exceeds
/// `limit`.
///
/// Returns `u32::MAX` if the reference block is not fully inside the frame
/// (callers clamp their search windows, so this is a guard, not a code
/// path).
#[allow(clippy::too_many_arguments)] // mirrors the hardware operands: two frames, two positions, a size, a bound
pub fn sae_between(
    cur: &Frame,
    cx: usize,
    cy: usize,
    reference: &Frame,
    rx: i32,
    ry: i32,
    size: usize,
    limit: u32,
) -> u32 {
    if rx < 0
        || ry < 0
        || rx as usize + size > reference.width()
        || ry as usize + size > reference.height()
    {
        return u32::MAX;
    }
    let (rx, ry) = (rx as usize, ry as usize);
    let cw = cur.width();
    let rw = reference.width();
    let cdata = cur.as_slice();
    let rdata = reference.as_slice();
    let mut total = 0u32;
    for row in 0..size {
        let c = &cdata[(cy + row) * cw + cx..(cy + row) * cw + cx + size];
        let r = &rdata[(ry + row) * rw + rx..(ry + row) * rw + rx + size];
        for (a, b) in c.iter().zip(r) {
            total += (*a as i32 - *b as i32).unsigned_abs();
        }
        if total > limit {
            return total;
        }
    }
    total
}

/// SAE between the block of `cur` at `(cx, cy)` and an explicit prediction
/// buffer (used for intra and bi predictions).
///
/// # Panics
/// Panics if `pred.len() != size * size`.
pub fn sae_against(cur: &Frame, cx: usize, cy: usize, pred: &[u8], size: usize) -> u32 {
    assert_eq!(pred.len(), size * size);
    let cw = cur.width();
    let cdata = cur.as_slice();
    let mut total = 0u32;
    for row in 0..size {
        let c = &cdata[(cy + row) * cw + cx..(cy + row) * cw + cx + size];
        let p = &pred[row * size..(row + 1) * size];
        for (a, b) in c.iter().zip(p) {
            total += (*a as i32 - *b as i32).unsigned_abs();
        }
    }
    total
}

/// Pixel-wise average of two prediction blocks (bi-prediction).
///
/// # Panics
/// Panics if the blocks have different lengths.
pub fn average_blocks(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as u16 + y as u16).div_ceil(2) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_frame(w: usize, h: usize) -> Frame {
        let data = (0..w * h).map(|i| (i % 251) as u8).collect();
        Frame::from_vec(w, h, data)
    }

    #[test]
    fn extract_write_roundtrip() {
        let src = gradient_frame(16, 16);
        let block = extract_block(&src, 4, 8, 8);
        let mut dst = Frame::new(16, 16);
        write_block(&mut dst, 4, 8, 8, &block);
        assert_eq!(extract_block(&dst, 4, 8, 8), block);
        // Outside the block the destination is untouched.
        assert_eq!(dst.get(0, 0), 0);
    }

    #[test]
    fn sae_zero_for_identical_blocks() {
        let f = gradient_frame(32, 32);
        assert_eq!(sae_between(&f, 8, 8, &f, 8, 8, 8, u32::MAX), 0);
    }

    #[test]
    fn sae_detects_shift() {
        let f = gradient_frame(32, 32);
        let shifted = sae_between(&f, 8, 8, &f, 9, 8, 8, u32::MAX);
        assert!(shifted > 0);
    }

    #[test]
    fn sae_out_of_bounds_is_max() {
        let f = gradient_frame(16, 16);
        assert_eq!(sae_between(&f, 0, 0, &f, -1, 0, 8, u32::MAX), u32::MAX);
        assert_eq!(sae_between(&f, 0, 0, &f, 9, 0, 8, u32::MAX), u32::MAX);
    }

    #[test]
    fn sae_early_exit_overshoots_but_exceeds_limit() {
        let black = Frame::new(16, 16);
        let white = Frame::from_vec(16, 16, vec![255; 256]);
        let v = sae_between(&white, 0, 0, &black, 0, 0, 8, 100);
        assert!(v > 100);
        assert!(v < 64 * 255); // aborted before summing every row
    }

    #[test]
    fn sae_against_prediction() {
        let f = gradient_frame(16, 16);
        let block = extract_block(&f, 0, 0, 8);
        assert_eq!(sae_against(&f, 0, 0, &block, 8), 0);
        let off: Vec<u8> = block.iter().map(|&v| v.saturating_add(2)).collect();
        let sae = sae_against(&f, 0, 0, &off, 8);
        assert!(sae > 0 && sae <= 2 * 64);
    }

    #[test]
    fn average_rounds_to_nearest() {
        assert_eq!(
            average_blocks(&[0, 10, 255], &[1, 20, 255]),
            vec![1, 15, 255]
        );
    }
}
