//! Encoder configuration: standard profile, GOP shaping, motion search.
//!
//! The three encoder-side knobs the paper studies (§III-C, Figs. 15–17) are
//! all here: the **B-frame ratio** ([`BFrameMode`]), the **search interval
//! `n`** ([`SearchInterval`]) and the **encoding standard**
//! ([`Standard`], which fixes the macro-block size and intra-mode count).

use crate::error::{CodecError, Result};

/// Encoding standard profile.
///
/// The paper observes (Fig. 17) that H.265's smaller macro-blocks give
/// VR-DANN finer-grained motion vectors and therefore better reconstruction,
/// at higher encoder cost. We reproduce the two profiles by their two
/// behaviour-relevant differences: macro-block size and intra-mode count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Standard {
    /// 16×16 macro-blocks, 9 intra modes.
    H264,
    /// 8×8 macro-blocks, 14 intra modes (paper default).
    #[default]
    H265,
}

impl Standard {
    /// Macro-block edge length in pixels.
    pub fn mb_size(self) -> usize {
        match self {
            Standard::H264 => 16,
            Standard::H265 => 8,
        }
    }

    /// Number of intra prediction modes available.
    pub fn intra_modes(self) -> u8 {
        match self {
            Standard::H264 => 9,
            Standard::H265 => 14,
        }
    }
}

impl std::fmt::Display for Standard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Standard::H264 => f.write_str("H.264"),
            Standard::H265 => f.write_str("H.265"),
        }
    }
}

/// How many consecutive B-frames to place between anchors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BFrameMode {
    /// Motion-adaptive (the encoder's default "auto B ratio"): low-motion
    /// segments get 3 B-frames per anchor, fast segments fewer. This is what
    /// produces the per-video B-ratio spread of Fig. 3(a).
    #[default]
    Auto,
    /// Exactly this many B-frames between consecutive anchors (0–7). The
    /// paper's "-b" FFmpeg override used for the Fig. 15 sweep.
    Fixed(u8),
}

/// The motion-vector search interval `n`: how many decoded anchor frames a
/// B-frame's blocks may reference (§III-C, Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SearchInterval {
    /// Encoder-chosen ("Auto n" in the paper): balances accuracy against
    /// memory-access dispersion.
    #[default]
    Auto,
    /// Search exactly the nearest `n` anchors (1–9).
    Fixed(u8),
}

impl SearchInterval {
    /// Resolves to a concrete anchor count. `Auto` searches up to seven
    /// anchors, matching the paper's Fig. 3(b) observation that a B-frame's
    /// reconstruction can require up to seven reference frames under default
    /// encoder settings.
    pub fn resolve(self) -> usize {
        match self {
            SearchInterval::Auto => 7,
            SearchInterval::Fixed(n) => n as usize,
        }
    }
}

/// Complete encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecConfig {
    /// Encoding standard (macro-block size, intra modes).
    pub standard: Standard,
    /// Distance between consecutive I-frames in display order.
    pub gop_len: usize,
    /// B-frame placement policy.
    pub b_frames: BFrameMode,
    /// Reference search interval `n`.
    pub search_interval: SearchInterval,
    /// Motion search range in pixels (± around the co-located block).
    pub search_range: i32,
    /// Residual quantisation step (1 = near-lossless, larger = lossier).
    pub quant: u8,
}

impl Default for CodecConfig {
    /// The paper's default operating point: H.265, auto B ratio, auto `n`.
    fn default() -> Self {
        Self {
            standard: Standard::H265,
            gop_len: 16,
            b_frames: BFrameMode::Auto,
            search_interval: SearchInterval::Auto,
            search_range: 8,
            quant: 8,
        }
    }
}

impl CodecConfig {
    /// Validates internal consistency and compatibility with a frame size.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidConfig`] for out-of-range knobs and
    /// [`CodecError::BadDimensions`] if `width`×`height` is not a multiple of
    /// the macro-block size.
    pub fn validate_for(&self, width: usize, height: usize) -> Result<()> {
        if self.gop_len < 2 {
            return Err(CodecError::InvalidConfig(
                "gop_len must be at least 2".into(),
            ));
        }
        if let BFrameMode::Fixed(b) = self.b_frames {
            if b as usize >= self.gop_len {
                return Err(CodecError::InvalidConfig(format!(
                    "fixed B run ({b}) must be shorter than gop_len ({})",
                    self.gop_len
                )));
            }
        }
        if let SearchInterval::Fixed(n) = self.search_interval {
            if n == 0 || n > 9 {
                return Err(CodecError::InvalidConfig(format!(
                    "search interval must be in 1..=9, got {n}"
                )));
            }
        }
        if self.search_range < 1 || self.search_range > 64 {
            return Err(CodecError::InvalidConfig(format!(
                "search_range must be in 1..=64, got {}",
                self.search_range
            )));
        }
        if self.quant == 0 {
            return Err(CodecError::InvalidConfig("quant must be non-zero".into()));
        }
        let mb = self.standard.mb_size();
        if width == 0 || height == 0 || !width.is_multiple_of(mb) || !height.is_multiple_of(mb) {
            return Err(CodecError::BadDimensions(format!(
                "{width}x{height} is not a multiple of the {mb}-pixel macro-block"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_parameters() {
        assert_eq!(Standard::H264.mb_size(), 16);
        assert_eq!(Standard::H265.mb_size(), 8);
        assert!(Standard::H265.intra_modes() > Standard::H264.intra_modes());
        assert_eq!(Standard::H265.to_string(), "H.265");
    }

    #[test]
    fn default_config_is_valid_for_suite_dims() {
        let cfg = CodecConfig::default();
        assert!(cfg.validate_for(160, 96).is_ok());
        assert!(cfg.validate_for(64, 48).is_ok());
    }

    #[test]
    fn rejects_bad_dimensions() {
        let cfg = CodecConfig {
            standard: Standard::H264,
            ..CodecConfig::default()
        };
        // 40 is not a multiple of 16.
        assert!(matches!(
            cfg.validate_for(40, 48),
            Err(CodecError::BadDimensions(_))
        ));
    }

    #[test]
    fn rejects_bad_knobs() {
        let mut cfg = CodecConfig {
            gop_len: 1,
            ..CodecConfig::default()
        };
        assert!(cfg.validate_for(64, 48).is_err());
        cfg.gop_len = 16;
        cfg.search_interval = SearchInterval::Fixed(0);
        assert!(cfg.validate_for(64, 48).is_err());
        cfg.search_interval = SearchInterval::Fixed(10);
        assert!(cfg.validate_for(64, 48).is_err());
        cfg.search_interval = SearchInterval::Auto;
        cfg.quant = 0;
        assert!(cfg.validate_for(64, 48).is_err());
        cfg.quant = 8;
        cfg.b_frames = BFrameMode::Fixed(16);
        assert!(cfg.validate_for(64, 48).is_err());
        cfg.b_frames = BFrameMode::Fixed(3);
        assert!(cfg.validate_for(64, 48).is_ok());
    }

    #[test]
    fn search_interval_resolution() {
        assert_eq!(SearchInterval::Auto.resolve(), 7);
        assert_eq!(SearchInterval::Fixed(7).resolve(), 7);
    }
}
