//! The decoder, with the two operating modes VR-DANN distinguishes.
//!
//! * [`Decoder::decode`] — conventional full decode: every frame (I, P and
//!   B) is reconstructed to pixels. This is what OSVOS/FAVOS/DFF consume.
//! * [`Decoder::decode_for_recognition`] — the VR-DANN mode (§I, Fig. 1):
//!   I/P frames are reconstructed to pixels, but for B-frames only the
//!   motion-vector records and block metadata are extracted; their residuals
//!   are *skipped*, never dequantised, and no B pixels are produced. The
//!   per-mode byte counts are reported so the simulator can account for the
//!   decoder-side savings.

use crate::bitstream::{Reader, MAGIC, VERSION};
use crate::block::{average_blocks, extract_block, write_block};
use crate::config::Standard;
use crate::error::{CodecError, Result};
use crate::intra;
use crate::types::{FrameMeta, FrameType, MvRecord, RefMv};
use bytes::Bytes;
use std::collections::BTreeSet;
use vrd_video::Frame;

/// A fully decoded sequence.
#[derive(Debug, Clone)]
pub struct DecodedVideo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Reconstructed frames in display order.
    pub frames: Vec<Frame>,
    /// Per-frame metadata in decode order.
    pub metas: Vec<FrameMeta>,
}

/// Motion-vector payload of one B-frame (what the agent unit loads into
/// `mv_T`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BFrameInfo {
    /// Display index of the B-frame.
    pub display_idx: u32,
    /// Motion-vector records for inter/bi blocks.
    pub mvs: Vec<MvRecord>,
    /// Top-left coordinates of intra-coded blocks (no motion information;
    /// the reconstruction layer decides how to fill them).
    pub intra_blocks: Vec<(u32, u32)>,
}

/// Output of the recognition-mode decode.
#[derive(Debug, Clone)]
pub struct RecognitionStream {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Per-frame metadata in decode order.
    pub metas: Vec<FrameMeta>,
    /// Reconstructed anchor frames `(display_idx, pixels)` in decode order.
    pub anchors: Vec<(u32, Frame)>,
    /// Motion-vector payloads of B-frames in decode order.
    pub b_frames: Vec<BFrameInfo>,
    /// Bitstream bytes parsed for anchor frames.
    pub anchor_bytes: usize,
    /// Bitstream bytes parsed (and mostly skipped) for B-frames.
    pub b_bytes: usize,
}

/// Per-frame summary produced by [`Decoder::inspect`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSummary {
    /// Frame type.
    pub ftype: FrameType,
    /// Display index.
    pub display_idx: u32,
    /// Decode index.
    pub decode_idx: u32,
    /// Bitstream bytes of this frame.
    pub bytes: usize,
    /// Intra-coded macro-blocks.
    pub intra_blocks: usize,
    /// Single-reference macro-blocks.
    pub inter_blocks: usize,
    /// Bi-predicted macro-blocks.
    pub bi_blocks: usize,
    /// Sum of motion-vector magnitudes (see [`FrameSummary::mean_mv`]).
    pub mv_magnitude_sum: f64,
    /// Distinct reference frames used.
    pub refs: BTreeSet<u32>,
}

impl FrameSummary {
    /// Mean motion-vector magnitude in pixels (0 for all-intra frames).
    pub fn mean_mv(&self) -> f64 {
        let n = self.inter_blocks + 2 * self.bi_blocks;
        if n == 0 {
            0.0
        } else {
            self.mv_magnitude_sum / n as f64
        }
    }
}

/// Stream header shared by both decode modes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub(crate) width: usize,
    pub(crate) height: usize,
    pub(crate) n_frames: usize,
    pub(crate) standard: Standard,
    pub(crate) quant: i32,
}

/// Video decoder. Stateless; create once and reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl Decoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Self
    }

    /// Largest frame edge the decoder accepts. A corrupt header must fail
    /// here, with context, instead of driving a multi-gigabyte allocation.
    pub const MAX_DIMENSION: u64 = 1 << 14;

    /// Largest frame count the decoder accepts when the header arrives
    /// without its payload (packetized transport), where the tighter
    /// bytes-remaining bound cannot apply.
    pub const MAX_FRAMES: u64 = 1 << 20;

    fn read_header(r: &mut Reader) -> Result<Header> {
        Self::read_header_capped(r, None)
    }

    /// Reads the stream header. `frames_cap` overrides the frame-count
    /// bound; `None` uses the contiguous-stream rule (every frame costs at
    /// least two bytes of what remains in this buffer).
    pub(crate) fn read_header_capped(r: &mut Reader, frames_cap: Option<u64>) -> Result<Header> {
        for expected in MAGIC {
            if r.get_u8()? != expected {
                return Err(CodecError::Bitstream("bad magic".into()));
            }
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(CodecError::Bitstream(format!(
                "unsupported version {version}"
            )));
        }
        let width = r.get_varint_bounded(Self::MAX_DIMENSION, "frame width")? as usize;
        let height = r.get_varint_bounded(Self::MAX_DIMENSION, "frame height")? as usize;
        // Every frame costs at least two bytes (type + display index), so a
        // frame count beyond that is structurally impossible in a
        // contiguous stream.
        let cap = frames_cap.unwrap_or(r.remaining() as u64 / 2);
        let n_frames = r.get_varint_bounded(cap, "frame count")? as usize;
        let standard = match r.get_u8()? {
            0 => Standard::H264,
            1 => Standard::H265,
            s => {
                return Err(CodecError::Bitstream(format!("unknown standard {s}")));
            }
        };
        let quant = r.get_u8()? as i32;
        if width == 0
            || height == 0
            || !width.is_multiple_of(standard.mb_size())
            || !height.is_multiple_of(standard.mb_size())
        {
            return Err(CodecError::Bitstream("inconsistent dimensions".into()));
        }
        if quant == 0 {
            return Err(CodecError::Bitstream("zero quantiser".into()));
        }
        Ok(Header {
            width,
            height,
            n_frames,
            standard,
            quant,
        })
    }

    pub(crate) fn read_frame_header(r: &mut Reader, n_frames: usize) -> Result<(FrameType, u32)> {
        let ftype = match r.get_u8()? {
            0 => FrameType::I,
            1 => FrameType::P,
            2 => FrameType::B,
            t => return Err(CodecError::Bitstream(format!("unknown frame type {t}"))),
        };
        let display = r.get_varint()? as usize;
        if display >= n_frames {
            return Err(CodecError::Bitstream(format!(
                "display index {display} out of range"
            )));
        }
        Ok((ftype, display as u32))
    }

    /// Fully decodes the bitstream (every frame to pixels).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn decode(&self, bitstream: &Bytes) -> Result<DecodedVideo> {
        let mut r = Reader::new(bitstream.clone());
        let hdr = Self::read_header(&mut r)?;
        let mb = hdr.standard.mb_size();
        let mut frames: Vec<Option<Frame>> = vec![None; hdr.n_frames];
        let mut metas = Vec::with_capacity(hdr.n_frames);

        for decode_idx in 0..hdr.n_frames {
            let (ftype, display) = Self::read_frame_header(&mut r, hdr.n_frames)?;
            let mut refs_used = BTreeSet::new();
            let rec = Self::read_anchor(&mut r, &hdr, mb, &frames, &mut refs_used)?;
            metas.push(FrameMeta {
                ftype,
                display_idx: display,
                decode_idx: decode_idx as u32,
                refs: refs_used.into_iter().collect(),
            });
            frames[display as usize] = Some(rec);
        }

        let frames: Vec<Frame> = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.ok_or_else(|| CodecError::Bitstream(format!("frame {i} missing from stream")))
            })
            .collect::<Result<_>>()?;
        Ok(DecodedVideo {
            width: hdr.width,
            height: hdr.height,
            mb_size: mb,
            frames,
            metas,
        })
    }

    /// Reads one block's prediction (intra / inter / bi) during full decode.
    #[allow(clippy::too_many_arguments)]
    fn read_prediction(
        r: &mut Reader,
        frames: &[Option<Frame>],
        rec: &Frame,
        bx: usize,
        by: usize,
        mb: usize,
        n_frames: usize,
        refs_used: &mut BTreeSet<u32>,
    ) -> Result<Vec<u8>> {
        let fetch = |r: &mut Reader, refs_used: &mut BTreeSet<u32>| -> Result<(u32, i32, i32)> {
            let rf = r.get_varint()? as usize;
            let dx = r.get_svarint()? as i32;
            let dy = r.get_svarint()? as i32;
            if rf >= n_frames {
                return Err(CodecError::Bitstream(format!(
                    "reference {rf} out of range"
                )));
            }
            refs_used.insert(rf as u32);
            Ok((rf as u32, dx, dy))
        };
        let grab = |frames: &[Option<Frame>], rf: u32, sx: i32, sy: i32| -> Result<Vec<u8>> {
            let f = frames[rf as usize]
                .as_ref()
                .ok_or_else(|| CodecError::Bitstream(format!("reference {rf} not yet decoded")))?;
            if sx < 0 || sy < 0 || sx as usize + mb > f.width() || sy as usize + mb > f.height() {
                return Err(CodecError::Bitstream("motion vector out of frame".into()));
            }
            Ok(extract_block(f, sx as usize, sy as usize, mb))
        };
        match r.get_u8()? {
            0 => {
                let mode = r.get_u8()?;
                Ok(intra::predict(rec, bx, by, mb, mode))
            }
            1 => {
                let (rf, dx, dy) = fetch(r, refs_used)?;
                grab(frames, rf, bx as i32 + dx, by as i32 + dy)
            }
            2 => {
                let (rf0, dx0, dy0) = fetch(r, refs_used)?;
                let (rf1, dx1, dy1) = fetch(r, refs_used)?;
                let a = grab(frames, rf0, bx as i32 + dx0, by as i32 + dy0)?;
                let b = grab(frames, rf1, bx as i32 + dx1, by as i32 + dy1)?;
                Ok(average_blocks(&a, &b))
            }
            m => Err(CodecError::Bitstream(format!("unknown block mode {m}"))),
        }
    }

    /// Decodes one frame's block payload to pixels against the reference
    /// set in `frames` (strict mode: any unreadable record is an error).
    /// Shared by full decode and the streaming strict source.
    pub(crate) fn read_anchor(
        r: &mut Reader,
        hdr: &Header,
        mb: usize,
        frames: &[Option<Frame>],
        refs_used: &mut BTreeSet<u32>,
    ) -> Result<Frame> {
        let mut rec = Frame::new(hdr.width, hdr.height);
        for by in (0..hdr.height).step_by(mb) {
            for bx in (0..hdr.width).step_by(mb) {
                let pred =
                    Self::read_prediction(r, frames, &rec, bx, by, mb, hdr.n_frames, refs_used)?;
                let resid = r.get_residual(mb * mb)?;
                let mut block = Vec::with_capacity(mb * mb);
                for (p, q) in pred.iter().zip(&resid) {
                    block.push((*p as i32 + *q as i32 * hdr.quant).clamp(0, 255) as u8);
                }
                write_block(&mut rec, bx, by, mb, &block);
            }
        }
        Ok(rec)
    }

    /// Walks one anchor payload structurally — same reads, same error
    /// points as [`Decoder::read_anchor`] / the resilient variant — without
    /// producing pixels. Returns whether any block referenced a frame
    /// outside `decoded` (i.e. pixel decode would substitute). Residuals
    /// are read with the full run-length validation of `get_residual`, not
    /// the cheaper skip, so success here is success there.
    pub(crate) fn scan_anchor(
        r: &mut Reader,
        hdr: &Header,
        mb: usize,
        decoded: &BTreeSet<u32>,
    ) -> Result<bool> {
        let mut substituted = false;
        let fetch = |r: &mut Reader, substituted: &mut bool| -> Result<()> {
            let rf = r.get_varint_bounded(hdr.n_frames.saturating_sub(1) as u64, "reference")?;
            r.get_svarint()?;
            r.get_svarint()?;
            if !decoded.contains(&(rf as u32)) {
                *substituted = true;
            }
            Ok(())
        };
        for _by in (0..hdr.height).step_by(mb) {
            for _bx in (0..hdr.width).step_by(mb) {
                match r.get_u8()? {
                    0 => {
                        r.get_u8()?;
                    }
                    1 => fetch(r, &mut substituted)?,
                    2 => {
                        fetch(r, &mut substituted)?;
                        fetch(r, &mut substituted)?;
                    }
                    m => {
                        return Err(CodecError::Corrupt {
                            frame: 0,
                            detail: format!("unknown block mode {m}"),
                        });
                    }
                }
                r.get_residual(mb * mb)?;
            }
        }
        Ok(substituted)
    }

    /// Parses one B-frame's block records into `info`, raster order.
    ///
    /// Fills `info` incrementally so a caller that tolerates corruption can
    /// keep the records parsed before the error (`info` is always left in a
    /// consistent state: every pushed record was fully read and validated).
    pub(crate) fn read_b_frame_blocks(
        r: &mut Reader,
        hdr: &Header,
        mb: usize,
        info: &mut BFrameInfo,
        refs_used: &mut BTreeSet<u32>,
    ) -> Result<()> {
        let read_ref = |r: &mut Reader, bx: usize, by: usize| -> Result<RefMv> {
            let rf = r.get_varint_bounded(hdr.n_frames.saturating_sub(1) as u64, "reference")?;
            let dx = r.get_svarint()? as i32;
            let dy = r.get_svarint()? as i32;
            Ok(RefMv {
                frame: rf as u32,
                src_x: bx as i32 + dx,
                src_y: by as i32 + dy,
            })
        };
        for by in (0..hdr.height).step_by(mb) {
            for bx in (0..hdr.width).step_by(mb) {
                match r.get_u8()? {
                    0 => {
                        r.get_u8()?; // intra mode id, unused here
                        r.skip_residual(mb * mb)?;
                        info.intra_blocks.push((bx as u32, by as u32));
                    }
                    1 => {
                        let ref0 = read_ref(r, bx, by)?;
                        r.skip_residual(mb * mb)?;
                        refs_used.insert(ref0.frame);
                        info.mvs.push(MvRecord {
                            dst_x: bx as u32,
                            dst_y: by as u32,
                            ref0,
                            ref1: None,
                        });
                    }
                    2 => {
                        let ref0 = read_ref(r, bx, by)?;
                        let ref1 = read_ref(r, bx, by)?;
                        r.skip_residual(mb * mb)?;
                        refs_used.insert(ref0.frame);
                        refs_used.insert(ref1.frame);
                        info.mvs.push(MvRecord {
                            dst_x: bx as u32,
                            dst_y: by as u32,
                            ref0,
                            ref1: Some(ref1),
                        });
                    }
                    m => {
                        return Err(CodecError::Bitstream(format!("unknown block mode {m}")));
                    }
                }
            }
        }
        Ok(())
    }

    /// Parses the stream without reconstructing any pixels, summarising
    /// each frame (the `vrdstat` inspector's engine).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn inspect(&self, bitstream: &Bytes) -> Result<Vec<FrameSummary>> {
        let mut r = Reader::new(bitstream.clone());
        let total = bitstream.len();
        let hdr = Self::read_header(&mut r)?;
        let mb = hdr.standard.mb_size();
        let mut out = Vec::with_capacity(hdr.n_frames);
        for decode_idx in 0..hdr.n_frames {
            let before = r.remaining();
            let (ftype, display) = Self::read_frame_header(&mut r, hdr.n_frames)?;
            let mut summary = FrameSummary {
                ftype,
                display_idx: display,
                decode_idx: decode_idx as u32,
                bytes: 0,
                intra_blocks: 0,
                inter_blocks: 0,
                bi_blocks: 0,
                mv_magnitude_sum: 0.0,
                refs: BTreeSet::new(),
            };
            for by in (0..hdr.height).step_by(mb) {
                for bx in (0..hdr.width).step_by(mb) {
                    let read_mv = |r: &mut Reader, summary: &mut FrameSummary| -> Result<()> {
                        let rf = r.get_varint()? as u32;
                        let dx = r.get_svarint()? as f64;
                        let dy = r.get_svarint()? as f64;
                        summary.refs.insert(rf);
                        summary.mv_magnitude_sum += (dx * dx + dy * dy).sqrt();
                        Ok(())
                    };
                    let _ = (bx, by);
                    match r.get_u8()? {
                        0 => {
                            r.get_u8()?;
                            summary.intra_blocks += 1;
                        }
                        1 => {
                            read_mv(&mut r, &mut summary)?;
                            summary.inter_blocks += 1;
                        }
                        2 => {
                            read_mv(&mut r, &mut summary)?;
                            read_mv(&mut r, &mut summary)?;
                            summary.bi_blocks += 1;
                        }
                        m => {
                            return Err(CodecError::Bitstream(format!("unknown block mode {m}")));
                        }
                    }
                    r.skip_residual(mb * mb)?;
                }
            }
            summary.bytes = before - r.remaining();
            out.push(summary);
        }
        let _ = total;
        Ok(out)
    }

    /// Decodes in recognition mode: anchors to pixels, B-frames to motion
    /// vectors only (their residuals are skipped, not decoded).
    ///
    /// Collects the pull-based [`crate::stream::StrictFrameSource`] into a
    /// batch structure; streaming consumers should pull from the source
    /// directly and keep memory bounded.
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn decode_for_recognition(&self, bitstream: &Bytes) -> Result<RecognitionStream> {
        use crate::stream::{FrameSource, StrictFrameSource, UnitPayload};
        let mut src = StrictFrameSource::new(bitstream)?;
        let info = src.info();
        let mut out = RecognitionStream {
            width: info.width,
            height: info.height,
            mb_size: info.mb_size,
            metas: Vec::with_capacity(info.n_frames),
            anchors: Vec::new(),
            b_frames: Vec::new(),
            anchor_bytes: 0,
            b_bytes: 0,
        };
        while let Some(unit) = src.next_unit() {
            let unit = unit?;
            let display = match unit.payload {
                UnitPayload::Anchor { display, frame } => {
                    out.anchors.push((display, frame));
                    display
                }
                UnitPayload::Motion(info_b) => {
                    let display = info_b.display_idx;
                    out.b_frames.push(info_b);
                    display
                }
                UnitPayload::Skipped { .. } => {
                    return Err(CodecError::Bitstream(
                        "strict stream produced a skipped unit".into(),
                    ));
                }
            };
            out.metas.push(FrameMeta {
                ftype: unit.ftype,
                display_idx: display,
                decode_idx: unit.decode_idx,
                refs: unit.refs,
            });
        }
        let totals = src.totals();
        out.anchor_bytes = totals.anchor_bytes;
        out.b_bytes = totals.b_bytes;
        Ok(out)
    }
}

/// How one frame of a damaged stream came out of the resilient decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The frame decoded exactly as from a pristine stream.
    Ok,
    /// The frame was damaged but usable data was recovered; the reason says
    /// what had to be patched.
    Concealed(ConcealReason),
    /// Nothing usable was recovered for this frame.
    Lost,
}

impl DecodeOutcome {
    /// Whether any usable data was produced (`Ok` or `Concealed`).
    pub fn is_usable(&self) -> bool {
        !matches!(self, DecodeOutcome::Lost)
    }
}

/// Why a frame was concealed rather than decoded cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcealReason {
    /// Only a prefix of the B-frame's MV records survived; `parsed` of
    /// `total` blocks were recovered before the payload gave out.
    PartialMvs {
        /// Blocks whose records were recovered.
        parsed: usize,
        /// Blocks the frame should carry.
        total: usize,
    },
    /// The payload failed its transport checksum but still parsed end to
    /// end; the records are complete but individually suspect.
    SuspectPayload,
    /// An anchor was predicted from a substituted reference (its real
    /// reference never arrived); pixels are approximate.
    MissingReference,
}

/// Per-frame record of a resilient decode, in decode (packet) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameOutcome {
    /// Decode-order index (the packet slot).
    pub decode_idx: u32,
    /// Frame type, known from transport metadata even for lost payloads.
    pub ftype: FrameType,
    /// Display index — `None` when the payload was too damaged to read it
    /// and no unique slot could be inferred from the surviving frames.
    pub display: Option<u32>,
    /// What the decoder managed to recover.
    pub outcome: DecodeOutcome,
}

/// Output of [`Decoder::decode_recognition_resilient`]: the recognition
/// stream of a damaged transport, plus the per-frame damage report.
#[derive(Debug, Clone)]
pub struct ResilientStream {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Frame count announced by the stream header.
    pub n_frames: usize,
    /// Per-frame outcomes in decode order (one per packet).
    pub outcomes: Vec<FrameOutcome>,
    /// Reconstructed anchor frames `(display_idx, pixels)`, decode order.
    /// Contains every anchor whose outcome is usable.
    pub anchors: Vec<(u32, Frame)>,
    /// Parsed B-frame MV payloads (complete or salvaged prefixes), decode
    /// order, display indices resolved where possible.
    pub b_frames: Vec<BFrameInfo>,
    /// Payload bytes of surviving anchor packets.
    pub anchor_bytes: usize,
    /// Payload bytes of surviving B packets.
    pub b_bytes: usize,
}

impl ResilientStream {
    /// Number of frames per [`DecodeOutcome`] variant as
    /// `(ok, concealed, lost)`.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in &self.outcomes {
            match o.outcome {
                DecodeOutcome::Ok => c.0 += 1,
                DecodeOutcome::Concealed(_) => c.1 += 1,
                DecodeOutcome::Lost => c.2 += 1,
            }
        }
        c
    }
}

impl Decoder {
    /// Decodes a (possibly damaged) packetized stream in recognition mode,
    /// resynchronising at frame-packet boundaries.
    ///
    /// Damage never aborts the run: each frame independently yields a
    /// [`DecodeOutcome`]. Anchors with missing references are concealed by
    /// substituting the nearest decoded anchor; damaged B payloads are
    /// salvaged up to the first unparseable record. On an uninjected
    /// stream, the result is identical to [`Decoder::decode_for_recognition`]
    /// with every outcome [`DecodeOutcome::Ok`].
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] only if the *stream header* is
    /// unusable — without dimensions nothing can be concealed. Frame-level
    /// damage is reported per frame, never as an `Err`.
    ///
    /// Collects the pull-based [`crate::stream::ResilientFrameSource`] into
    /// a batch structure; streaming consumers should pull from the source
    /// directly and keep memory bounded.
    pub fn decode_recognition_resilient(
        &self,
        stream: &crate::faults::PacketStream,
    ) -> Result<ResilientStream> {
        use crate::stream::{FrameSource, ResilientFrameSource, UnitPayload};
        let mut src = ResilientFrameSource::new(stream)?;
        let info = src.info();
        let totals = src.totals();
        let mut out = ResilientStream {
            width: info.width,
            height: info.height,
            mb_size: info.mb_size,
            n_frames: info.n_frames,
            outcomes: Vec::with_capacity(stream.packets.len()),
            anchors: Vec::new(),
            b_frames: Vec::new(),
            anchor_bytes: totals.anchor_bytes,
            b_bytes: totals.b_bytes,
        };
        while let Some(unit) = src.next_unit() {
            let unit = unit?;
            let display = unit.display();
            match unit.payload {
                UnitPayload::Anchor { display, frame } => out.anchors.push((display, frame)),
                UnitPayload::Motion(info_b) => out.b_frames.push(info_b),
                UnitPayload::Skipped { .. } => {}
            }
            out.outcomes.push(FrameOutcome {
                decode_idx: unit.decode_idx,
                ftype: unit.ftype,
                display,
                outcome: unit.outcome,
            });
        }
        Ok(out)
    }

    /// Reconstructs one anchor frame, substituting the nearest available
    /// decoded anchor (or flat mid-gray) when a reference never arrived.
    pub(crate) fn read_anchor_resilient(
        r: &mut Reader,
        hdr: &Header,
        mb: usize,
        anchor_recon: &[Option<Frame>],
        substituted: &mut bool,
    ) -> Result<Frame> {
        let mut rec = Frame::new(hdr.width, hdr.height);
        for by in (0..hdr.height).step_by(mb) {
            for bx in (0..hdr.width).step_by(mb) {
                let pred = Self::read_prediction_resilient(
                    r,
                    anchor_recon,
                    &rec,
                    bx,
                    by,
                    mb,
                    hdr.n_frames,
                    substituted,
                )?;
                let resid = r.get_residual(mb * mb)?;
                let mut block = Vec::with_capacity(mb * mb);
                for (p, q) in pred.iter().zip(&resid) {
                    block.push((*p as i32 + *q as i32 * hdr.quant).clamp(0, 255) as u8);
                }
                write_block(&mut rec, bx, by, mb, &block);
            }
        }
        Ok(rec)
    }

    /// [`Decoder::read_prediction`] with concealment: a missing reference
    /// frame is replaced by the nearest decoded anchor (or flat mid-gray),
    /// and source coordinates are clamped into the frame.
    #[allow(clippy::too_many_arguments)]
    fn read_prediction_resilient(
        r: &mut Reader,
        frames: &[Option<Frame>],
        rec: &Frame,
        bx: usize,
        by: usize,
        mb: usize,
        n_frames: usize,
        substituted: &mut bool,
    ) -> Result<Vec<u8>> {
        let fetch = |r: &mut Reader| -> Result<(u32, i32, i32)> {
            let rf = r.get_varint_bounded(n_frames.saturating_sub(1) as u64, "reference")?;
            let dx = r.get_svarint()? as i32;
            let dy = r.get_svarint()? as i32;
            Ok((rf as u32, dx, dy))
        };
        let mut grab = |frames: &[Option<Frame>], rf: u32, sx: i32, sy: i32| -> Vec<u8> {
            let source = frames[rf as usize].as_ref().or_else(|| {
                // Reference never arrived: conceal from the nearest decoded
                // anchor by display distance.
                *substituted = true;
                frames
                    .iter()
                    .enumerate()
                    .filter_map(|(d, f)| f.as_ref().map(|f| (d, f)))
                    .min_by_key(|(d, _)| (*d as i64 - rf as i64).unsigned_abs())
                    .map(|(_, f)| f)
            });
            match source {
                Some(f) => {
                    let sx = sx.clamp(0, (f.width() - mb) as i32) as usize;
                    let sy = sy.clamp(0, (f.height() - mb) as i32) as usize;
                    extract_block(f, sx, sy, mb)
                }
                None => {
                    // No anchor decoded yet at all: flat mid-gray.
                    *substituted = true;
                    vec![128u8; mb * mb]
                }
            }
        };
        match r.get_u8()? {
            0 => {
                let mode = r.get_u8()?;
                Ok(intra::predict(rec, bx, by, mb, mode))
            }
            1 => {
                let (rf, dx, dy) = fetch(r)?;
                Ok(grab(frames, rf, bx as i32 + dx, by as i32 + dy))
            }
            2 => {
                let (rf0, dx0, dy0) = fetch(r)?;
                let (rf1, dx1, dy1) = fetch(r)?;
                let a = grab(frames, rf0, bx as i32 + dx0, by as i32 + dy0);
                let b = grab(frames, rf1, bx as i32 + dx1, by as i32 + dy1);
                Ok(average_blocks(&a, &b))
            }
            m => Err(CodecError::Corrupt {
                frame: 0,
                detail: format!("unknown block mode {m}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BFrameMode, CodecConfig};
    use crate::encoder::Encoder;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn encode_tiny(cfg: CodecConfig) -> (Vec<Frame>, crate::encoder::EncodedVideo) {
        let frames = davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames;
        let ev = Encoder::new(cfg).encode(&frames).unwrap();
        (frames, ev)
    }

    fn psnr(a: &Frame, b: &Frame) -> f64 {
        let mse: f64 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.as_slice().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    #[test]
    fn full_decode_reconstructs_with_good_fidelity() {
        let (frames, ev) = encode_tiny(CodecConfig::default());
        let dec = Decoder::new().decode(&ev.bitstream).unwrap();
        assert_eq!(dec.frames.len(), frames.len());
        for (orig, rec) in frames.iter().zip(&dec.frames) {
            let p = psnr(orig, rec);
            assert!(p > 30.0, "PSNR too low: {p:.1} dB");
        }
    }

    #[test]
    fn decode_metadata_matches_plan() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let dec = Decoder::new().decode(&ev.bitstream).unwrap();
        for (meta, &display) in dec.metas.iter().zip(&ev.plan.decode_order) {
            assert_eq!(meta.display_idx, display);
            assert_eq!(meta.ftype, ev.plan.types[display as usize]);
        }
    }

    #[test]
    fn recognition_mode_yields_anchors_and_mvs() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        let n_b = ev.stats.b_frames;
        assert_eq!(rec.b_frames.len(), n_b);
        assert_eq!(rec.anchors.len(), ev.stats.n_frames - n_b);
        // Every B-frame block is accounted for: mvs + intra blocks.
        let blocks = (rec.width / rec.mb_size) * (rec.height / rec.mb_size);
        for info in &rec.b_frames {
            assert_eq!(info.mvs.len() + info.intra_blocks.len(), blocks);
        }
        // MV references must point at decoded anchors.
        let anchor_set: std::collections::BTreeSet<u32> =
            rec.anchors.iter().map(|(d, _)| *d).collect();
        for info in &rec.b_frames {
            for mv in &info.mvs {
                assert!(anchor_set.contains(&mv.ref0.frame));
                if let Some(r1) = mv.ref1 {
                    assert!(anchor_set.contains(&r1.frame));
                }
            }
        }
    }

    #[test]
    fn recognition_anchors_match_full_decode() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let full = Decoder::new().decode(&ev.bitstream).unwrap();
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        for (display, frame) in &rec.anchors {
            assert_eq!(
                frame, &full.frames[*display as usize],
                "anchor {display} differs between modes"
            );
        }
    }

    #[test]
    fn byte_accounting_sums_to_stream_length() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        assert_eq!(rec.anchor_bytes + rec.b_bytes, ev.bitstream.len());
        assert!(rec.b_bytes > 0);
    }

    #[test]
    fn inspect_agrees_with_encoder_statistics() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let summaries = Decoder::new().inspect(&ev.bitstream).unwrap();
        assert_eq!(summaries.len(), ev.stats.n_frames);
        let intra: usize = summaries.iter().map(|s| s.intra_blocks).sum();
        let inter: usize = summaries.iter().map(|s| s.inter_blocks).sum();
        let bi: usize = summaries.iter().map(|s| s.bi_blocks).sum();
        assert_eq!(intra, ev.stats.intra_blocks);
        assert_eq!(inter, ev.stats.inter_blocks);
        assert_eq!(bi, ev.stats.bi_blocks);
        // Frame types and decode order match the plan.
        for (s, &display) in summaries.iter().zip(&ev.plan.decode_order) {
            assert_eq!(s.display_idx, display);
            assert_eq!(s.ftype, ev.plan.types[display as usize]);
        }
        // Per-frame bytes sum to the stream minus the header.
        let frame_bytes: usize = summaries.iter().map(|s| s.bytes).sum();
        assert!(frame_bytes < ev.bitstream.len());
        assert!(frame_bytes > ev.bitstream.len() - 32);
        // Refs per B-frame match the recorded stats.
        let refs_b: Vec<usize> = summaries
            .iter()
            .filter(|s| s.ftype == FrameType::B)
            .map(|s| s.refs.len())
            .collect();
        assert_eq!(refs_b, ev.stats.refs_per_b);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let dec = Decoder::new();
        assert!(dec.decode(&Bytes::from_static(b"nonsense")).is_err());
        let (_, ev) = encode_tiny(CodecConfig::default());
        let truncated = ev.bitstream.slice(0..ev.bitstream.len() / 2);
        assert!(dec.decode(&truncated).is_err());
        assert!(dec.decode_for_recognition(&truncated).is_err());
    }

    #[test]
    fn resilient_decode_of_clean_stream_matches_strict_mode() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let dec = Decoder::new();
        let strict = dec.decode_for_recognition(&ev.bitstream).unwrap();
        let ps = crate::faults::packetize(&ev.bitstream).unwrap();
        let res = dec.decode_recognition_resilient(&ps).unwrap();

        let (ok, concealed, lost) = res.outcome_counts();
        assert_eq!((concealed, lost), (0, 0));
        assert_eq!(ok, strict.metas.len());
        // Anchors bit-identical, B payloads record-identical, bytes match.
        assert_eq!(res.anchors.len(), strict.anchors.len());
        for ((da, fa), (db, fb)) in res.anchors.iter().zip(&strict.anchors) {
            assert_eq!(da, db);
            assert_eq!(fa, fb);
        }
        assert_eq!(res.b_frames, strict.b_frames);
        assert_eq!(res.anchor_bytes, strict.anchor_bytes);
        assert_eq!(res.b_bytes, strict.b_bytes);
    }

    #[test]
    fn resilient_decode_survives_heavy_damage_without_err() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let ps = crate::faults::packetize(&ev.bitstream).unwrap();
        let dec = Decoder::new();
        for seed in 0..8 {
            let (damaged, log) =
                crate::faults::inject(&ps, &crate::faults::FaultConfig::uniform(0.5, seed));
            let res = dec.decode_recognition_resilient(&damaged).unwrap();
            assert_eq!(res.outcomes.len(), ps.packets.len());
            let (ok, concealed, lost) = res.outcome_counts();
            assert!(
                concealed + lost > 0 || log.events.is_empty(),
                "seed {seed}: faults planted but every frame decoded Ok"
            );
            // Undamaged frames still decode (the first I-frame is protected,
            // so at least one frame is always Ok).
            assert!(ok > 0, "seed {seed}: nothing decoded Ok");
            // Whatever survived is structurally sound.
            let blocks = (res.width / res.mb_size) * (res.height / res.mb_size);
            for info in &res.b_frames {
                assert!(info.mvs.len() + info.intra_blocks.len() <= blocks);
                assert!((info.display_idx as usize) < res.n_frames);
            }
        }
    }

    #[test]
    fn dropped_b_mvs_are_salvaged_as_partial_prefix() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let ps = crate::faults::packetize(&ev.bitstream).unwrap();
        let (damaged, log) =
            crate::faults::inject(&ps, &crate::faults::FaultConfig::b_mv_loss(1.0, 3));
        assert!(!log.events.is_empty());
        let res = Decoder::new()
            .decode_recognition_resilient(&damaged)
            .unwrap();
        // Every anchor is untouched by the b_mv_loss config and decodes Ok.
        for o in &res.outcomes {
            if o.ftype.is_anchor() {
                assert_eq!(o.outcome, DecodeOutcome::Ok, "anchor {:?}", o.decode_idx);
            }
        }
        // Damaged B-frames are either concealed with a salvaged prefix or
        // lost outright — never silently Ok, and never an Err.
        let damaged_idx: BTreeSet<u32> = log.events.iter().map(|e| e.decode_idx).collect();
        for o in &res.outcomes {
            if damaged_idx.contains(&o.decode_idx) {
                match &o.outcome {
                    DecodeOutcome::Concealed(ConcealReason::PartialMvs { parsed, total }) => {
                        assert!(parsed < total, "partial salvage kept every block");
                    }
                    DecodeOutcome::Lost | DecodeOutcome::Concealed(_) => {}
                    DecodeOutcome::Ok => panic!("damaged frame {} decoded Ok", o.decode_idx),
                }
            }
        }
    }

    #[test]
    fn lost_anchor_is_reported_and_dependents_concealed() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let mut ps = crate::faults::packetize(&ev.bitstream).unwrap();
        // Drop the second anchor by hand (deterministic, no RNG).
        let victim = ps
            .packets
            .iter()
            .position(|p| p.ftype.is_anchor() && p.decode_idx > 0)
            .expect("stream has a second anchor");
        let victim_decode = ps.packets[victim].decode_idx;
        ps.packets[victim].lost = true;
        ps.packets[victim].payload = Bytes::new();
        let res = Decoder::new().decode_recognition_resilient(&ps).unwrap();
        let lost: Vec<u32> = res
            .outcomes
            .iter()
            .filter(|o| o.outcome == DecodeOutcome::Lost)
            .map(|o| o.decode_idx)
            .collect();
        assert_eq!(lost, vec![victim_decode]);
        // The lost frame's display slot was inferred, so every outcome maps
        // to a display index.
        assert!(res.outcomes.iter().all(|o| o.display.is_some()));
        // Anchors that referenced the lost one decode via substitution.
        let concealed_anchors = res
            .outcomes
            .iter()
            .filter(|o| {
                o.ftype.is_anchor()
                    && matches!(
                        o.outcome,
                        DecodeOutcome::Concealed(ConcealReason::MissingReference)
                    )
            })
            .count();
        assert!(
            concealed_anchors > 0,
            "no dependent anchor needed reference substitution"
        );
    }
}
