//! The decoder, with the two operating modes VR-DANN distinguishes.
//!
//! * [`Decoder::decode`] — conventional full decode: every frame (I, P and
//!   B) is reconstructed to pixels. This is what OSVOS/FAVOS/DFF consume.
//! * [`Decoder::decode_for_recognition`] — the VR-DANN mode (§I, Fig. 1):
//!   I/P frames are reconstructed to pixels, but for B-frames only the
//!   motion-vector records and block metadata are extracted; their residuals
//!   are *skipped*, never dequantised, and no B pixels are produced. The
//!   per-mode byte counts are reported so the simulator can account for the
//!   decoder-side savings.

use crate::bitstream::{Reader, MAGIC, VERSION};
use crate::block::{average_blocks, extract_block, write_block};
use crate::config::Standard;
use crate::error::{CodecError, Result};
use crate::intra;
use crate::types::{FrameMeta, FrameType, MvRecord, RefMv};
use bytes::Bytes;
use std::collections::BTreeSet;
use vrd_video::Frame;

/// A fully decoded sequence.
#[derive(Debug, Clone)]
pub struct DecodedVideo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Reconstructed frames in display order.
    pub frames: Vec<Frame>,
    /// Per-frame metadata in decode order.
    pub metas: Vec<FrameMeta>,
}

/// Motion-vector payload of one B-frame (what the agent unit loads into
/// `mv_T`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BFrameInfo {
    /// Display index of the B-frame.
    pub display_idx: u32,
    /// Motion-vector records for inter/bi blocks.
    pub mvs: Vec<MvRecord>,
    /// Top-left coordinates of intra-coded blocks (no motion information;
    /// the reconstruction layer decides how to fill them).
    pub intra_blocks: Vec<(u32, u32)>,
}

/// Output of the recognition-mode decode.
#[derive(Debug, Clone)]
pub struct RecognitionStream {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Per-frame metadata in decode order.
    pub metas: Vec<FrameMeta>,
    /// Reconstructed anchor frames `(display_idx, pixels)` in decode order.
    pub anchors: Vec<(u32, Frame)>,
    /// Motion-vector payloads of B-frames in decode order.
    pub b_frames: Vec<BFrameInfo>,
    /// Bitstream bytes parsed for anchor frames.
    pub anchor_bytes: usize,
    /// Bitstream bytes parsed (and mostly skipped) for B-frames.
    pub b_bytes: usize,
}

/// Per-frame summary produced by [`Decoder::inspect`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSummary {
    /// Frame type.
    pub ftype: FrameType,
    /// Display index.
    pub display_idx: u32,
    /// Decode index.
    pub decode_idx: u32,
    /// Bitstream bytes of this frame.
    pub bytes: usize,
    /// Intra-coded macro-blocks.
    pub intra_blocks: usize,
    /// Single-reference macro-blocks.
    pub inter_blocks: usize,
    /// Bi-predicted macro-blocks.
    pub bi_blocks: usize,
    /// Sum of motion-vector magnitudes (see [`FrameSummary::mean_mv`]).
    pub mv_magnitude_sum: f64,
    /// Distinct reference frames used.
    pub refs: BTreeSet<u32>,
}

impl FrameSummary {
    /// Mean motion-vector magnitude in pixels (0 for all-intra frames).
    pub fn mean_mv(&self) -> f64 {
        let n = self.inter_blocks + 2 * self.bi_blocks;
        if n == 0 {
            0.0
        } else {
            self.mv_magnitude_sum / n as f64
        }
    }
}

/// Stream header shared by both decode modes.
#[derive(Debug, Clone, Copy)]
struct Header {
    width: usize,
    height: usize,
    n_frames: usize,
    standard: Standard,
    quant: i32,
}

/// Video decoder. Stateless; create once and reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl Decoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Self
    }

    fn read_header(r: &mut Reader) -> Result<Header> {
        for expected in MAGIC {
            if r.get_u8()? != expected {
                return Err(CodecError::Bitstream("bad magic".into()));
            }
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(CodecError::Bitstream(format!(
                "unsupported version {version}"
            )));
        }
        let width = r.get_varint()? as usize;
        let height = r.get_varint()? as usize;
        let n_frames = r.get_varint()? as usize;
        let standard = match r.get_u8()? {
            0 => Standard::H264,
            1 => Standard::H265,
            s => {
                return Err(CodecError::Bitstream(format!("unknown standard {s}")));
            }
        };
        let quant = r.get_u8()? as i32;
        if width == 0
            || height == 0
            || !width.is_multiple_of(standard.mb_size())
            || !height.is_multiple_of(standard.mb_size())
        {
            return Err(CodecError::Bitstream("inconsistent dimensions".into()));
        }
        if quant == 0 {
            return Err(CodecError::Bitstream("zero quantiser".into()));
        }
        Ok(Header {
            width,
            height,
            n_frames,
            standard,
            quant,
        })
    }

    fn read_frame_header(r: &mut Reader, n_frames: usize) -> Result<(FrameType, u32)> {
        let ftype = match r.get_u8()? {
            0 => FrameType::I,
            1 => FrameType::P,
            2 => FrameType::B,
            t => return Err(CodecError::Bitstream(format!("unknown frame type {t}"))),
        };
        let display = r.get_varint()? as usize;
        if display >= n_frames {
            return Err(CodecError::Bitstream(format!(
                "display index {display} out of range"
            )));
        }
        Ok((ftype, display as u32))
    }

    /// Fully decodes the bitstream (every frame to pixels).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn decode(&self, bitstream: &Bytes) -> Result<DecodedVideo> {
        let mut r = Reader::new(bitstream.clone());
        let hdr = Self::read_header(&mut r)?;
        let mb = hdr.standard.mb_size();
        let mut frames: Vec<Option<Frame>> = vec![None; hdr.n_frames];
        let mut metas = Vec::with_capacity(hdr.n_frames);

        for decode_idx in 0..hdr.n_frames {
            let (ftype, display) = Self::read_frame_header(&mut r, hdr.n_frames)?;
            let mut rec = Frame::new(hdr.width, hdr.height);
            let mut refs_used = BTreeSet::new();
            for by in (0..hdr.height).step_by(mb) {
                for bx in (0..hdr.width).step_by(mb) {
                    let pred = Self::read_prediction(
                        &mut r,
                        &frames,
                        &rec,
                        bx,
                        by,
                        mb,
                        hdr.n_frames,
                        &mut refs_used,
                    )?;
                    let resid = r.get_residual(mb * mb)?;
                    let mut block = Vec::with_capacity(mb * mb);
                    for (p, q) in pred.iter().zip(&resid) {
                        block.push((*p as i32 + *q as i32 * hdr.quant).clamp(0, 255) as u8);
                    }
                    write_block(&mut rec, bx, by, mb, &block);
                }
            }
            metas.push(FrameMeta {
                ftype,
                display_idx: display,
                decode_idx: decode_idx as u32,
                refs: refs_used.into_iter().collect(),
            });
            frames[display as usize] = Some(rec);
        }

        let frames: Vec<Frame> = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.ok_or_else(|| CodecError::Bitstream(format!("frame {i} missing from stream")))
            })
            .collect::<Result<_>>()?;
        Ok(DecodedVideo {
            width: hdr.width,
            height: hdr.height,
            mb_size: mb,
            frames,
            metas,
        })
    }

    /// Reads one block's prediction (intra / inter / bi) during full decode.
    #[allow(clippy::too_many_arguments)]
    fn read_prediction(
        r: &mut Reader,
        frames: &[Option<Frame>],
        rec: &Frame,
        bx: usize,
        by: usize,
        mb: usize,
        n_frames: usize,
        refs_used: &mut BTreeSet<u32>,
    ) -> Result<Vec<u8>> {
        let fetch = |r: &mut Reader, refs_used: &mut BTreeSet<u32>| -> Result<(u32, i32, i32)> {
            let rf = r.get_varint()? as usize;
            let dx = r.get_svarint()? as i32;
            let dy = r.get_svarint()? as i32;
            if rf >= n_frames {
                return Err(CodecError::Bitstream(format!(
                    "reference {rf} out of range"
                )));
            }
            refs_used.insert(rf as u32);
            Ok((rf as u32, dx, dy))
        };
        let grab = |frames: &[Option<Frame>], rf: u32, sx: i32, sy: i32| -> Result<Vec<u8>> {
            let f = frames[rf as usize]
                .as_ref()
                .ok_or_else(|| CodecError::Bitstream(format!("reference {rf} not yet decoded")))?;
            if sx < 0 || sy < 0 || sx as usize + mb > f.width() || sy as usize + mb > f.height() {
                return Err(CodecError::Bitstream("motion vector out of frame".into()));
            }
            Ok(extract_block(f, sx as usize, sy as usize, mb))
        };
        match r.get_u8()? {
            0 => {
                let mode = r.get_u8()?;
                Ok(intra::predict(rec, bx, by, mb, mode))
            }
            1 => {
                let (rf, dx, dy) = fetch(r, refs_used)?;
                grab(frames, rf, bx as i32 + dx, by as i32 + dy)
            }
            2 => {
                let (rf0, dx0, dy0) = fetch(r, refs_used)?;
                let (rf1, dx1, dy1) = fetch(r, refs_used)?;
                let a = grab(frames, rf0, bx as i32 + dx0, by as i32 + dy0)?;
                let b = grab(frames, rf1, bx as i32 + dx1, by as i32 + dy1)?;
                Ok(average_blocks(&a, &b))
            }
            m => Err(CodecError::Bitstream(format!("unknown block mode {m}"))),
        }
    }

    /// Parses the stream without reconstructing any pixels, summarising
    /// each frame (the `vrdstat` inspector's engine).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn inspect(&self, bitstream: &Bytes) -> Result<Vec<FrameSummary>> {
        let mut r = Reader::new(bitstream.clone());
        let total = bitstream.len();
        let hdr = Self::read_header(&mut r)?;
        let mb = hdr.standard.mb_size();
        let mut out = Vec::with_capacity(hdr.n_frames);
        for decode_idx in 0..hdr.n_frames {
            let before = r.remaining();
            let (ftype, display) = Self::read_frame_header(&mut r, hdr.n_frames)?;
            let mut summary = FrameSummary {
                ftype,
                display_idx: display,
                decode_idx: decode_idx as u32,
                bytes: 0,
                intra_blocks: 0,
                inter_blocks: 0,
                bi_blocks: 0,
                mv_magnitude_sum: 0.0,
                refs: BTreeSet::new(),
            };
            for by in (0..hdr.height).step_by(mb) {
                for bx in (0..hdr.width).step_by(mb) {
                    let read_mv = |r: &mut Reader, summary: &mut FrameSummary| -> Result<()> {
                        let rf = r.get_varint()? as u32;
                        let dx = r.get_svarint()? as f64;
                        let dy = r.get_svarint()? as f64;
                        summary.refs.insert(rf);
                        summary.mv_magnitude_sum += (dx * dx + dy * dy).sqrt();
                        Ok(())
                    };
                    let _ = (bx, by);
                    match r.get_u8()? {
                        0 => {
                            r.get_u8()?;
                            summary.intra_blocks += 1;
                        }
                        1 => {
                            read_mv(&mut r, &mut summary)?;
                            summary.inter_blocks += 1;
                        }
                        2 => {
                            read_mv(&mut r, &mut summary)?;
                            read_mv(&mut r, &mut summary)?;
                            summary.bi_blocks += 1;
                        }
                        m => {
                            return Err(CodecError::Bitstream(format!("unknown block mode {m}")));
                        }
                    }
                    r.skip_residual()?;
                }
            }
            summary.bytes = before - r.remaining();
            out.push(summary);
        }
        let _ = total;
        Ok(out)
    }

    /// Decodes in recognition mode: anchors to pixels, B-frames to motion
    /// vectors only (their residuals are skipped, not decoded).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn decode_for_recognition(&self, bitstream: &Bytes) -> Result<RecognitionStream> {
        let mut r = Reader::new(bitstream.clone());
        let total = bitstream.len();
        let hdr = Self::read_header(&mut r)?;
        let mb = hdr.standard.mb_size();
        let mut anchor_recon: Vec<Option<Frame>> = vec![None; hdr.n_frames];
        let mut out = RecognitionStream {
            width: hdr.width,
            height: hdr.height,
            mb_size: mb,
            metas: Vec::with_capacity(hdr.n_frames),
            anchors: Vec::new(),
            b_frames: Vec::new(),
            anchor_bytes: total - r.remaining(),
            b_bytes: 0,
        };

        for decode_idx in 0..hdr.n_frames {
            let before = r.remaining();
            let (ftype, display) = Self::read_frame_header(&mut r, hdr.n_frames)?;
            let mut refs_used = BTreeSet::new();
            if ftype.is_anchor() {
                let mut rec = Frame::new(hdr.width, hdr.height);
                for by in (0..hdr.height).step_by(mb) {
                    for bx in (0..hdr.width).step_by(mb) {
                        let pred = Self::read_prediction(
                            &mut r,
                            &anchor_recon,
                            &rec,
                            bx,
                            by,
                            mb,
                            hdr.n_frames,
                            &mut refs_used,
                        )?;
                        let resid = r.get_residual(mb * mb)?;
                        let mut block = Vec::with_capacity(mb * mb);
                        for (p, q) in pred.iter().zip(&resid) {
                            block.push((*p as i32 + *q as i32 * hdr.quant).clamp(0, 255) as u8);
                        }
                        write_block(&mut rec, bx, by, mb, &block);
                    }
                }
                anchor_recon[display as usize] = Some(rec.clone());
                out.anchors.push((display, rec));
                out.anchor_bytes += before - r.remaining();
            } else {
                // B-frame: parse block records, keep MVs, skip residuals.
                let mut info = BFrameInfo {
                    display_idx: display,
                    mvs: Vec::new(),
                    intra_blocks: Vec::new(),
                };
                for by in (0..hdr.height).step_by(mb) {
                    for bx in (0..hdr.width).step_by(mb) {
                        match r.get_u8()? {
                            0 => {
                                r.get_u8()?; // intra mode id, unused here
                                info.intra_blocks.push((bx as u32, by as u32));
                            }
                            1 => {
                                let rf = r.get_varint()? as u32;
                                let dx = r.get_svarint()? as i32;
                                let dy = r.get_svarint()? as i32;
                                refs_used.insert(rf);
                                info.mvs.push(MvRecord {
                                    dst_x: bx as u32,
                                    dst_y: by as u32,
                                    ref0: RefMv {
                                        frame: rf,
                                        src_x: bx as i32 + dx,
                                        src_y: by as i32 + dy,
                                    },
                                    ref1: None,
                                });
                            }
                            2 => {
                                let rf0 = r.get_varint()? as u32;
                                let dx0 = r.get_svarint()? as i32;
                                let dy0 = r.get_svarint()? as i32;
                                let rf1 = r.get_varint()? as u32;
                                let dx1 = r.get_svarint()? as i32;
                                let dy1 = r.get_svarint()? as i32;
                                refs_used.insert(rf0);
                                refs_used.insert(rf1);
                                info.mvs.push(MvRecord {
                                    dst_x: bx as u32,
                                    dst_y: by as u32,
                                    ref0: RefMv {
                                        frame: rf0,
                                        src_x: bx as i32 + dx0,
                                        src_y: by as i32 + dy0,
                                    },
                                    ref1: Some(RefMv {
                                        frame: rf1,
                                        src_x: bx as i32 + dx1,
                                        src_y: by as i32 + dy1,
                                    }),
                                });
                            }
                            m => {
                                return Err(CodecError::Bitstream(format!(
                                    "unknown block mode {m}"
                                )));
                            }
                        }
                        r.skip_residual()?;
                    }
                }
                out.b_frames.push(info);
                out.b_bytes += before - r.remaining();
            }
            out.metas.push(FrameMeta {
                ftype,
                display_idx: display,
                decode_idx: decode_idx as u32,
                refs: refs_used.into_iter().collect(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BFrameMode, CodecConfig};
    use crate::encoder::Encoder;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn encode_tiny(cfg: CodecConfig) -> (Vec<Frame>, crate::encoder::EncodedVideo) {
        let frames = davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames;
        let ev = Encoder::new(cfg).encode(&frames).unwrap();
        (frames, ev)
    }

    fn psnr(a: &Frame, b: &Frame) -> f64 {
        let mse: f64 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.as_slice().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    #[test]
    fn full_decode_reconstructs_with_good_fidelity() {
        let (frames, ev) = encode_tiny(CodecConfig::default());
        let dec = Decoder::new().decode(&ev.bitstream).unwrap();
        assert_eq!(dec.frames.len(), frames.len());
        for (orig, rec) in frames.iter().zip(&dec.frames) {
            let p = psnr(orig, rec);
            assert!(p > 30.0, "PSNR too low: {p:.1} dB");
        }
    }

    #[test]
    fn decode_metadata_matches_plan() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let dec = Decoder::new().decode(&ev.bitstream).unwrap();
        for (meta, &display) in dec.metas.iter().zip(&ev.plan.decode_order) {
            assert_eq!(meta.display_idx, display);
            assert_eq!(meta.ftype, ev.plan.types[display as usize]);
        }
    }

    #[test]
    fn recognition_mode_yields_anchors_and_mvs() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let (_, ev) = encode_tiny(cfg);
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        let n_b = ev.stats.b_frames;
        assert_eq!(rec.b_frames.len(), n_b);
        assert_eq!(rec.anchors.len(), ev.stats.n_frames - n_b);
        // Every B-frame block is accounted for: mvs + intra blocks.
        let blocks = (rec.width / rec.mb_size) * (rec.height / rec.mb_size);
        for info in &rec.b_frames {
            assert_eq!(info.mvs.len() + info.intra_blocks.len(), blocks);
        }
        // MV references must point at decoded anchors.
        let anchor_set: std::collections::BTreeSet<u32> =
            rec.anchors.iter().map(|(d, _)| *d).collect();
        for info in &rec.b_frames {
            for mv in &info.mvs {
                assert!(anchor_set.contains(&mv.ref0.frame));
                if let Some(r1) = mv.ref1 {
                    assert!(anchor_set.contains(&r1.frame));
                }
            }
        }
    }

    #[test]
    fn recognition_anchors_match_full_decode() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let full = Decoder::new().decode(&ev.bitstream).unwrap();
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        for (display, frame) in &rec.anchors {
            assert_eq!(
                frame, &full.frames[*display as usize],
                "anchor {display} differs between modes"
            );
        }
    }

    #[test]
    fn byte_accounting_sums_to_stream_length() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let rec = Decoder::new()
            .decode_for_recognition(&ev.bitstream)
            .unwrap();
        assert_eq!(rec.anchor_bytes + rec.b_bytes, ev.bitstream.len());
        assert!(rec.b_bytes > 0);
    }

    #[test]
    fn inspect_agrees_with_encoder_statistics() {
        let (_, ev) = encode_tiny(CodecConfig::default());
        let summaries = Decoder::new().inspect(&ev.bitstream).unwrap();
        assert_eq!(summaries.len(), ev.stats.n_frames);
        let intra: usize = summaries.iter().map(|s| s.intra_blocks).sum();
        let inter: usize = summaries.iter().map(|s| s.inter_blocks).sum();
        let bi: usize = summaries.iter().map(|s| s.bi_blocks).sum();
        assert_eq!(intra, ev.stats.intra_blocks);
        assert_eq!(inter, ev.stats.inter_blocks);
        assert_eq!(bi, ev.stats.bi_blocks);
        // Frame types and decode order match the plan.
        for (s, &display) in summaries.iter().zip(&ev.plan.decode_order) {
            assert_eq!(s.display_idx, display);
            assert_eq!(s.ftype, ev.plan.types[display as usize]);
        }
        // Per-frame bytes sum to the stream minus the header.
        let frame_bytes: usize = summaries.iter().map(|s| s.bytes).sum();
        assert!(frame_bytes < ev.bitstream.len());
        assert!(frame_bytes > ev.bitstream.len() - 32);
        // Refs per B-frame match the recorded stats.
        let refs_b: Vec<usize> = summaries
            .iter()
            .filter(|s| s.ftype == FrameType::B)
            .map(|s| s.refs.len())
            .collect();
        assert_eq!(refs_b, ev.stats.refs_per_b);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let dec = Decoder::new();
        assert!(dec.decode(&Bytes::from_static(b"nonsense")).is_err());
        let (_, ev) = encode_tiny(CodecConfig::default());
        let truncated = ev.bitstream.slice(0..ev.bitstream.len() / 2);
        assert!(dec.decode(&truncated).is_err());
        assert!(dec.decode_for_recognition(&truncated).is_err());
    }
}
