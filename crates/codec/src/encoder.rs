//! The hybrid block encoder.
//!
//! Classic H.26x structure: plan the GOP, then for each frame in decode
//! order choose per-macro-block between intra prediction, single-reference
//! inter prediction and (for B-frames) bi-prediction, by minimum SAE.
//! Prediction always uses *reconstructed* frames (encode → quantise →
//! dequantise → reconstruct), so the decoder reproduces the encoder's
//! references exactly and no drift accumulates.

use crate::bitstream::{Writer, MAGIC, VERSION};
use crate::block::{extract_block, sae_against, write_block};
use crate::config::{CodecConfig, Standard};
use crate::error::{CodecError, Result};
use crate::gop::GopPlan;
use crate::intra;
use crate::me::{self, Match};
use crate::stats::EncodeStats;
use crate::types::FrameType;
use bytes::Bytes;
use std::collections::BTreeSet;
use vrd_video::Frame;

/// A fully encoded sequence: bitstream plus the encoding-time artefacts the
/// experiments inspect (plan, statistics).
#[derive(Debug, Clone)]
pub struct EncodedVideo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// The configuration the stream was encoded with.
    pub config: CodecConfig,
    /// The GOP plan (frame types, decode order, anchors).
    pub plan: GopPlan,
    /// The serialised bitstream.
    pub bitstream: Bytes,
    /// Encoder statistics (B ratio, refs per B, compression, …).
    pub stats: EncodeStats,
}

/// Video encoder configured once and reusable across sequences.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    cfg: CodecConfig,
}

impl Encoder {
    /// Creates an encoder with the given configuration.
    pub fn new(cfg: CodecConfig) -> Self {
        Self { cfg }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &CodecConfig {
        &self.cfg
    }

    /// Encodes a display-ordered frame sequence into a bitstream.
    ///
    /// # Errors
    /// Returns [`CodecError::BadDimensions`] if frames are missing, sized
    /// inconsistently or incompatible with the macro-block size, and
    /// [`CodecError::InvalidConfig`] for inconsistent settings.
    pub fn encode(&self, frames: &[Frame]) -> Result<EncodedVideo> {
        let first = frames
            .first()
            .ok_or_else(|| CodecError::BadDimensions("empty frame sequence".into()))?;
        let (w, h) = (first.width(), first.height());
        if frames.iter().any(|f| f.width() != w || f.height() != h) {
            return Err(CodecError::BadDimensions(
                "all frames must share dimensions".into(),
            ));
        }
        self.cfg.validate_for(w, h)?;

        let motion = crate::motion::estimate_motion(frames);
        let plan = GopPlan::plan(&self.cfg, frames.len(), &motion)?;

        let mb = self.cfg.standard.mb_size();
        let n_refs = self.cfg.search_interval.resolve();
        let quant = self.cfg.quant as i32;
        let mut stats = EncodeStats {
            n_frames: frames.len(),
            b_frames: plan.types.iter().filter(|t| **t == FrameType::B).count(),
            raw_bytes: w * h * frames.len(),
            ..EncodeStats::default()
        };

        let mut wtr = Writer::new();
        for b in MAGIC {
            wtr.put_u8(b);
        }
        wtr.put_u8(VERSION);
        wtr.put_varint(w as u64);
        wtr.put_varint(h as u64);
        wtr.put_varint(frames.len() as u64);
        wtr.put_u8(match self.cfg.standard {
            Standard::H264 => 0,
            Standard::H265 => 1,
        });
        wtr.put_u8(self.cfg.quant);

        // Reconstructed frames by display index (anchors are kept for
        // referencing; B reconstructions are only needed transiently for
        // intra prediction within the frame itself).
        let mut recon: Vec<Option<Frame>> = vec![None; frames.len()];

        for &display in &plan.decode_order {
            let d = display as usize;
            let ftype = plan.types[d];
            wtr.put_u8(match ftype {
                FrameType::I => 0,
                FrameType::P => 1,
                FrameType::B => 2,
            });
            wtr.put_varint(display as u64);

            let cur = &frames[d];
            let mut rec = Frame::new(w, h);
            let mut refs_used: BTreeSet<u32> = BTreeSet::new();

            // Candidate reference frames for this frame.
            let candidates: Vec<u32> = match ftype {
                FrameType::I => Vec::new(),
                FrameType::P => {
                    // Nearest `n` anchors strictly before this frame.
                    let pos = plan.anchors.partition_point(|&a| a < display);
                    plan.anchors[pos.saturating_sub(n_refs)..pos]
                        .iter()
                        .rev()
                        .copied()
                        .collect()
                }
                FrameType::B => plan
                    .candidate_refs(display, n_refs)
                    .into_iter()
                    // A real encoder can only reference already-decoded
                    // frames; future anchors beyond the bracketing one have
                    // not been reconstructed yet at this point in decode
                    // order.
                    .filter(|&c| recon[c as usize].is_some())
                    .collect(),
            };
            // Pair each candidate with its reconstruction, dropping any
            // without one (decode order guarantees anchors are already
            // reconstructed, so nothing is dropped in practice); the two
            // vectors stay index-aligned for `ref_index` lookups.
            let (candidates, cand_frames): (Vec<u32>, Vec<&Frame>) = candidates
                .iter()
                .filter_map(|&c| recon[c as usize].as_ref().map(|f| (c, f)))
                .unzip();

            for by in (0..h).step_by(mb) {
                for bx in (0..w).step_by(mb) {
                    let (mode_intra, pred_intra, sae_intra) =
                        intra::best_mode(cur, &rec, bx, by, mb, self.cfg.standard.intra_modes());

                    // Inter candidates.
                    let single =
                        me::search_all(cur, bx, by, &cand_frames, mb, self.cfg.search_range);
                    let bi = if ftype == FrameType::B {
                        self.best_bi(cur, bx, by, display, &candidates, &cand_frames, mb)
                    } else {
                        None
                    };

                    // Mode decision by minimum SAE: intra wins ties against
                    // both inter modes, single-reference wins ties against
                    // bi-prediction. A missing inter match scores u32::MAX
                    // and can only be selected when intra also lost, which
                    // cannot happen — the map_or fallbacks below keep the
                    // decision total without a panic path.
                    let sae_single = single.as_ref().map_or(u32::MAX, |m| m.sae);
                    let sae_bi = bi.as_ref().map_or(u32::MAX, |b| b.sae);
                    let choice = if sae_intra <= sae_single && sae_intra <= sae_bi {
                        BlockChoice::Intra
                    } else if sae_single <= sae_bi {
                        single.map_or(BlockChoice::Intra, BlockChoice::Single)
                    } else {
                        bi.map_or(BlockChoice::Intra, BlockChoice::Bi)
                    };
                    let pred: Vec<u8> = match choice {
                        BlockChoice::Intra => {
                            stats.intra_blocks += 1;
                            wtr.put_u8(0);
                            wtr.put_u8(mode_intra);
                            pred_intra
                        }
                        BlockChoice::Single(m) => {
                            stats.inter_blocks += 1;
                            let ref_frame = candidates[m.ref_index];
                            refs_used.insert(ref_frame);
                            stats.mv_magnitude_sum += mv_mag(&m, bx, by);
                            stats.mv_count += 1;
                            wtr.put_u8(1);
                            wtr.put_varint(ref_frame as u64);
                            wtr.put_svarint((m.src_x - bx as i32) as i64);
                            wtr.put_svarint((m.src_y - by as i32) as i64);
                            extract_block(
                                cand_frames[m.ref_index],
                                m.src_x as usize,
                                m.src_y as usize,
                                mb,
                            )
                        }
                        BlockChoice::Bi(b) => {
                            stats.bi_blocks += 1;
                            for m in [&b.fwd, &b.bwd] {
                                let ref_frame = candidates[m.ref_index];
                                refs_used.insert(ref_frame);
                                stats.mv_magnitude_sum += mv_mag(m, bx, by);
                                stats.mv_count += 1;
                            }
                            wtr.put_u8(2);
                            wtr.put_varint(candidates[b.fwd.ref_index] as u64);
                            wtr.put_svarint((b.fwd.src_x - bx as i32) as i64);
                            wtr.put_svarint((b.fwd.src_y - by as i32) as i64);
                            wtr.put_varint(candidates[b.bwd.ref_index] as u64);
                            wtr.put_svarint((b.bwd.src_x - bx as i32) as i64);
                            wtr.put_svarint((b.bwd.src_y - by as i32) as i64);
                            b.pred
                        }
                    };

                    // Quantised residual + local reconstruction.
                    let src = extract_block(cur, bx, by, mb);
                    let mut resid = Vec::with_capacity(mb * mb);
                    let mut rec_block = Vec::with_capacity(mb * mb);
                    for (s, p) in src.iter().zip(&pred) {
                        let diff = *s as i32 - *p as i32;
                        let q = if diff >= 0 {
                            (diff + quant / 2) / quant
                        } else {
                            (diff - quant / 2) / quant
                        };
                        resid.push(q as i16);
                        rec_block.push((*p as i32 + q * quant).clamp(0, 255) as u8);
                    }
                    wtr.put_residual(&resid);
                    write_block(&mut rec, bx, by, mb, &rec_block);
                }
            }

            if ftype == FrameType::B {
                stats.refs_per_b.push(refs_used.len());
            }
            recon[d] = Some(rec);
        }

        stats.bitstream_bytes = wtr.len();
        Ok(EncodedVideo {
            width: w,
            height: h,
            config: self.cfg,
            plan,
            bitstream: wtr.into_bytes(),
            stats,
        })
    }

    /// Best bi-prediction: best forward match averaged with best backward
    /// match (both must exist).
    #[allow(clippy::too_many_arguments)]
    fn best_bi(
        &self,
        cur: &Frame,
        bx: usize,
        by: usize,
        display: u32,
        candidates: &[u32],
        cand_frames: &[&Frame],
        mb: usize,
    ) -> Option<me::BiMatch> {
        let mut best_fwd: Option<Match> = None;
        let mut best_bwd: Option<Match> = None;
        for (i, (&c, frame)) in candidates.iter().zip(cand_frames).enumerate() {
            let (sx, sy, sae) = me::search_one(cur, bx, by, frame, mb, self.cfg.search_range);
            let m = Match {
                ref_index: i,
                src_x: sx,
                src_y: sy,
                sae,
            };
            let slot = if c < display {
                &mut best_fwd
            } else {
                &mut best_bwd
            };
            if slot.is_none_or(|b| m.sae < b.sae) {
                *slot = Some(m);
            }
        }
        let (fwd, bwd) = (best_fwd?, best_bwd?);
        Some(me::bi_predict(
            cur,
            bx,
            by,
            fwd,
            cand_frames[fwd.ref_index],
            bwd,
            cand_frames[bwd.ref_index],
            mb,
        ))
    }
}

/// A block's mode decision: the minimum-SAE prediction to serialise.
enum BlockChoice {
    Intra,
    Single(Match),
    Bi(me::BiMatch),
}

fn mv_mag(m: &Match, bx: usize, by: usize) -> f64 {
    let dx = (m.src_x - bx as i32) as f64;
    let dy = (m.src_y - by as i32) as f64;
    (dx * dx + dy * dy).sqrt()
}

/// Helper shared by tests and benchmarks: SAE of a residual-free prediction
/// (kept public within the crate for diagnostics).
#[allow(dead_code)]
pub(crate) fn prediction_sae(cur: &Frame, bx: usize, by: usize, pred: &[u8], mb: usize) -> u32 {
    sae_against(cur, bx, by, pred, mb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BFrameMode, SearchInterval};
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn tiny_frames() -> Vec<Frame> {
        davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames
    }

    #[test]
    fn encode_produces_nonempty_stream_and_consistent_stats() {
        let enc = Encoder::new(CodecConfig::default());
        let frames = tiny_frames();
        let ev = enc.encode(&frames).unwrap();
        assert!(!ev.bitstream.is_empty());
        assert_eq!(ev.stats.n_frames, frames.len());
        assert_eq!(
            ev.stats.b_frames,
            ev.plan.types.iter().filter(|t| **t == FrameType::B).count()
        );
        assert_eq!(ev.stats.refs_per_b.len(), ev.stats.b_frames);
        // Total coded blocks = frames × blocks-per-frame.
        let blocks = (64 / 8) * (48 / 8) * frames.len();
        assert_eq!(
            ev.stats.intra_blocks + ev.stats.inter_blocks + ev.stats.bi_blocks,
            blocks
        );
    }

    #[test]
    fn compresses_synthetic_video() {
        let enc = Encoder::new(CodecConfig::default());
        let ev = enc.encode(&tiny_frames()).unwrap();
        assert!(
            ev.stats.compression_ratio() > 2.0,
            "compression ratio too low: {:.2}",
            ev.stats.compression_ratio()
        );
    }

    #[test]
    fn b_frames_use_bi_prediction() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        };
        let ev = Encoder::new(cfg).encode(&tiny_frames()).unwrap();
        assert!(ev.stats.bi_blocks > 0, "no bi-predicted blocks at all");
        assert!(ev.stats.b_ratio() > 0.5);
    }

    #[test]
    fn first_frame_is_all_intra() {
        // A one-frame sequence can only be intra coded.
        let frames = vec![tiny_frames()[0].clone()];
        let ev = Encoder::new(CodecConfig::default())
            .encode(&frames)
            .unwrap();
        let blocks = (64 / 8) * (48 / 8);
        assert_eq!(ev.stats.intra_blocks, blocks);
        assert_eq!(ev.stats.inter_blocks, 0);
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        let enc = Encoder::new(CodecConfig::default());
        assert!(enc.encode(&[]).is_err());
        let mut frames = tiny_frames();
        frames.push(Frame::new(32, 32));
        assert!(enc.encode(&frames).is_err());
    }

    #[test]
    fn search_interval_bounds_refs_per_b() {
        let cfg = CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            search_interval: SearchInterval::Fixed(2),
            ..CodecConfig::default()
        };
        let ev = Encoder::new(cfg).encode(&tiny_frames()).unwrap();
        assert!(ev.stats.max_refs_per_b() <= 2);
        let cfg7 = CodecConfig {
            search_interval: SearchInterval::Fixed(7),
            ..cfg
        };
        let ev7 = Encoder::new(cfg7).encode(&tiny_frames()).unwrap();
        assert!(ev7.stats.max_refs_per_b() <= 7);
        assert!(ev7.stats.mean_refs_per_b() >= ev.stats.mean_refs_per_b());
    }
}
