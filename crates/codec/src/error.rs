//! Error types for the codec crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The encoder configuration is inconsistent (message explains why).
    InvalidConfig(String),
    /// Input frame dimensions are unusable for the configured macro-block
    /// size, or frames in a sequence disagree in size.
    BadDimensions(String),
    /// The bitstream is truncated or structurally malformed.
    Bitstream(String),
    /// A specific frame's payload is corrupt (fault injection, transport
    /// damage). Carries the decode-order frame index so resilient callers
    /// can conceal exactly the damaged frame.
    Corrupt {
        /// Decode-order index of the damaged frame.
        frame: u32,
        /// What went wrong inside the frame payload.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidConfig(msg) => write!(f, "invalid codec configuration: {msg}"),
            CodecError::BadDimensions(msg) => write!(f, "bad frame dimensions: {msg}"),
            CodecError::Bitstream(msg) => write!(f, "malformed bitstream: {msg}"),
            CodecError::Corrupt { frame, detail } => {
                write!(f, "corrupt frame {frame}: {detail}")
            }
        }
    }
}

impl StdError for CodecError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CodecError::InvalidConfig("gop too short".into());
        assert_eq!(e.to_string(), "invalid codec configuration: gop too short");
        let e = CodecError::Bitstream("truncated at byte 12".into());
        assert!(e.to_string().contains("truncated"));
        let e = CodecError::Corrupt {
            frame: 7,
            detail: "mode byte 0xff".into(),
        };
        assert_eq!(e.to_string(), "corrupt frame 7: mode byte 0xff");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CodecError>();
    }
}
