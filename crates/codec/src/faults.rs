//! Deterministic bitstream fault injection and the packetized transport
//! view the resilient decode path consumes.
//!
//! Real deployments do not hand the decoder a pristine byte blob: frames
//! arrive as transport packets (RTP payloads, Annex-B NAL units) whose
//! *boundaries* survive even when their *contents* do not — sequence
//! numbers reveal dropped packets, checksums reveal damaged ones. This
//! module models exactly that split:
//!
//! * [`packetize`] cuts a valid bitstream into a [`PacketStream`]: the
//!   stream header plus one [`FramePacket`] per frame in decode order, each
//!   carrying a checksum computed at send time;
//! * [`inject`] corrupts a `PacketStream` in controlled, seeded ways — bit
//!   flips, payload truncation, dropped B-frame MV payloads, whole lost
//!   frames — and logs every fault it plants;
//! * [`crate::Decoder::decode_recognition_resilient`] then decodes the
//!   damaged stream frame by frame, resynchronising at packet boundaries
//!   and reporting a per-frame [`crate::decoder::DecodeOutcome`] instead of
//!   aborting the run.
//!
//! Everything is reproducible from [`FaultConfig::seed`]; the sweep in
//! `crates/bench` relies on that to plot accuracy-vs-loss curves.

use crate::decoder::Decoder;
use crate::error::{CodecError, Result};
use crate::types::FrameType;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One frame's transport packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePacket {
    /// Decode-order index of the frame this packet carries.
    pub decode_idx: u32,
    /// Frame type as planned by the encoder (transport metadata — known
    /// from the packet header even when the payload is damaged).
    pub ftype: FrameType,
    /// The frame's bitstream bytes (possibly corrupted by [`inject`]).
    pub payload: Bytes,
    /// Checksum of the payload computed at packetize time. The injector
    /// deliberately does *not* refresh it — a mismatch is how the receiver
    /// detects damage.
    pub checksum: u32,
    /// Whether the transport lost this packet entirely (sequence-number
    /// gap). A lost packet keeps its slot so decode order is preserved.
    pub lost: bool,
}

impl FramePacket {
    /// Whether the payload still matches its send-time checksum.
    pub fn intact(&self) -> bool {
        !self.lost && checksum(&self.payload) == self.checksum
    }
}

/// A bitstream split at frame boundaries: what the decoder sees when frames
/// arrive over a packetized transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketStream {
    /// The stream header bytes (magic, version, dimensions, …). Assumed
    /// reliable: real systems send parameter sets out of band or repeat
    /// them until acknowledged.
    pub header: Bytes,
    /// One packet per frame, decode order.
    pub packets: Vec<FramePacket>,
}

impl PacketStream {
    /// Reassembles the transport stream into one contiguous bitstream
    /// (lost packets contribute nothing). For an uninjected stream this is
    /// byte-identical to the input of [`packetize`].
    pub fn reassemble(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(self.header.as_slice());
        for p in &self.packets {
            if !p.lost {
                buf.put_slice(p.payload.as_slice());
            }
        }
        buf.freeze()
    }
}

/// FNV-1a over a payload: the transport checksum. Not cryptographic — it
/// models a UDP/RTP-grade integrity check.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Splits a *valid* bitstream into its per-frame packets.
///
/// # Errors
/// Returns [`CodecError::Bitstream`] if the stream does not parse — only
/// well-formed streams can be packetized (the sender owns the encoder).
pub fn packetize(bitstream: &Bytes) -> Result<PacketStream> {
    let spans = Decoder::new().frame_spans(bitstream)?;
    let header_len = spans.first().map_or(bitstream.len(), |s| s.offset);
    let header = bitstream.slice(0..header_len);
    let packets = spans
        .iter()
        .map(|s| {
            let payload = bitstream.slice(s.offset..s.offset + s.len);
            FramePacket {
                decode_idx: s.decode_idx,
                ftype: s.ftype,
                checksum: checksum(&payload),
                payload,
                lost: false,
            }
        })
        .collect();
    Ok(PacketStream { header, packets })
}

/// The fault classes the injector can plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip 1–8 random bits somewhere in the payload.
    BitFlip,
    /// Keep only a random 10–90 % prefix of the payload.
    Truncate,
    /// Cut a B-frame's payload short, losing the tail of its MV records
    /// (anchor frames get a bit flip instead — they have no MV payload).
    DropBMvs,
    /// Lose the whole packet (sequence-number gap at the receiver).
    DropFrame,
}

/// Configuration of one injection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault lottery; same seed + same stream = same faults.
    pub seed: u64,
    /// Per-frame probability of planting a fault (0 = none, 1 = every
    /// frame).
    pub rate: f64,
    /// The fault classes to draw from (empty = no faults regardless of
    /// rate).
    pub kinds: Vec<FaultKind>,
    /// Restrict faults to B-frames (the MV-loss sweeps); anchors then pass
    /// through untouched.
    pub b_frames_only: bool,
    /// Never fault the first I-frame. Real systems retransmit the IDR
    /// until acknowledged; without it nothing downstream is decodable.
    pub protect_first_i: bool,
}

impl FaultConfig {
    /// All fault classes at the given per-frame rate.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            seed,
            rate,
            kinds: vec![
                FaultKind::BitFlip,
                FaultKind::Truncate,
                FaultKind::DropBMvs,
                FaultKind::DropFrame,
            ],
            b_frames_only: false,
            protect_first_i: true,
        }
    }

    /// B-frame MV loss only (the paper-style accuracy-vs-loss sweeps).
    pub fn b_mv_loss(rate: f64, seed: u64) -> Self {
        Self {
            seed,
            rate,
            kinds: vec![FaultKind::DropBMvs, FaultKind::DropFrame],
            b_frames_only: true,
            protect_first_i: true,
        }
    }
}

/// One planted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Decode-order index of the damaged frame.
    pub decode_idx: u32,
    /// Frame type of the damaged frame.
    pub ftype: FrameType,
    /// What was done to it.
    pub kind: FaultKind,
    /// Human-readable description (bit offsets, cut points, …).
    pub detail: String,
}

/// Everything one injection pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// The planted faults, decode order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Number of faults of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Corrupts a packet stream according to `cfg`. The input is untouched; the
/// returned stream shares payload storage for intact frames.
pub fn inject(stream: &PacketStream, cfg: &FaultConfig) -> (PacketStream, FaultLog) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = stream.clone();
    let mut log = FaultLog::default();
    if cfg.rate <= 0.0 || cfg.kinds.is_empty() {
        return (out, log);
    }
    for packet in &mut out.packets {
        // Draw the lottery for every packet, even ones later skipped, so
        // the fault pattern on shared frames is stable across configs with
        // the same seed.
        let hit = rng.random_range(0.0f64..1.0) < cfg.rate;
        let kind = cfg.kinds[rng.random_range(0usize..cfg.kinds.len())];
        if !hit {
            continue;
        }
        if cfg.b_frames_only && packet.ftype != FrameType::B {
            continue;
        }
        if cfg.protect_first_i && packet.decode_idx == 0 {
            continue;
        }
        // An anchor has no MV payload to drop; degrade the fault to a flip.
        let kind = if kind == FaultKind::DropBMvs && packet.ftype != FrameType::B {
            FaultKind::BitFlip
        } else {
            kind
        };
        let detail = apply_fault(packet, kind, &mut rng);
        log.events.push(FaultEvent {
            decode_idx: packet.decode_idx,
            ftype: packet.ftype,
            kind,
            detail,
        });
    }
    (out, log)
}

fn apply_fault(packet: &mut FramePacket, kind: FaultKind, rng: &mut StdRng) -> String {
    let len = packet.payload.len();
    match kind {
        FaultKind::BitFlip => {
            let mut bytes = packet.payload.to_vec();
            let flips = rng.random_range(1usize..9).min(len * 8);
            let mut positions = Vec::with_capacity(flips);
            for _ in 0..flips {
                let bit = rng.random_range(0usize..len * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                positions.push(bit);
            }
            packet.payload = Bytes::from(bytes);
            format!("flipped bits {positions:?}")
        }
        FaultKind::Truncate => {
            let keep = rng.random_range(len / 10..len * 9 / 10 + 1).max(1);
            packet.payload = packet.payload.slice(0..keep);
            format!("truncated to {keep}/{len} bytes")
        }
        FaultKind::DropBMvs => {
            // Cut inside the record area: everything after the cut — the
            // tail of the frame's MV records — is lost in transit.
            let keep = rng.random_range(1usize..(len / 2).max(2));
            packet.payload = packet.payload.slice(0..keep);
            format!("dropped MV payload after byte {keep}/{len}")
        }
        FaultKind::DropFrame => {
            packet.lost = true;
            packet.payload = Bytes::new();
            "packet lost".into()
        }
    }
}

/// Byte span of one frame inside a valid bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Decode-order index.
    pub decode_idx: u32,
    /// Display-order index.
    pub display_idx: u32,
    /// Frame type.
    pub ftype: FrameType,
    /// Byte offset of the frame's first byte in the stream.
    pub offset: usize,
    /// Length of the frame's payload in bytes.
    pub len: usize,
}

impl Decoder {
    /// Locates every frame's byte span in a valid bitstream (the
    /// packetizer's engine; also useful for diagnostics).
    ///
    /// # Errors
    /// Returns [`CodecError::Bitstream`] for malformed input.
    pub fn frame_spans(&self, bitstream: &Bytes) -> Result<Vec<FrameSpan>> {
        let summaries = self.inspect(bitstream)?;
        let total = bitstream.len();
        let frame_bytes: usize = summaries.iter().map(|s| s.bytes).sum();
        let mut offset = total
            .checked_sub(frame_bytes)
            .ok_or_else(|| CodecError::Bitstream("frame bytes exceed stream length".into()))?;
        Ok(summaries
            .iter()
            .map(|s| {
                let span = FrameSpan {
                    decode_idx: s.decode_idx,
                    display_idx: s.display_idx,
                    ftype: s.ftype,
                    offset,
                    len: s.bytes,
                };
                offset += s.bytes;
                span
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodecConfig;
    use crate::encoder::Encoder;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn tiny_stream() -> Bytes {
        let frames = davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames;
        Encoder::new(CodecConfig::default())
            .encode(&frames)
            .unwrap()
            .bitstream
    }

    #[test]
    fn packetize_roundtrips_byte_identically() {
        let bs = tiny_stream();
        let ps = packetize(&bs).unwrap();
        assert_eq!(ps.reassemble(), bs);
        assert!(ps.packets.iter().all(|p| p.intact()));
        // Spans tile the stream: header then frames, no gaps.
        let spans = Decoder::new().frame_spans(&bs).unwrap();
        let mut expected = spans[0].offset;
        for s in &spans {
            assert_eq!(s.offset, expected);
            expected += s.len;
        }
        assert_eq!(expected, bs.len());
    }

    #[test]
    fn zero_rate_injection_is_identity() {
        let ps = packetize(&tiny_stream()).unwrap();
        let (out, log) = inject(&ps, &FaultConfig::uniform(0.0, 1));
        assert_eq!(out, ps);
        assert!(log.events.is_empty());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let ps = packetize(&tiny_stream()).unwrap();
        let cfg = FaultConfig::uniform(0.5, 42);
        let (a, log_a) = inject(&ps, &cfg);
        let (b, log_b) = inject(&ps, &cfg);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(!log_a.events.is_empty(), "rate 0.5 planted nothing");
        let (c, _) = inject(&ps, &FaultConfig::uniform(0.5, 43));
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn faulted_packets_fail_their_checksums() {
        let ps = packetize(&tiny_stream()).unwrap();
        let (out, log) = inject(&ps, &FaultConfig::uniform(1.0, 7));
        assert!(!log.events.is_empty());
        for e in &log.events {
            let p = &out.packets[e.decode_idx as usize];
            assert!(
                !p.intact(),
                "fault {:?} on frame {} left packet intact",
                e.kind,
                e.decode_idx
            );
        }
        // Unfaulted packets stay intact.
        let faulted: std::collections::BTreeSet<u32> =
            log.events.iter().map(|e| e.decode_idx).collect();
        for p in &out.packets {
            if !faulted.contains(&p.decode_idx) {
                assert!(p.intact());
            }
        }
    }

    #[test]
    fn b_mv_loss_config_only_touches_b_frames() {
        let ps = packetize(&tiny_stream()).unwrap();
        let (_, log) = inject(&ps, &FaultConfig::b_mv_loss(1.0, 9));
        assert!(!log.events.is_empty());
        assert!(log.events.iter().all(|e| e.ftype == FrameType::B));
    }

    #[test]
    fn first_i_frame_is_protected() {
        let ps = packetize(&tiny_stream()).unwrap();
        let (out, log) = inject(&ps, &FaultConfig::uniform(1.0, 11));
        assert!(log.events.iter().all(|e| e.decode_idx != 0));
        assert!(out.packets[0].intact());
    }
}
