//! GOP planning: frame-type assignment and decode ordering.
//!
//! The encoder first decides the display-order frame-type sequence
//! (`I B B B P B B B P … I …`) and the matching decode order, in which every
//! B-frame comes *after* both of its bracketing anchors — the property
//! VR-DANN relies on to have reference segmentations ready (§II).

use crate::config::{BFrameMode, CodecConfig};
use crate::error::{CodecError, Result};
use crate::types::FrameType;

/// Motion-adaptive B-run thresholds on the estimated displacement in
/// pixels/frame (see [`crate::motion::estimate_motion`]). Calibrated so the
/// DAVIS-like suite lands near the paper's ~65% average B-frame ratio with
/// slow scenes (e.g. `cows`) high and fast scenes (e.g. `parkour`, `libby`)
/// low.
const AUTO_B_THRESHOLDS: [(f64, u8); 3] = [(1.6, 3), (3.0, 2), (4.6, 1)];

fn auto_b_run(window_motion: f64) -> u8 {
    for &(threshold, b) in &AUTO_B_THRESHOLDS {
        if window_motion < threshold {
            return b;
        }
    }
    0
}

/// The complete frame-structure plan for one sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GopPlan {
    /// Frame type per display index.
    pub types: Vec<FrameType>,
    /// Display indices in decode order.
    pub decode_order: Vec<u32>,
    /// Display indices of anchors (I/P) in display order.
    pub anchors: Vec<u32>,
}

impl GopPlan {
    /// Plans frame types for `n_frames` frames.
    ///
    /// `motion` is the per-gap displacement estimate in pixels/frame from
    /// [`crate::motion::estimate_motion`] (`motion.len() == n_frames - 1`);
    /// it drives [`BFrameMode::Auto`]. For [`BFrameMode::Fixed`] it may be
    /// empty.
    ///
    /// # Errors
    /// Returns [`CodecError::InvalidConfig`] if `n_frames == 0` or `motion`
    /// has the wrong length in auto mode.
    pub fn plan(cfg: &CodecConfig, n_frames: usize, motion: &[f64]) -> Result<Self> {
        if n_frames == 0 {
            return Err(CodecError::InvalidConfig(
                "cannot plan a zero-frame sequence".into(),
            ));
        }
        if matches!(cfg.b_frames, BFrameMode::Auto) && n_frames > 1 && motion.len() != n_frames - 1
        {
            return Err(CodecError::InvalidConfig(format!(
                "auto GOP planning needs {} motion samples, got {}",
                n_frames - 1,
                motion.len()
            )));
        }

        let mut types = vec![FrameType::B; n_frames];
        let mut anchors = Vec::new();
        types[0] = FrameType::I;
        anchors.push(0u32);

        let mut cur = 0usize;
        while cur + 1 < n_frames {
            let remaining = n_frames - 1 - cur;
            let desired = match cfg.b_frames {
                BFrameMode::Fixed(b) => b,
                BFrameMode::Auto => {
                    // Look at the motion over the next few gaps.
                    let window = &motion[cur..(cur + 4).min(motion.len())];
                    let mean = window.iter().sum::<f64>() / window.len().max(1) as f64;
                    auto_b_run(mean)
                }
            } as usize;
            let b_run = desired.min(remaining.saturating_sub(1));
            let next = cur + b_run + 1;
            // Anchor type: I on GOP boundaries, P otherwise.
            types[next] = if next.is_multiple_of(cfg.gop_len) {
                FrameType::I
            } else {
                FrameType::P
            };
            anchors.push(next as u32);
            cur = next;
        }

        // Decode order: for each segment, bracketing anchor first, then the
        // B-frames in reverse display order (matching the paper's example:
        // display I0 B1 B2 B3 P4 -> decode I0 P4 B3 B2 B1).
        let mut decode_order = Vec::with_capacity(n_frames);
        decode_order.push(0u32);
        for w in anchors.windows(2) {
            let (prev, next) = (w[0], w[1]);
            decode_order.push(next);
            for b in (prev + 1..next).rev() {
                decode_order.push(b);
            }
        }

        Ok(Self {
            types,
            decode_order,
            anchors,
        })
    }

    /// Number of frames planned.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the plan is empty (never true for a successful plan).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Fraction of frames that are B-frames (Fig. 3a's metric).
    pub fn b_ratio(&self) -> f64 {
        let b = self.types.iter().filter(|t| **t == FrameType::B).count();
        b as f64 / self.types.len() as f64
    }

    /// The anchors bracketing B-frame `display_idx`: `(previous, next)`.
    ///
    /// # Panics
    /// Panics if `display_idx` is not a B-frame of this plan.
    pub fn bracketing_anchors(&self, display_idx: u32) -> (u32, u32) {
        assert_eq!(
            self.types[display_idx as usize],
            FrameType::B,
            "frame {display_idx} is not a B-frame"
        );
        let pos = self.anchors.partition_point(|&a| a < display_idx);
        (self.anchors[pos - 1], self.anchors[pos])
    }

    /// The `n` candidate reference anchors for B-frame `display_idx`,
    /// nearest-first, always starting with the two bracketing anchors.
    ///
    /// # Panics
    /// Panics if `display_idx` is not a B-frame of this plan.
    pub fn candidate_refs(&self, display_idx: u32, n: usize) -> Vec<u32> {
        let (prev, next) = self.bracketing_anchors(display_idx);
        let mut out = vec![prev, next];
        // Expand outwards by display distance.
        let mut lo = self.anchors.partition_point(|&a| a < prev);
        let mut hi = self.anchors.partition_point(|&a| a <= next);
        while out.len() < n && (lo > 0 || hi < self.anchors.len()) {
            let lo_cand = (lo > 0).then(|| self.anchors[lo - 1]);
            let hi_cand = (hi < self.anchors.len()).then(|| self.anchors[hi]);
            match (lo_cand, hi_cand) {
                (Some(a), Some(b)) => {
                    if display_idx - a <= b - display_idx {
                        out.push(a);
                        lo -= 1;
                    } else {
                        out.push(b);
                        hi += 1;
                    }
                }
                (Some(a), None) => {
                    out.push(a);
                    lo -= 1;
                }
                (None, Some(b)) => {
                    out.push(b);
                    hi += 1;
                }
                (None, None) => break,
            }
        }
        out.truncate(n.max(2));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchInterval;

    fn cfg_fixed(b: u8, gop_len: usize) -> CodecConfig {
        CodecConfig {
            gop_len,
            b_frames: BFrameMode::Fixed(b),
            search_interval: SearchInterval::Auto,
            ..CodecConfig::default()
        }
    }

    #[test]
    fn paper_example_structure() {
        // 8 frames, 3 B per anchor, I every 5 frames would give the paper's
        // (I0,B1,B2,B3,P4,...) example; check types and decode order shape.
        let plan = GopPlan::plan(&cfg_fixed(3, 16), 8, &[]).unwrap();
        use FrameType::*;
        assert_eq!(plan.types, vec![I, B, B, B, P, B, B, P]);
        assert_eq!(plan.decode_order, vec![0, 4, 3, 2, 1, 7, 6, 5]);
        assert_eq!(plan.anchors, vec![0, 4, 7]);
    }

    #[test]
    fn every_b_decodes_after_its_anchors() {
        let motion = vec![1.0; 47];
        let plan = GopPlan::plan(&CodecConfig::default(), 48, &motion).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 48];
            for (i, &d) in plan.decode_order.iter().enumerate() {
                p[d as usize] = i;
            }
            p
        };
        for (d, t) in plan.types.iter().enumerate() {
            if *t == FrameType::B {
                let (a, b) = plan.bracketing_anchors(d as u32);
                assert!(pos[d] > pos[a as usize], "B{d} before anchor {a}");
                assert!(pos[d] > pos[b as usize], "B{d} before anchor {b}");
            }
        }
    }

    #[test]
    fn decode_order_is_a_permutation() {
        let plan = GopPlan::plan(&cfg_fixed(2, 12), 30, &[]).unwrap();
        let mut seen = [false; 30];
        for &d in &plan.decode_order {
            assert!(!seen[d as usize], "frame {d} decoded twice");
            seen[d as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn auto_mode_adapts_to_motion() {
        let slow = vec![0.4; 47];
        let fast = vec![6.0; 47];
        let cfg = CodecConfig::default();
        let p_slow = GopPlan::plan(&cfg, 48, &slow).unwrap();
        let p_fast = GopPlan::plan(&cfg, 48, &fast).unwrap();
        assert!(p_slow.b_ratio() > 0.6, "slow ratio {}", p_slow.b_ratio());
        assert!(p_fast.b_ratio() < 0.1, "fast ratio {}", p_fast.b_ratio());
    }

    #[test]
    fn gop_boundaries_are_i_frames() {
        let plan = GopPlan::plan(&cfg_fixed(1, 6), 20, &[]).unwrap();
        for (d, t) in plan.types.iter().enumerate() {
            if t.is_anchor() && d % 6 == 0 {
                assert_eq!(*t, FrameType::I, "frame {d} should be I");
            }
        }
    }

    #[test]
    fn candidate_refs_start_with_bracketing_anchors() {
        let plan = GopPlan::plan(&cfg_fixed(3, 8), 24, &[]).unwrap();
        let b = plan.types.iter().position(|t| *t == FrameType::B).unwrap() as u32;
        let (prev, next) = plan.bracketing_anchors(b);
        let refs = plan.candidate_refs(b, 5);
        assert_eq!(refs[0], prev);
        assert_eq!(refs[1], next);
        assert!(refs.len() <= 5);
        // All distinct.
        let mut sorted = refs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), refs.len());
    }

    #[test]
    fn candidate_refs_expand_by_distance() {
        let plan = GopPlan::plan(&cfg_fixed(1, 100), 11, &[]).unwrap();
        // anchors: 0,2,4,6,8,10; B frames at odd indices.
        let refs = plan.candidate_refs(5, 4);
        assert_eq!(refs[0], 4);
        assert_eq!(refs[1], 6);
        // Next nearest anchors are 2 and 8 (distance 3 each) in some order.
        assert!(refs[2..].contains(&2));
        assert!(refs[2..].contains(&8));
    }

    #[test]
    fn single_frame_sequence_is_one_i_frame() {
        let plan = GopPlan::plan(&CodecConfig::default(), 1, &[]).unwrap();
        assert_eq!(plan.types, vec![FrameType::I]);
        assert_eq!(plan.decode_order, vec![0]);
        assert_eq!(plan.b_ratio(), 0.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        assert!(GopPlan::plan(&CodecConfig::default(), 0, &[]).is_err());
        // Auto with wrong motion length.
        assert!(GopPlan::plan(&CodecConfig::default(), 10, &[1.0; 3]).is_err());
    }
}
