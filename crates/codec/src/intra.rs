//! Intra prediction modes.
//!
//! Simplified H.26x-style spatial prediction: a block is predicted from the
//! already-reconstructed row above and column left of it within the same
//! frame. H.264 exposes 9 modes, H.265 14 (§II: "a total of 14 prediction
//! modes"); the extra H.265 modes are finer angular directions, which is the
//! behavioural difference the Fig. 17 comparison needs.
//!
//! When a neighbour is unavailable (frame border) its samples default to 128,
//! mirroring the standards' mid-level substitution.

use vrd_video::Frame;

/// Mid-gray substitute for unavailable neighbour samples.
const MID: u8 = 128;

/// Gathers the top neighbour row (length `size`), left neighbour column
/// (length `size`) and the top-left corner sample of a block, substituting
/// `MID` outside the frame. `recon` is the in-progress reconstructed frame.
fn neighbours(recon: &Frame, x: usize, y: usize, size: usize) -> (Vec<u8>, Vec<u8>, u8) {
    let top: Vec<u8> = (0..size)
        .map(|i| if y > 0 { recon.get(x + i, y - 1) } else { MID })
        .collect();
    let left: Vec<u8> = (0..size)
        .map(|i| if x > 0 { recon.get(x - 1, y + i) } else { MID })
        .collect();
    let corner = if x > 0 && y > 0 {
        recon.get(x - 1, y - 1)
    } else {
        MID
    };
    (top, left, corner)
}

/// Predicts a `size`×`size` block with intra `mode` from the reconstructed
/// neighbourhood. Valid modes are `0..n_modes` where `n_modes` comes from
/// [`crate::config::Standard::intra_modes`].
///
/// Mode map: 0 DC, 1 vertical, 2 horizontal, 3 diagonal down-left,
/// 4 diagonal down-right, 5 plane, 6 vertical-right, 7 horizontal-down,
/// 8 vertical-left, 9..13 finer angular blends (H.265 only).
///
/// # Panics
/// Panics if the block does not lie fully inside the frame.
pub fn predict(recon: &Frame, x: usize, y: usize, size: usize, mode: u8) -> Vec<u8> {
    assert!(x + size <= recon.width() && y + size <= recon.height());
    let (top, left, corner) = neighbours(recon, x, y, size);
    let mut out = vec![0u8; size * size];
    let at = |i: i32, arr: &[u8]| -> u8 { arr[i.clamp(0, size as i32 - 1) as usize] };
    match mode {
        // DC: mean of all neighbour samples.
        0 => {
            let sum: u32 = top.iter().chain(left.iter()).map(|&v| v as u32).sum();
            let dc = (sum / (2 * size) as u32) as u8;
            out.fill(dc);
        }
        // Vertical: copy the row above downwards.
        1 => {
            for r in 0..size {
                out[r * size..(r + 1) * size].copy_from_slice(&top);
            }
        }
        // Horizontal: copy the left column rightwards.
        2 => {
            for r in 0..size {
                out[r * size..(r + 1) * size].fill(left[r]);
            }
        }
        // Diagonal down-left: sample top row at x + y.
        3 => {
            for r in 0..size {
                for c in 0..size {
                    out[r * size + c] = at(c as i32 + r as i32 + 1, &top);
                }
            }
        }
        // Diagonal down-right: 45-degree from corner/top/left.
        4 => {
            for r in 0..size {
                for c in 0..size {
                    let d = c as i32 - r as i32;
                    out[r * size + c] = match d.cmp(&0) {
                        std::cmp::Ordering::Greater => at(d - 1, &top),
                        std::cmp::Ordering::Less => at(-d - 1, &left),
                        std::cmp::Ordering::Equal => corner,
                    };
                }
            }
        }
        // Plane: bilinear gradient from top and left.
        5 => {
            for r in 0..size {
                for c in 0..size {
                    let v = (top[c] as u32 * (size - r) as u32
                        + left[r] as u32 * (size - c) as u32
                        + at(size as i32 - 1, &top) as u32 * r as u32
                        + at(size as i32 - 1, &left) as u32 * c as u32)
                        / (2 * size) as u32;
                    out[r * size + c] = v.min(255) as u8;
                }
            }
        }
        // Angular blends: sample the top row (vertical family) or the left
        // column (horizontal family) at a mode-dependent slope, averaging
        // two taps. Modes 6-8 exist in both standards, 9-13 are the finer
        // H.265-only directions.
        m => {
            // (family, numerator, denominator): offset = r * num / den.
            let (vertical, num, den) = match m {
                6 => (true, 1, 2),  // vertical-right
                7 => (false, 1, 2), // horizontal-down
                8 => (true, -1, 2), // vertical-left
                9 => (true, 1, 4),
                10 => (true, -1, 4),
                11 => (false, 1, 4),
                12 => (true, 3, 4),
                13 => (false, 3, 4),
                _ => (true, 0, 1), // unknown modes degrade to vertical
            };
            for r in 0..size {
                for c in 0..size {
                    let v = if vertical {
                        let off = r as i32 * num / den;
                        let a = at(c as i32 + off, &top);
                        let b = at(c as i32 + off + 1, &top);
                        ((a as u16 + b as u16) / 2) as u8
                    } else {
                        let off = c as i32 * num / den;
                        let a = at(r as i32 + off, &left);
                        let b = at(r as i32 + off + 1, &left);
                        ((a as u16 + b as u16) / 2) as u8
                    };
                    out[r * size + c] = v;
                }
            }
        }
    }
    out
}

/// Picks the intra mode with minimal SAE against the source block.
///
/// Returns `(mode, prediction, sae)`.
pub fn best_mode(
    source: &Frame,
    recon: &Frame,
    x: usize,
    y: usize,
    size: usize,
    n_modes: u8,
) -> (u8, Vec<u8>, u32) {
    let mut best = (0u8, Vec::new(), u32::MAX);
    for mode in 0..n_modes {
        let pred = predict(recon, x, y, size, mode);
        let sae = crate::block::sae_against(source, x, y, &pred, size);
        if sae < best.2 {
            best = (mode, pred, sae);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reconstructed frame with a strong vertical stripe pattern.
    fn striped(w: usize, h: usize) -> Frame {
        let data = (0..w * h)
            .map(|i| if (i % w).is_multiple_of(2) { 200 } else { 40 })
            .collect();
        Frame::from_vec(w, h, data)
    }

    #[test]
    fn all_modes_produce_full_blocks() {
        let f = striped(32, 32);
        for mode in 0..14 {
            let p = predict(&f, 8, 8, 8, mode);
            assert_eq!(p.len(), 64, "mode {mode}");
        }
    }

    #[test]
    fn border_blocks_fall_back_to_mid_gray() {
        let f = striped(16, 16);
        let p = predict(&f, 0, 0, 8, 0); // DC with no neighbours
        assert!(p.iter().all(|&v| v == 128));
    }

    #[test]
    fn vertical_mode_extends_top_row() {
        let f = striped(32, 32);
        let p = predict(&f, 8, 8, 8, 1);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(p[r * 8 + c], f.get(8 + c, 7));
            }
        }
    }

    #[test]
    fn horizontal_mode_extends_left_column() {
        let f = striped(32, 32);
        let p = predict(&f, 8, 8, 8, 2);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(p[r * 8 + c], f.get(7, 8 + r));
            }
        }
    }

    #[test]
    fn best_mode_picks_vertical_for_vertical_stripes() {
        // Source and reconstruction share the same vertical stripes, so the
        // vertical mode predicts perfectly.
        let f = striped(32, 32);
        let (mode, _pred, sae) = best_mode(&f, &f, 8, 8, 8, 9);
        assert_eq!(sae, 0);
        assert_eq!(mode, 1);
    }

    #[test]
    fn more_modes_never_hurt() {
        let f = striped(32, 32);
        // A diagonal source: richer mode sets should match at least as well.
        let diag = Frame::from_vec(
            32,
            32,
            (0..32 * 32)
                .map(|i| {
                    let (x, y) = (i % 32, i / 32);
                    ((x + y) * 8 % 256) as u8
                })
                .collect(),
        );
        let (_, _, sae9) = best_mode(&diag, &f, 8, 8, 8, 9);
        let (_, _, sae14) = best_mode(&diag, &f, 8, 8, 8, 14);
        assert!(sae14 <= sae9);
    }
}
