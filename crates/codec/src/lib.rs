//! # vrd-codec — a block-based hybrid video codec with exposed motion vectors
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020), standing in for
//! FFmpeg's H.264/H.265 implementations (see `DESIGN.md` §2). It provides
//! everything the paper's algorithm taps from a standards decoder:
//!
//! * I/P/B **GOP planning** with motion-adaptive B-runs ([`GopPlan`]) — the
//!   source of the per-video B-frame ratios in Fig. 3(a);
//! * SAE-driven **intra prediction** and **three-step inter motion search**
//!   over a configurable reference interval `n` (Fig. 16's knob);
//! * **bi-prediction** for B-frames with the `bi-ref` flag ([`MvRecord`]);
//! * a real serialised **bitstream**, decodable in two modes:
//!   [`Decoder::decode`] (all pixels) and [`Decoder::decode_for_recognition`]
//!   (anchor pixels + B-frame motion vectors only — the VR-DANN fast path);
//! * the **H.264 vs H.265 profile split** (16- vs 8-pixel macro-blocks,
//!   9 vs 14 intra modes) behind Fig. 17.
//!
//! ## Example
//!
//! ```
//! use vrd_codec::{CodecConfig, Decoder, Encoder};
//! use vrd_video::davis::{davis_sequence, SuiteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let seq = davis_sequence("cows", &SuiteConfig::tiny())?;
//! let encoded = Encoder::new(CodecConfig::default()).encode(&seq.frames)?;
//! println!("B-frame ratio: {:.0}%", encoded.stats.b_ratio() * 100.0);
//!
//! // VR-DANN's path: anchors decoded, B-frames as motion vectors.
//! let stream = Decoder::new().decode_for_recognition(&encoded.bitstream)?;
//! assert_eq!(stream.b_frames.len(), encoded.stats.b_frames);
//! # Ok(())
//! # }
//! ```

pub mod bitstream;
pub mod block;
pub mod config;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod faults;
pub mod gop;
pub mod intra;
pub mod me;
pub mod motion;
pub mod quality;
pub mod stats;
pub mod stream;
pub mod types;

pub use config::{BFrameMode, CodecConfig, SearchInterval, Standard};
pub use decoder::{
    BFrameInfo, ConcealReason, DecodeOutcome, DecodedVideo, Decoder, FrameOutcome, FrameSummary,
    RecognitionStream, ResilientStream,
};
pub use encoder::{EncodedVideo, Encoder};
pub use error::{CodecError, Result};
pub use faults::{
    checksum, inject, packetize, FaultConfig, FaultEvent, FaultKind, FaultLog, FramePacket,
    FrameSpan, PacketStream,
};
pub use gop::GopPlan;
pub use quality::{psnr, psnr_sequence, ssim};
pub use stats::EncodeStats;
pub use stream::{
    DecodedUnit, FrameSource, ResilientFrameSource, StreamInfo, StreamTotals, StrictFrameSource,
    UnitPayload,
};
pub use types::{BlockMode, FrameMeta, FrameType, MvRecord, RefMv};
