//! Inter-frame motion estimation.
//!
//! A three-step (log) search over each candidate reference frame: evaluate
//! the 8-neighbourhood at step 4, then 2, then 1 pixels around the running
//! best offset. This is the classic fast search used by practical encoders
//! and keeps the whole-suite encode time tractable while still finding the
//! minimum-SAE block in locally smooth error surfaces.

use crate::block::{average_blocks, extract_block, sae_against, sae_between};
use vrd_video::Frame;

/// The outcome of a single-reference search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index into the candidate reference list that was searched.
    pub ref_index: usize,
    /// Source block x in the reference frame.
    pub src_x: i32,
    /// Source block y in the reference frame.
    pub src_y: i32,
    /// SAE of the match.
    pub sae: u32,
}

/// Three-step search for the best `size`×`size` match of the block at
/// `(bx, by)` of `cur` inside `reference`, within ±`range` pixels.
pub fn search_one(
    cur: &Frame,
    bx: usize,
    by: usize,
    reference: &Frame,
    size: usize,
    range: i32,
) -> (i32, i32, u32) {
    let mut best_dx = 0i32;
    let mut best_dy = 0i32;
    let mut best = sae_between(cur, bx, by, reference, bx as i32, by as i32, size, u32::MAX);
    let mut step = range.clamp(1, 4);
    // Round the initial step down to a power of two for the classic ladder.
    while step & (step - 1) != 0 {
        step -= 1;
    }
    while step >= 1 {
        let mut improved = true;
        while improved {
            improved = false;
            for (ox, oy) in [
                (-step, 0),
                (step, 0),
                (0, -step),
                (0, step),
                (-step, -step),
                (step, step),
                (-step, step),
                (step, -step),
            ] {
                let dx = best_dx + ox;
                let dy = best_dy + oy;
                if dx.abs() > range || dy.abs() > range {
                    continue;
                }
                let sae = sae_between(
                    cur,
                    bx,
                    by,
                    reference,
                    bx as i32 + dx,
                    by as i32 + dy,
                    size,
                    best,
                );
                if sae < best {
                    best = sae;
                    best_dx = dx;
                    best_dy = dy;
                    improved = true;
                }
            }
        }
        step /= 2;
    }
    (bx as i32 + best_dx, by as i32 + best_dy, best)
}

/// Searches every candidate reference frame and returns the best match.
///
/// Returns `None` when `refs` is empty.
pub fn search_all(
    cur: &Frame,
    bx: usize,
    by: usize,
    refs: &[&Frame],
    size: usize,
    range: i32,
) -> Option<Match> {
    let mut best: Option<Match> = None;
    for (i, reference) in refs.iter().enumerate() {
        let (sx, sy, sae) = search_one(cur, bx, by, reference, size, range);
        if best.is_none_or(|b| sae < b.sae) {
            best = Some(Match {
                ref_index: i,
                src_x: sx,
                src_y: sy,
                sae,
            });
        }
    }
    best
}

/// A bi-prediction candidate: the best forward and backward matches plus the
/// SAE of their averaged prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiMatch {
    /// Best match among references earlier in display order.
    pub fwd: Match,
    /// Best match among references later in display order.
    pub bwd: Match,
    /// SAE of the averaged prediction.
    pub sae: u32,
    /// The averaged prediction block itself.
    pub pred: Vec<u8>,
}

/// Builds the bi-prediction from a forward and a backward match.
#[allow(clippy::too_many_arguments)] // two matches, their frames, a position and a size
pub fn bi_predict(
    cur: &Frame,
    bx: usize,
    by: usize,
    fwd: Match,
    fwd_frame: &Frame,
    bwd: Match,
    bwd_frame: &Frame,
    size: usize,
) -> BiMatch {
    let a = extract_block(fwd_frame, fwd.src_x as usize, fwd.src_y as usize, size);
    let b = extract_block(bwd_frame, bwd.src_x as usize, bwd.src_y as usize, size);
    let pred = average_blocks(&a, &b);
    let sae = sae_against(cur, bx, by, &pred, size);
    BiMatch {
        fwd,
        bwd,
        sae,
        pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a frame with a bright textured square at `(x, y)`.
    fn square_at(w: usize, h: usize, x: usize, y: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for dy in 0..8 {
            for dx in 0..8 {
                // Textured so the match is unambiguous.
                f.set(x + dx, y + dy, 100 + ((dx * 13 + dy * 7) % 100) as u8);
            }
        }
        f
    }

    #[test]
    fn finds_exact_translation() {
        let reference = square_at(64, 48, 20, 16);
        let cur = square_at(64, 48, 25, 13); // moved by (+5, -3)
        let (sx, sy, sae) = search_one(&cur, 25, 13, &reference, 8, 8);
        // Block at (25,13) in cur should match (20,16) in reference.
        assert_eq!((sx, sy), (20, 16));
        assert_eq!(sae, 0);
    }

    #[test]
    fn zero_motion_matches_colocated() {
        let f = square_at(64, 48, 24, 16);
        let (sx, sy, sae) = search_one(&f, 24, 16, &f, 8, 8);
        assert_eq!((sx, sy, sae), (24, 16, 0));
    }

    #[test]
    fn respects_search_range() {
        let reference = square_at(64, 48, 8, 16);
        let cur = square_at(64, 48, 32, 16); // moved by 24 > range 8
        let (sx, _sy, sae) = search_one(&cur, 32, 16, &reference, 8, 8);
        assert!((sx - 32).abs() <= 8, "candidate outside range: {sx}");
        assert!(sae > 0, "cannot perfectly match beyond the range");
    }

    #[test]
    fn search_all_picks_best_reference() {
        let bad = Frame::new(64, 48);
        let good = square_at(64, 48, 22, 18);
        let cur = square_at(64, 48, 24, 16);
        let m = search_all(&cur, 24, 16, &[&bad, &good], 8, 8).unwrap();
        assert_eq!(m.ref_index, 1);
        assert_eq!((m.src_x, m.src_y), (22, 18));
        assert_eq!(m.sae, 0);
        assert!(search_all(&cur, 24, 16, &[], 8, 8).is_none());
    }

    #[test]
    fn bi_prediction_averages_references() {
        // Forward all-100, backward all-200: the average 150 matches a
        // mid-bright block better than either alone.
        let fwd_frame = Frame::from_vec(32, 32, vec![100; 32 * 32]);
        let bwd_frame = Frame::from_vec(32, 32, vec![200; 32 * 32]);
        let cur = Frame::from_vec(32, 32, vec![150; 32 * 32]);
        let fwd = Match {
            ref_index: 0,
            src_x: 8,
            src_y: 8,
            sae: 64 * 50,
        };
        let bwd = Match {
            ref_index: 1,
            src_x: 8,
            src_y: 8,
            sae: 64 * 50,
        };
        let bi = bi_predict(&cur, 8, 8, fwd, &fwd_frame, bwd, &bwd_frame, 8);
        assert_eq!(bi.sae, 0);
        assert!(bi.pred.iter().all(|&v| v == 150));
    }
}
