//! Pre-encode motion analysis for GOP planning.
//!
//! The auto B-ratio mode needs a notion of "how fast is this content"
//! (§III-C: the encoder auto-tunes the B proportion). Raw frame differencing
//! conflates object *size* with object *speed* (a large slow object changes
//! more pixels than a small fast one), so instead we estimate per-gap
//! **displacement**: block-match the most-changed macro-blocks of each frame
//! into the next and take the median motion magnitude in pixels/frame —
//! essentially a miniature motion-estimation pre-pass, which is what
//! production encoders' look-ahead does.

use crate::block::sae_between;
use vrd_video::Frame;

/// Number of high-activity blocks sampled per frame gap.
const PROBE_BLOCKS: usize = 8;
/// Edge length of the probe blocks.
const PROBE_SIZE: usize = 8;
/// Search range of the probe matching in pixels (exhaustive window).
const PROBE_RANGE: i32 = 6;
/// Motion-cost penalty per offset pixel, added to the SAE during probe
/// matching. Periodic textures alias under pure SAE (a shift of one texture
/// period matches as well as the true shift); penalising distance keeps the
/// probe locked to the smallest-displacement interpretation, exactly like
/// the rate term in a production encoder's motion cost.
const PROBE_LAMBDA: u32 = 32;

/// Mean absolute difference of one block between two frames.
fn block_mad(a: &Frame, b: &Frame, x: usize, y: usize) -> u32 {
    let mut sum = 0u32;
    for dy in 0..PROBE_SIZE {
        for dx in 0..PROBE_SIZE {
            sum += (a.get(x + dx, y + dy) as i32 - b.get(x + dx, y + dy) as i32).unsigned_abs();
        }
    }
    sum
}

/// Estimated motion (pixels/frame) for one frame gap.
pub fn gap_displacement(cur: &Frame, next: &Frame) -> f64 {
    let w = cur.width();
    let h = cur.height();
    if w < PROBE_SIZE || h < PROBE_SIZE {
        return cur.mean_abs_diff(next);
    }
    // Rank blocks by change; the most-changed blocks sit on moving content.
    let mut ranked: Vec<(u32, usize, usize)> = Vec::new();
    for y in (0..h - PROBE_SIZE + 1).step_by(PROBE_SIZE) {
        for x in (0..w - PROBE_SIZE + 1).step_by(PROBE_SIZE) {
            ranked.push((block_mad(cur, next, x, y), x, y));
        }
    }
    ranked.sort_unstable_by_key(|&(mad, _, _)| std::cmp::Reverse(mad));
    let probes = &ranked[..PROBE_BLOCKS.min(ranked.len())];
    if probes.is_empty() || probes[0].0 == 0 {
        return 0.0;
    }
    // SAE above which a probe is considered unmatchable (deforming content);
    // such probes carry no displacement information and are dropped.
    const UNMATCHABLE_SAE: u32 = 16 * (PROBE_SIZE * PROBE_SIZE) as u32;
    let mut mags: Vec<f64> = probes
        .iter()
        .filter(|(mad, _, _)| *mad > 0)
        .filter_map(|&(_, x, y)| {
            // Where did this block of `next` come from in `cur`?
            // Exhaustive search with a distance penalty (anti-aliasing).
            let mut best = (0i32, 0i32, u32::MAX);
            let mut best_sae = u32::MAX;
            for dy in -PROBE_RANGE..=PROBE_RANGE {
                for dx in -PROBE_RANGE..=PROBE_RANGE {
                    let sae = sae_between(
                        next,
                        x,
                        y,
                        cur,
                        x as i32 + dx,
                        y as i32 + dy,
                        PROBE_SIZE,
                        u32::MAX,
                    );
                    if sae == u32::MAX {
                        continue;
                    }
                    let cost = sae + PROBE_LAMBDA * (dx.unsigned_abs() + dy.unsigned_abs());
                    if cost < best.2 {
                        best = (dx, dy, cost);
                        best_sae = sae;
                    }
                }
            }
            if best_sae > UNMATCHABLE_SAE {
                return None;
            }
            let (dx, dy) = (best.0 as f64, best.1 as f64);
            Some((dx * dx + dy * dy).sqrt())
        })
        .collect();
    if mags.len() < PROBE_BLOCKS / 4 {
        // Nearly everything is unmatchable: the content deforms faster than
        // translation can describe. Report a high-motion estimate so the
        // planner stays conservative without zeroing the B run entirely.
        return 3.0;
    }
    mags.sort_unstable_by(f64::total_cmp);
    mags[mags.len() / 2]
}

/// Per-gap displacement estimates for a whole sequence
/// (`result.len() == frames.len() - 1`).
pub fn estimate_motion(frames: &[Frame]) -> Vec<f64> {
    frames
        .windows(2)
        .map(|p| gap_displacement(&p[0], &p[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    #[test]
    fn static_frames_report_zero_motion() {
        let f = davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames[0].clone();
        assert_eq!(gap_displacement(&f, &f), 0.0);
    }

    #[test]
    fn fast_sequences_measure_faster_than_slow() {
        let cfg = SuiteConfig::default();
        let slow = davis_sequence("cows", &cfg).unwrap();
        let fast = davis_sequence("parkour", &cfg).unwrap();
        let m_slow = estimate_motion(&slow.frames);
        let m_fast = estimate_motion(&fast.frames);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&m_fast) > 2.0 * avg(&m_slow),
            "fast {:.2} vs slow {:.2}",
            avg(&m_fast),
            avg(&m_slow)
        );
    }

    #[test]
    fn displacement_tracks_actual_speed() {
        let cfg = SuiteConfig::default();
        let seq = davis_sequence("drift-straight", &cfg).unwrap();
        let m = estimate_motion(&seq.frames);
        let avg = m.iter().sum::<f64>() / m.len() as f64;
        // drift-straight moves ~3 px/frame at this canvas.
        assert!(
            (1.5..5.0).contains(&avg),
            "estimated {avg:.2} px/frame, expected ~3"
        );
    }

    #[test]
    fn estimate_len_matches_gaps() {
        let seq = davis_sequence("dog", &SuiteConfig::tiny()).unwrap();
        assert_eq!(estimate_motion(&seq.frames).len(), seq.len() - 1);
    }
}
