//! Objective video quality metrics: PSNR and SSIM.
//!
//! Used by the rate-distortion tests and the `vrdstat` tooling to quantify
//! what the quantiser costs. SSIM follows Wang et al. (2004) with the
//! standard 8×8 window and K1/K2 constants.

use vrd_video::Frame;

/// Peak signal-to-noise ratio in dB; `f64::INFINITY` for identical frames.
///
/// # Panics
/// Panics if the frames differ in size.
///
/// # Example
/// ```
/// use vrd_codec::{psnr, CodecConfig, Decoder, Encoder};
/// use vrd_video::davis::{davis_sequence, SuiteConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = davis_sequence("cows", &SuiteConfig::tiny())?;
/// let encoded = Encoder::new(CodecConfig::default()).encode(&seq.frames)?;
/// let decoded = Decoder::new().decode(&encoded.bitstream)?;
/// assert!(psnr(&seq.frames[0], &decoded.frames[0]) > 30.0);
/// # Ok(())
/// # }
/// ```
pub fn psnr(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width(), b.width(), "frame width mismatch");
    assert_eq!(a.height(), b.height(), "frame height mismatch");
    let mse: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.as_slice().len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / mse).log10()
    }
}

/// Mean PSNR over a frame sequence (pairs compared index-wise).
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn psnr_sequence(a: &[Frame], b: &[Frame]) -> f64 {
    assert_eq!(a.len(), b.len(), "sequence length mismatch");
    assert!(!a.is_empty(), "cannot score an empty sequence");
    let finite: Vec<f64> = a.iter().zip(b).map(|(x, y)| psnr(x, y).min(99.0)).collect();
    finite.iter().sum::<f64>() / finite.len() as f64
}

/// Structural similarity index in `[-1, 1]` (1 = identical), computed over
/// non-overlapping 8×8 windows.
///
/// # Panics
/// Panics if the frames differ in size or are smaller than 8×8.
pub fn ssim(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width(), b.width(), "frame width mismatch");
    assert_eq!(a.height(), b.height(), "frame height mismatch");
    const WIN: usize = 8;
    let (w, h) = (a.width(), a.height());
    assert!(w >= WIN && h >= WIN, "frame smaller than the SSIM window");
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);

    let mut total = 0.0;
    let mut windows = 0usize;
    for wy in (0..=h - WIN).step_by(WIN) {
        for wx in (0..=w - WIN).step_by(WIN) {
            let n = (WIN * WIN) as f64;
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for dy in 0..WIN {
                for dx in 0..WIN {
                    let x = a.get(wx + dx, wy + dy) as f64;
                    let y = b.get(wx + dx, wy + dy) as f64;
                    sa += x;
                    sb += y;
                    saa += x * x;
                    sbb += y * y;
                    sab += x * y;
                }
            }
            let (ma, mb) = (sa / n, sb / n);
            let va = saa / n - ma * ma;
            let vb = sbb / n - mb * mb;
            let cov = sab / n - ma * mb;
            total += ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            windows += 1;
        }
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn test_frame() -> Frame {
        davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames[0].clone()
    }

    #[test]
    fn identical_frames_are_perfect() {
        let f = test_frame();
        assert!(psnr(&f, &f).is_infinite());
        assert!((ssim(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_degrades_both_metrics_monotonically() {
        let f = test_frame();
        let perturb = |amp: i32| {
            let mut g = f.clone();
            for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
                let n =
                    (vrd_video::texture::hash2(i as i64, 0, 7) % (2 * amp as u64 + 1)) as i32 - amp;
                *v = (*v as i32 + n).clamp(0, 255) as u8;
            }
            g
        };
        let small = perturb(4);
        let large = perturb(32);
        assert!(psnr(&f, &small) > psnr(&f, &large));
        assert!(ssim(&f, &small) > ssim(&f, &large));
        assert!(psnr(&f, &small) > 30.0);
        assert!(ssim(&f, &large) < 0.9);
    }

    #[test]
    fn ssim_penalises_structural_change_more_than_brightness() {
        let f = test_frame();
        // Uniform brightness shift: structure preserved.
        let mut bright = f.clone();
        for v in bright.as_mut_slice() {
            *v = v.saturating_add(12);
        }
        // Same-energy random noise: structure destroyed.
        let mut noisy = f.clone();
        for (i, v) in noisy.as_mut_slice().iter_mut().enumerate() {
            let n = (vrd_video::texture::hash2(i as i64, 1, 9) % 25) as i32 - 12;
            *v = (*v as i32 + n).clamp(0, 255) as u8;
        }
        assert!(
            ssim(&f, &bright) > ssim(&f, &noisy),
            "SSIM should prefer the brightness shift"
        );
    }

    #[test]
    fn sequence_psnr_averages() {
        let f = test_frame();
        let mean = psnr_sequence(&[f.clone(), f.clone()], &[f.clone(), f]);
        assert!((mean - 99.0).abs() < 1e-9, "identical pairs clamp to 99");
    }
}
