//! Encoder-side statistics, the source data for Fig. 3 of the paper.

/// Statistics gathered while encoding one sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EncodeStats {
    /// Total frames encoded.
    pub n_frames: usize,
    /// Number of B-frames.
    pub b_frames: usize,
    /// Distinct reference frames used by each B-frame (Fig. 3b's metric).
    pub refs_per_b: Vec<usize>,
    /// Macro-blocks coded intra.
    pub intra_blocks: usize,
    /// Macro-blocks coded with a single reference.
    pub inter_blocks: usize,
    /// Macro-blocks coded bi-predicted.
    pub bi_blocks: usize,
    /// Final bitstream length in bytes.
    pub bitstream_bytes: usize,
    /// Uncompressed luma size in bytes (width × height × frames).
    pub raw_bytes: usize,
    /// Sum of motion-vector magnitudes (for the mean).
    pub mv_magnitude_sum: f64,
    /// Number of motion vectors contributing to the magnitude sum.
    pub mv_count: usize,
}

impl EncodeStats {
    /// Fraction of frames that are B-frames (Fig. 3a).
    pub fn b_ratio(&self) -> f64 {
        if self.n_frames == 0 {
            0.0
        } else {
            self.b_frames as f64 / self.n_frames as f64
        }
    }

    /// Mean number of distinct reference frames per B-frame (Fig. 3b).
    pub fn mean_refs_per_b(&self) -> f64 {
        if self.refs_per_b.is_empty() {
            0.0
        } else {
            self.refs_per_b.iter().sum::<usize>() as f64 / self.refs_per_b.len() as f64
        }
    }

    /// Maximum number of distinct reference frames any B-frame needed.
    pub fn max_refs_per_b(&self) -> usize {
        self.refs_per_b.iter().copied().max().unwrap_or(0)
    }

    /// Raw-to-compressed size ratio (higher = better compression).
    pub fn compression_ratio(&self) -> f64 {
        if self.bitstream_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.bitstream_bytes as f64
        }
    }

    /// Mean motion-vector magnitude in pixels.
    pub fn mean_mv_magnitude(&self) -> f64 {
        if self.mv_count == 0 {
            0.0
        } else {
            self.mv_magnitude_sum / self.mv_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_stats() {
        let s = EncodeStats::default();
        assert_eq!(s.b_ratio(), 0.0);
        assert_eq!(s.mean_refs_per_b(), 0.0);
        assert_eq!(s.max_refs_per_b(), 0);
        assert_eq!(s.compression_ratio(), 0.0);
        assert_eq!(s.mean_mv_magnitude(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = EncodeStats {
            n_frames: 10,
            b_frames: 6,
            refs_per_b: vec![2, 3, 4, 2, 3, 4],
            bitstream_bytes: 100,
            raw_bytes: 1000,
            mv_magnitude_sum: 30.0,
            mv_count: 10,
            ..EncodeStats::default()
        };
        assert!((s.b_ratio() - 0.6).abs() < 1e-9);
        assert!((s.mean_refs_per_b() - 3.0).abs() < 1e-9);
        assert_eq!(s.max_refs_per_b(), 4);
        assert!((s.compression_ratio() - 10.0).abs() < 1e-9);
        assert!((s.mean_mv_magnitude() - 3.0).abs() < 1e-9);
    }
}
