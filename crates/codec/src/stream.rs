//! Pull-based streaming decode: [`FrameSource`] and [`DecodedUnit`].
//!
//! VR-DANN's decoder and NPU work *concurrently on a stream* (§IV): the
//! decoder hands over anchor pixels and B-frame motion-vector payloads one
//! frame at a time, in decode order, and the recognition pipeline consumes
//! them as they arrive. This module is that hand-over point. A
//! [`FrameSource`] yields one [`DecodedUnit`] per frame slot and keeps only
//! a small reference window of reconstructed anchors alive — never the
//! whole video — which is what makes the downstream engine's memory
//! footprint O(GOP) instead of O(sequence).
//!
//! Two sources implement the trait:
//!
//! * [`StrictFrameSource`] walks a contiguous bitstream and fails fast on
//!   corruption (the behaviour of the retired monolithic
//!   `decode_for_recognition` loop);
//! * [`ResilientFrameSource`] walks a packetized, possibly damaged
//!   transport stream and never fails after the header: every packet
//!   yields a unit whose [`DecodeOutcome`] reports what was recovered.
//!
//! The resilient source runs a pixel-free *pre-scan* over the packets
//! first. The per-packet claim/outcome ladder only depends on transport
//! metadata and payload structure (an intact anchor always decodes; a B
//! payload parses without pixels), so outcomes, inferred display slots for
//! lost packets, and the usable-anchor list are all known before the first
//! unit is pulled — exactly what a concealing consumer needs up front.

use crate::bitstream::Reader;
use crate::decoder::{BFrameInfo, ConcealReason, DecodeOutcome, Decoder, Header};
use crate::error::Result;
use crate::faults::PacketStream;
use crate::types::FrameType;
use bytes::Bytes;
use std::collections::{BTreeSet, VecDeque};
use vrd_video::Frame;

/// Reconstructed anchors retained for reference. The encoder never
/// references further back than the nearest 9 anchors
/// ([`crate::SearchInterval`] is clamped to 1..=9, `Auto` resolves to 7),
/// so a 10-deep window always holds every frame a valid stream can ask
/// for — and bounds the source's live pixel memory regardless of sequence
/// length.
const REF_WINDOW: usize = 10;

/// Stream-level metadata shared by every unit of one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size the stream was coded with.
    pub mb_size: usize,
    /// Frame count announced by the stream header.
    pub n_frames: usize,
}

/// Whole-stream byte/count accounting, split by frame class.
///
/// For a [`StrictFrameSource`] the totals accumulate as units are pulled
/// and are final once the source is exhausted; a [`ResilientFrameSource`]
/// knows them from its pre-scan before the first pull.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Bitstream bytes parsed for anchor frames (header included).
    pub anchor_bytes: usize,
    /// Bitstream bytes parsed (and mostly skipped) for B-frames.
    pub b_bytes: usize,
    /// Anchor frames that produced pixels.
    pub anchors: usize,
    /// B-frames that produced a motion-vector payload.
    pub b_frames: usize,
}

/// What one frame slot delivered.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitPayload {
    /// An anchor (I/P) frame reconstructed to pixels.
    Anchor {
        /// Display index of the anchor.
        display: u32,
        /// The reconstructed pixels. Ownership passes to the consumer; the
        /// source keeps its own reference copy inside the retention window.
        frame: Frame,
    },
    /// A B-frame's motion-vector payload (residuals skipped, no pixels).
    Motion(BFrameInfo),
    /// Nothing usable was recovered for this slot (resilient decode only).
    Skipped {
        /// Display index when it could be read or inferred from the
        /// surviving frames' claim pattern; `None` otherwise.
        display: Option<u32>,
    },
}

/// One frame slot pulled from a [`FrameSource`], in decode order.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedUnit {
    /// Decode-order index (the packet slot).
    pub decode_idx: u32,
    /// Frame type, known from the bitstream or transport metadata even
    /// when the payload is damaged.
    pub ftype: FrameType,
    /// What the decoder managed to recover (always [`DecodeOutcome::Ok`]
    /// for a strict source).
    pub outcome: DecodeOutcome,
    /// Distinct reference frames this unit's payload named, ascending
    /// (strict source only; resilient units leave it empty).
    pub refs: Vec<u32>,
    /// The recovered data.
    pub payload: UnitPayload,
}

impl DecodedUnit {
    /// Display index of this unit, when known.
    pub fn display(&self) -> Option<u32> {
        match &self.payload {
            UnitPayload::Anchor { display, .. } => Some(*display),
            UnitPayload::Motion(info) => Some(info.display_idx),
            UnitPayload::Skipped { display } => *display,
        }
    }
}

/// A pull-based decoder front-end: one [`DecodedUnit`] per frame slot, in
/// decode order, with bounded live pixel memory.
pub trait FrameSource {
    /// Stream-level metadata from the header.
    fn info(&self) -> StreamInfo;

    /// Pulls the next unit, or `None` when the stream is exhausted. A
    /// strict source fuses after its first error; a resilient source never
    /// errors here.
    fn next_unit(&mut self) -> Option<Result<DecodedUnit>>;

    /// Reconstructed anchor frames currently held in the reference window.
    fn live_frames(&self) -> usize;

    /// High-water mark of simultaneously live frames (window plus the unit
    /// being handed over) — the bounded-memory accounting hook.
    fn peak_live_frames(&self) -> usize;

    /// Whole-stream byte/count accounting (see [`StreamTotals`]).
    fn totals(&self) -> StreamTotals;
}

/// Strict streaming decode of a contiguous bitstream: anchors to pixels,
/// B-frames to motion vectors, first error fuses the source.
#[derive(Debug)]
pub struct StrictFrameSource {
    r: Reader,
    hdr: Header,
    mb: usize,
    next_decode: usize,
    anchor_recon: Vec<Option<Frame>>,
    window: VecDeque<u32>,
    peak_live: usize,
    totals: StreamTotals,
    fused: bool,
}

impl StrictFrameSource {
    /// Opens a bitstream for streaming recognition-mode decode.
    ///
    /// # Errors
    /// Returns [`crate::CodecError::Bitstream`] if the header is malformed.
    pub fn new(bitstream: &Bytes) -> Result<Self> {
        let mut r = Reader::new(bitstream.clone());
        let total = bitstream.len();
        let hdr = Decoder::read_header_capped(&mut r, None)?;
        let mb = hdr.standard.mb_size();
        let anchor_recon = vec![None; hdr.n_frames];
        Ok(Self {
            totals: StreamTotals {
                anchor_bytes: total - r.remaining(),
                ..StreamTotals::default()
            },
            r,
            hdr,
            mb,
            next_decode: 0,
            anchor_recon,
            window: VecDeque::new(),
            peak_live: 0,
            fused: false,
        })
    }

    fn step(&mut self, decode_idx: u32, before: usize) -> Result<DecodedUnit> {
        let (ftype, display) = Decoder::read_frame_header(&mut self.r, self.hdr.n_frames)?;
        let mut refs_used = BTreeSet::new();
        if ftype.is_anchor() {
            let rec = Decoder::read_anchor(
                &mut self.r,
                &self.hdr,
                self.mb,
                &self.anchor_recon,
                &mut refs_used,
            )?;
            self.anchor_recon[display as usize] = Some(rec.clone());
            self.window.push_back(display);
            if self.window.len() > REF_WINDOW {
                if let Some(old) = self.window.pop_front() {
                    self.anchor_recon[old as usize] = None;
                }
            }
            self.peak_live = self.peak_live.max(self.window.len() + 1);
            self.totals.anchor_bytes += before - self.r.remaining();
            self.totals.anchors += 1;
            Ok(DecodedUnit {
                decode_idx,
                ftype,
                outcome: DecodeOutcome::Ok,
                refs: refs_used.into_iter().collect(),
                payload: UnitPayload::Anchor {
                    display,
                    frame: rec,
                },
            })
        } else {
            let mut info = BFrameInfo {
                display_idx: display,
                mvs: Vec::new(),
                intra_blocks: Vec::new(),
            };
            Decoder::read_b_frame_blocks(
                &mut self.r,
                &self.hdr,
                self.mb,
                &mut info,
                &mut refs_used,
            )?;
            self.totals.b_bytes += before - self.r.remaining();
            self.totals.b_frames += 1;
            Ok(DecodedUnit {
                decode_idx,
                ftype,
                outcome: DecodeOutcome::Ok,
                refs: refs_used.into_iter().collect(),
                payload: UnitPayload::Motion(info),
            })
        }
    }
}

impl FrameSource for StrictFrameSource {
    fn info(&self) -> StreamInfo {
        StreamInfo {
            width: self.hdr.width,
            height: self.hdr.height,
            mb_size: self.mb,
            n_frames: self.hdr.n_frames,
        }
    }

    fn next_unit(&mut self) -> Option<Result<DecodedUnit>> {
        if self.fused || self.next_decode >= self.hdr.n_frames {
            return None;
        }
        let decode_idx = self.next_decode as u32;
        self.next_decode += 1;
        let before = self.r.remaining();
        match self.step(decode_idx, before) {
            Ok(unit) => Some(Ok(unit)),
            Err(e) => {
                self.fused = true;
                Some(Err(e))
            }
        }
    }

    fn live_frames(&self) -> usize {
        self.window.len()
    }

    fn peak_live_frames(&self) -> usize {
        self.peak_live
    }

    fn totals(&self) -> StreamTotals {
        self.totals
    }
}

/// Pre-scanned plan for one packet of a resilient stream.
#[derive(Debug)]
struct UnitPlan {
    display: Option<u32>,
    outcome: DecodeOutcome,
    b_info: Option<BFrameInfo>,
}

/// Resilient streaming decode of a packetized, possibly damaged transport
/// stream. Never errors after construction: every packet yields a unit.
#[derive(Debug)]
pub struct ResilientFrameSource<'a> {
    stream: &'a PacketStream,
    hdr: Header,
    mb: usize,
    pos: usize,
    plans: Vec<UnitPlan>,
    usable_anchors: Vec<u32>,
    anchor_recon: Vec<Option<Frame>>,
    window: VecDeque<u32>,
    peak_live: usize,
    totals: StreamTotals,
}

impl<'a> ResilientFrameSource<'a> {
    /// Pre-scans a packet stream and prepares streaming decode.
    ///
    /// # Errors
    /// Returns [`crate::CodecError::Bitstream`] only if the *stream header*
    /// is unusable — packet damage is reported per unit, never as an `Err`.
    pub fn new(stream: &'a PacketStream) -> Result<Self> {
        let mut hr = Reader::new(stream.header.clone());
        let hdr = Decoder::read_header_capped(&mut hr, Some(Decoder::MAX_FRAMES))?;
        let mb = hdr.standard.mb_size();
        let blocks_per_frame = (hdr.width / mb) * (hdr.height / mb);

        let mut totals = StreamTotals {
            anchor_bytes: stream.header.len(),
            ..StreamTotals::default()
        };
        let mut plans = Vec::with_capacity(stream.packets.len());
        let mut usable_anchors = Vec::new();
        let mut claimed = BTreeSet::new();
        let mut decoded_anchors = BTreeSet::new();
        for packet in &stream.packets {
            let plan = Self::scan_packet(
                packet,
                &hdr,
                mb,
                blocks_per_frame,
                &mut claimed,
                &mut decoded_anchors,
            );
            if plan.outcome.is_usable() {
                if packet.ftype.is_anchor() {
                    if let Some(d) = plan.display {
                        usable_anchors.push(d);
                    }
                    totals.anchor_bytes += packet.payload.len();
                    totals.anchors += 1;
                } else {
                    totals.b_bytes += packet.payload.len();
                    totals.b_frames += 1;
                }
            }
            plans.push(plan);
        }

        // Infer displays for frames whose headers were unreadable: the
        // display slots no surviving frame claimed, assigned in ascending
        // order to unknown frames in decode order. (Salvaged payloads always
        // carry their own display index — only fully lost frames land here.)
        let mut missing = (0..hdr.n_frames as u32)
            .filter(|d| !claimed.contains(d))
            .collect::<Vec<_>>();
        missing.reverse(); // pop() yields ascending order
        for plan in &mut plans {
            if plan.display.is_none() {
                plan.display = missing.pop();
            }
        }

        let anchor_recon = vec![None; hdr.n_frames];
        Ok(Self {
            stream,
            hdr,
            mb,
            pos: 0,
            plans,
            usable_anchors,
            anchor_recon,
            window: VecDeque::new(),
            peak_live: 0,
            totals,
        })
    }

    /// Display indices of every anchor that will decode usably, in decode
    /// order — known before the first unit is pulled, so a concealing
    /// consumer can establish its reference set up front.
    pub fn usable_anchor_displays(&self) -> &[u32] {
        &self.usable_anchors
    }

    /// Replays `decode_one_packet`'s claim/outcome ladder without touching
    /// pixels. Anchor payloads are only decoded when intact (original
    /// encoder bytes), so a structural walk with the same reads decides
    /// success exactly; B payloads are parsed outright and cached.
    fn scan_packet(
        packet: &crate::faults::FramePacket,
        hdr: &Header,
        mb: usize,
        blocks_per_frame: usize,
        claimed: &mut BTreeSet<u32>,
        decoded_anchors: &mut BTreeSet<u32>,
    ) -> UnitPlan {
        let lost = UnitPlan {
            display: None,
            outcome: DecodeOutcome::Lost,
            b_info: None,
        };
        if packet.lost {
            return lost;
        }
        let intact = packet.intact();
        let mut r = Reader::new(packet.payload.clone());

        // Frame header: type byte + display index. If it is unreadable or
        // contradicts the transport metadata, nothing in the payload can be
        // trusted.
        let Ok((ftype, display)) = Decoder::read_frame_header(&mut r, hdr.n_frames) else {
            return lost;
        };
        if ftype != packet.ftype || claimed.contains(&display) {
            return lost;
        }

        if ftype.is_anchor() {
            if !intact {
                // Damaged anchor pixels would silently poison NN-L and all
                // B-frames referencing them; treat the frame as lost.
                return UnitPlan {
                    display: Some(display),
                    outcome: DecodeOutcome::Lost,
                    b_info: None,
                };
            }
            match Decoder::scan_anchor(&mut r, hdr, mb, decoded_anchors) {
                Ok(substituted) => {
                    claimed.insert(display);
                    decoded_anchors.insert(display);
                    let outcome = if substituted {
                        DecodeOutcome::Concealed(ConcealReason::MissingReference)
                    } else {
                        DecodeOutcome::Ok
                    };
                    UnitPlan {
                        display: Some(display),
                        outcome,
                        b_info: None,
                    }
                }
                Err(_) => UnitPlan {
                    display: Some(display),
                    outcome: DecodeOutcome::Lost,
                    b_info: None,
                },
            }
        } else {
            let mut info = BFrameInfo {
                display_idx: display,
                mvs: Vec::new(),
                intra_blocks: Vec::new(),
            };
            let mut refs_used = BTreeSet::new();
            let parse = Decoder::read_b_frame_blocks(&mut r, hdr, mb, &mut info, &mut refs_used);
            let parsed_blocks = info.mvs.len() + info.intra_blocks.len();
            let outcome = match (intact, parse) {
                (true, Ok(())) => DecodeOutcome::Ok,
                (false, Ok(())) => DecodeOutcome::Concealed(ConcealReason::SuspectPayload),
                (_, Err(_)) if parsed_blocks > 0 => {
                    DecodeOutcome::Concealed(ConcealReason::PartialMvs {
                        parsed: parsed_blocks,
                        total: blocks_per_frame,
                    })
                }
                (_, Err(_)) => DecodeOutcome::Lost,
            };
            if outcome.is_usable() {
                claimed.insert(display);
                UnitPlan {
                    display: Some(display),
                    outcome,
                    b_info: Some(info),
                }
            } else {
                UnitPlan {
                    display: Some(display),
                    outcome,
                    b_info: None,
                }
            }
        }
    }

    /// Decodes the pixels of a pre-scanned usable anchor packet, updating
    /// the retention window. Falls back to a skipped unit if the payload
    /// does not decode (unreachable for a correct pre-scan — the scan walks
    /// the same bytes with the same error points).
    fn decode_anchor_unit(&mut self, i: usize) -> UnitPayload {
        let packet = &self.stream.packets[i];
        let mut r = Reader::new(packet.payload.clone());
        let Ok((_ftype, display)) = Decoder::read_frame_header(&mut r, self.hdr.n_frames) else {
            return UnitPayload::Skipped {
                display: self.plans[i].display,
            };
        };
        let mut substituted = false;
        match Decoder::read_anchor_resilient(
            &mut r,
            &self.hdr,
            self.mb,
            &self.anchor_recon,
            &mut substituted,
        ) {
            Ok(rec) => {
                self.anchor_recon[display as usize] = Some(rec.clone());
                self.window.push_back(display);
                if self.window.len() > REF_WINDOW {
                    if let Some(old) = self.window.pop_front() {
                        self.anchor_recon[old as usize] = None;
                    }
                }
                self.peak_live = self.peak_live.max(self.window.len() + 1);
                UnitPayload::Anchor {
                    display,
                    frame: rec,
                }
            }
            Err(_) => UnitPayload::Skipped {
                display: self.plans[i].display,
            },
        }
    }
}

impl FrameSource for ResilientFrameSource<'_> {
    fn info(&self) -> StreamInfo {
        StreamInfo {
            width: self.hdr.width,
            height: self.hdr.height,
            mb_size: self.mb,
            n_frames: self.hdr.n_frames,
        }
    }

    fn next_unit(&mut self) -> Option<Result<DecodedUnit>> {
        if self.pos >= self.stream.packets.len() {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        let packet = &self.stream.packets[i];
        let (decode_idx, ftype) = (packet.decode_idx, packet.ftype);
        let outcome = self.plans[i].outcome.clone();
        let payload = if let Some(info) = self.plans[i].b_info.take() {
            UnitPayload::Motion(info)
        } else if ftype.is_anchor() && outcome.is_usable() {
            self.decode_anchor_unit(i)
        } else {
            UnitPayload::Skipped {
                display: self.plans[i].display,
            }
        };
        Some(Ok(DecodedUnit {
            decode_idx,
            ftype,
            outcome,
            refs: Vec::new(),
            payload,
        }))
    }

    fn live_frames(&self) -> usize {
        self.window.len()
    }

    fn peak_live_frames(&self) -> usize {
        self.peak_live
    }

    fn totals(&self) -> StreamTotals {
        self.totals
    }
}

// Threading audit: the pipelined executor moves a frame source onto a
// decode-lane worker thread and ships `DecodedUnit`s through a stage
// channel. These assertions pin the `Send` guarantees that makes that
// safe — a non-`Send` field sneaking into a source or unit must fail to
// compile here, not deep inside `run_pipelined`'s thread scope.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StrictFrameSource>();
    assert_send::<ResilientFrameSource<'_>>();
    assert_send::<DecodedUnit>();
    assert_send::<Result<DecodedUnit>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BFrameMode, CodecConfig};
    use crate::encoder::Encoder;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn tiny_bitstream() -> Bytes {
        let frames = davis_sequence("cows", &SuiteConfig::tiny()).unwrap().frames;
        Encoder::new(CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        })
        .encode(&frames)
        .unwrap()
        .bitstream
    }

    #[test]
    fn strict_source_units_match_collected_stream() {
        let bs = tiny_bitstream();
        let rec = Decoder::new().decode_for_recognition(&bs).unwrap();
        let mut src = StrictFrameSource::new(&bs).unwrap();
        let mut anchors = 0usize;
        let mut bs_seen = 0usize;
        while let Some(unit) = src.next_unit() {
            let unit = unit.unwrap();
            assert_eq!(unit.outcome, DecodeOutcome::Ok);
            match unit.payload {
                UnitPayload::Anchor { display, frame } => {
                    assert_eq!(
                        (display, &frame),
                        (rec.anchors[anchors].0, &rec.anchors[anchors].1)
                    );
                    anchors += 1;
                }
                UnitPayload::Motion(info) => {
                    assert_eq!(info, rec.b_frames[bs_seen]);
                    bs_seen += 1;
                }
                UnitPayload::Skipped { .. } => panic!("strict source skipped a unit"),
            }
        }
        assert_eq!((anchors, bs_seen), (rec.anchors.len(), rec.b_frames.len()));
        let totals = src.totals();
        assert_eq!(totals.anchor_bytes, rec.anchor_bytes);
        assert_eq!(totals.b_bytes, rec.b_bytes);
    }

    #[test]
    fn strict_source_live_frames_are_bounded_by_window() {
        let bs = tiny_bitstream();
        let mut src = StrictFrameSource::new(&bs).unwrap();
        while let Some(unit) = src.next_unit() {
            unit.unwrap();
            assert!(src.live_frames() <= REF_WINDOW);
        }
        assert!(src.peak_live_frames() <= REF_WINDOW + 1);
    }

    #[test]
    fn resilient_source_pre_scan_matches_streamed_outcomes() {
        let bs = tiny_bitstream();
        let ps = crate::faults::packetize(&bs).unwrap();
        let (damaged, _) = crate::faults::inject(&ps, &crate::faults::FaultConfig::uniform(0.4, 5));
        let res = Decoder::new()
            .decode_recognition_resilient(&damaged)
            .unwrap();
        let mut src = ResilientFrameSource::new(&damaged).unwrap();
        let mut outcomes = Vec::new();
        while let Some(unit) = src.next_unit() {
            let unit = unit.unwrap();
            outcomes.push((unit.decode_idx, unit.ftype, unit.display(), unit.outcome));
        }
        let expected: Vec<_> = res
            .outcomes
            .iter()
            .map(|o| (o.decode_idx, o.ftype, o.display, o.outcome.clone()))
            .collect();
        assert_eq!(outcomes, expected);
    }
}
