//! Core codec vocabulary: frame types, motion-vector records and per-frame
//! metadata.
//!
//! [`MvRecord`] mirrors one entry of the paper's `mv_T` table (Fig. 8): the
//! destination macro-block coordinates in the current B-frame, one or two
//! reference frames with source coordinates, and the `bi-ref` flag implied by
//! the presence of the second reference.

/// H.26x frame classification (§II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrameType {
    /// Intra-coded frame: every macro-block predicted within the frame.
    I,
    /// Predicted frame: macro-blocks reference previously decoded anchors.
    P,
    /// Bi-directionally predicted frame: macro-blocks reference anchors both
    /// before and after it in display order.
    B,
}

impl FrameType {
    /// Whether this frame can serve as a reference for B-frames (I and P
    /// frames — "anchors" throughout this codebase).
    pub fn is_anchor(self) -> bool {
        matches!(self, FrameType::I | FrameType::P)
    }
}

impl std::fmt::Display for FrameType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameType::I => "I",
            FrameType::P => "P",
            FrameType::B => "B",
        };
        f.write_str(s)
    }
}

/// One motion-vector reference: which frame, and the source block position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefMv {
    /// Display index of the referenced (anchor) frame.
    pub frame: u32,
    /// Source x of the reference block's top-left corner, in pixels.
    pub src_x: i32,
    /// Source y of the reference block's top-left corner, in pixels.
    pub src_y: i32,
}

/// A motion-vector table entry for one macro-block of a B-frame (or P-frame),
/// equivalent to one `mv_T` row in the paper's agent unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MvRecord {
    /// Destination x of the block's top-left corner in the current frame.
    pub dst_x: u32,
    /// Destination y of the block's top-left corner in the current frame.
    pub dst_y: u32,
    /// First (always present) reference.
    pub ref0: RefMv,
    /// Second reference for bi-predicted blocks (the paper's `bi-ref` bit is
    /// `self.ref1.is_some()`).
    pub ref1: Option<RefMv>,
}

impl MvRecord {
    /// Whether the block is bi-predicted (references two anchor frames).
    pub fn is_bi_ref(&self) -> bool {
        self.ref1.is_some()
    }

    /// Motion magnitude of the first reference in pixels.
    pub fn magnitude(&self) -> f64 {
        let dx = (self.ref0.src_x - self.dst_x as i32) as f64;
        let dy = (self.ref0.src_y - self.dst_y as i32) as f64;
        (dx * dx + dy * dy).sqrt()
    }
}

/// How a macro-block was coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMode {
    /// Intra prediction with the given mode index.
    Intra(u8),
    /// Single-reference inter prediction.
    Inter,
    /// Bi-predicted inter prediction (B-frames only).
    Bi,
}

/// Decode-order metadata for one frame, as exposed by the decoder's
/// "high-level parameter parser" (the information the agent unit taps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    /// Frame type.
    pub ftype: FrameType,
    /// Position in display order.
    pub display_idx: u32,
    /// Position in decode order.
    pub decode_idx: u32,
    /// Display indices of the distinct anchor frames this frame references
    /// (empty for I-frames).
    pub refs: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_type_anchors() {
        assert!(FrameType::I.is_anchor());
        assert!(FrameType::P.is_anchor());
        assert!(!FrameType::B.is_anchor());
        assert_eq!(FrameType::B.to_string(), "B");
    }

    #[test]
    fn mv_record_bi_ref_and_magnitude() {
        let uni = MvRecord {
            dst_x: 16,
            dst_y: 8,
            ref0: RefMv {
                frame: 0,
                src_x: 13,
                src_y: 4,
            },
            ref1: None,
        };
        assert!(!uni.is_bi_ref());
        assert!((uni.magnitude() - 5.0).abs() < 1e-9);
        let bi = MvRecord {
            ref1: Some(RefMv {
                frame: 4,
                src_x: 20,
                src_y: 8,
            }),
            ..uni
        };
        assert!(bi.is_bi_ref());
    }
}
