//! Suite-level calibration checks for the auto GOP mode (Fig. 3 shapes).
use vrd_codec::{CodecConfig, Encoder};
use vrd_video::davis::{davis_val_suite, SuiteConfig};

#[test]
fn auto_b_ratio_matches_paper_shape() {
    let suite = davis_val_suite(&SuiteConfig::default());
    let enc = Encoder::new(CodecConfig::default());
    let mut ratios = Vec::new();
    let mut max_refs = 0usize;
    for seq in &suite {
        let ev = enc.encode(&seq.frames).unwrap();
        println!(
            "{:20} b_ratio={:.2} mean_refs={:.2} max_refs={} comp={:.1}",
            seq.name,
            ev.stats.b_ratio(),
            ev.stats.mean_refs_per_b(),
            ev.stats.max_refs_per_b(),
            ev.stats.compression_ratio()
        );
        ratios.push(ev.stats.b_ratio());
        max_refs = max_refs.max(ev.stats.max_refs_per_b());
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("mean b_ratio = {mean:.3}, max refs = {max_refs}");
    assert!(
        mean > 0.55 && mean < 0.75,
        "mean B ratio {mean:.2} off paper's ~0.65"
    );
    assert!(
        ratios.iter().cloned().fold(1.0, f64::min) < 0.55,
        "no slow/fast spread"
    );
}
