//! Fuzz-style decode robustness: no input, however mangled, may panic the
//! decoder.
//!
//! Three generators, >1k cases total: fully arbitrary byte soup, valid
//! streams with seeded mutations (bit flips, truncation, byte splices), and
//! packetized streams run through the fault injector into the resilient
//! decode path. Every entry point (`decode`, `decode_for_recognition`,
//! `inspect`, `decode_recognition_resilient`) must return `Ok` or `Err` —
//! never panic, never hang on absurd declared sizes.

use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::OnceLock;
use vrd_codec::{packetize, CodecConfig, Decoder, Encoder, FaultConfig, FaultKind};
use vrd_video::davis::{davis_sequence, SuiteConfig};

/// A valid encoded stream, built once (encoding dominates the case cost).
fn valid_stream() -> &'static Bytes {
    static STREAM: OnceLock<Bytes> = OnceLock::new();
    STREAM.get_or_init(|| {
        let seq = davis_sequence("dog", &SuiteConfig::tiny()).expect("tiny suite generates");
        Encoder::new(CodecConfig::default())
            .encode(&seq.frames)
            .expect("tiny sequence encodes")
            .bitstream
    })
}

/// Exercises every strict entry point; only panics are failures.
fn decode_all_entry_points(bytes: &Bytes) {
    let dec = Decoder::new();
    let _ = dec.decode(bytes);
    let _ = dec.decode_for_recognition(bytes);
    let _ = dec.inspect(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.random_range(0u16..256) as u8;
        }
        // Half the cases keep the magic/version prefix so parsing reaches
        // the header and frame payloads instead of bailing at byte 0.
        if seed % 2 == 0 && bytes.len() >= 5 {
            bytes[..5].copy_from_slice(&[b'V', b'R', b'D', b'C', 1]);
        }
        decode_all_entry_points(&Bytes::from(bytes));
    }

    #[test]
    fn mutated_valid_streams_never_panic(seed in 0u64..u64::MAX) {
        let mut bytes = valid_stream().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mutations = rng.random_range(1usize..4);
        for _ in 0..mutations {
            match rng.random_range(0u8..3) {
                0 => {
                    // Single bit flip anywhere in the stream.
                    let pos = rng.random_range(0usize..bytes.len());
                    bytes[pos] ^= 1 << rng.random_range(0u8..8);
                }
                1 => {
                    // Truncate to an arbitrary prefix.
                    let keep = rng.random_range(0usize..bytes.len() + 1);
                    bytes.truncate(keep);
                    if bytes.is_empty() {
                        break;
                    }
                }
                _ => {
                    // Overwrite a short run with arbitrary bytes (corrupts
                    // varint boundaries and residual runs).
                    let pos = rng.random_range(0usize..bytes.len());
                    let run = rng.random_range(1usize..9).min(bytes.len() - pos);
                    for b in &mut bytes[pos..pos + run] {
                        *b = rng.random_range(0u16..256) as u8;
                    }
                }
            }
        }
        decode_all_entry_points(&Bytes::from(bytes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn injected_faults_never_panic_resilient_decode(seed in 0u64..u64::MAX, rate in 0.0f64..0.9) {
        let ps = packetize(valid_stream()).expect("valid stream packetizes");
        let cfg = FaultConfig {
            seed,
            rate,
            kinds: vec![
                FaultKind::BitFlip,
                FaultKind::Truncate,
                FaultKind::DropBMvs,
                FaultKind::DropFrame,
            ],
            b_frames_only: seed % 3 == 0,
            protect_first_i: seed % 2 == 0,
        };
        let (damaged, _log) = vrd_codec::inject(&ps, &cfg);
        let dec = Decoder::new();
        let res = dec.decode_recognition_resilient(&damaged);
        // The transport header survives injection, so resilient decode
        // always produces per-frame outcomes rather than failing outright.
        prop_assert!(res.is_ok(), "resilient decode errored: {:?}", res.err());
        let stream = res.expect("checked above");
        let (ok, concealed, lost) = stream.outcome_counts();
        prop_assert_eq!(ok + concealed + lost, stream.n_frames);
        // The damaged transport also reassembles into bytes the strict
        // decoder must survive (it may and usually will error).
        decode_all_entry_points(&damaged.reassemble());
    }

    #[test]
    fn resilient_source_and_batch_decode_agree_on_faulted_streams(
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.9,
    ) {
        use vrd_codec::{DecodedUnit, FrameSource, ResilientFrameSource, UnitPayload};

        let ps = packetize(valid_stream()).expect("valid stream packetizes");
        let cfg = FaultConfig {
            seed,
            rate,
            kinds: vec![
                FaultKind::BitFlip,
                FaultKind::Truncate,
                FaultKind::DropBMvs,
                FaultKind::DropFrame,
            ],
            b_frames_only: seed % 3 == 0,
            protect_first_i: seed % 2 == 0,
        };
        let (damaged, _log) = vrd_codec::inject(&ps, &cfg);

        // Pull the streaming source by hand and collect its per-unit view.
        let mut src = ResilientFrameSource::new(&damaged)
            .expect("transport header survives injection");
        let mut pulled: Vec<DecodedUnit> = Vec::new();
        while let Some(unit) = src.next_unit() {
            pulled.push(unit.expect("resilient sources never error per unit"));
        }

        // The batch façade over the same damaged stream must tell the same
        // story frame-by-frame: outcome kind, frame type and display slot.
        let batch = Decoder::new()
            .decode_recognition_resilient(&damaged)
            .expect("transport header survives injection");
        prop_assert_eq!(pulled.len(), batch.outcomes.len());
        let mut anchors = 0usize;
        let mut b_frames = 0usize;
        for (unit, rec) in pulled.iter().zip(&batch.outcomes) {
            prop_assert_eq!(unit.decode_idx, rec.decode_idx);
            prop_assert_eq!(unit.ftype, rec.ftype);
            prop_assert_eq!(unit.display(), rec.display);
            prop_assert_eq!(&unit.outcome, &rec.outcome);
            match &unit.payload {
                UnitPayload::Anchor { display, .. } => {
                    prop_assert_eq!(Some(batch.anchors[anchors].0), Some(*display));
                    anchors += 1;
                }
                UnitPayload::Motion(info) => {
                    prop_assert_eq!(batch.b_frames[b_frames].display_idx, info.display_idx);
                    b_frames += 1;
                }
                UnitPayload::Skipped { .. } => {}
            }
        }
        prop_assert_eq!(anchors, batch.anchors.len());
        prop_assert_eq!(b_frames, batch.b_frames.len());
    }
}
