//! Property-based invariants of the GOP planner.

use proptest::prelude::*;
use vrd_codec::{BFrameMode, CodecConfig, FrameType, GopPlan};

proptest! {
    #[test]
    fn plan_invariants_hold_for_any_shape(
        n_frames in 1usize..200,
        b_run in 0u8..8,
        gop_len in 2usize..30,
    ) {
        let cfg = CodecConfig {
            gop_len,
            b_frames: BFrameMode::Fixed(b_run.min(gop_len as u8 - 1)),
            ..CodecConfig::default()
        };
        let plan = GopPlan::plan(&cfg, n_frames, &[]).unwrap();

        // Shape.
        prop_assert_eq!(plan.types.len(), n_frames);
        prop_assert_eq!(plan.decode_order.len(), n_frames);
        prop_assert_eq!(plan.types[0], FrameType::I);

        // Decode order is a permutation.
        let mut seen = vec![false; n_frames];
        for &d in &plan.decode_order {
            prop_assert!(!seen[d as usize], "frame {d} decoded twice");
            seen[d as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));

        // Anchors are sorted, unique, and the last frame is an anchor when
        // more than one frame exists.
        prop_assert!(plan.anchors.windows(2).all(|w| w[0] < w[1]));
        if n_frames > 1 {
            prop_assert_eq!(
                *plan.anchors.last().unwrap() as usize,
                n_frames - 1,
                "sequence must end on an anchor"
            );
        }

        // Every B-frame decodes after both bracketing anchors, and its B-run
        // never exceeds the requested length.
        let pos: Vec<usize> = {
            let mut p = vec![0; n_frames];
            for (i, &d) in plan.decode_order.iter().enumerate() {
                p[d as usize] = i;
            }
            p
        };
        for (d, t) in plan.types.iter().enumerate() {
            if *t == FrameType::B {
                let (a, b) = plan.bracketing_anchors(d as u32);
                prop_assert!(pos[d] > pos[a as usize]);
                prop_assert!(pos[d] > pos[b as usize]);
                prop_assert!((b - a - 1) as usize <= b_run.min(gop_len as u8 - 1) as usize);
            }
        }

        // GOP boundaries are I-frames.
        for &a in &plan.anchors {
            if (a as usize).is_multiple_of(gop_len) {
                prop_assert_eq!(plan.types[a as usize], FrameType::I);
            }
        }

        // candidate_refs: distinct anchors, bracketing pair first, bounded.
        for (d, t) in plan.types.iter().enumerate() {
            if *t == FrameType::B {
                let refs = plan.candidate_refs(d as u32, 5);
                prop_assert!(refs.len() <= 5);
                let mut sorted = refs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), refs.len(), "duplicate candidates");
                for r in &refs {
                    prop_assert!(plan.anchors.contains(r));
                }
            }
        }
    }
}
