//! Rate-distortion behaviour: the quantiser trades size for fidelity
//! monotonically, and both standards stay usable.

use vrd_codec::{CodecConfig, Decoder, Encoder, Standard};
use vrd_video::davis::{davis_sequence, SuiteConfig};
use vrd_video::Frame;

fn psnr(a: &Frame, b: &Frame) -> f64 {
    let mse: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.as_slice().len() as f64;
    if mse == 0.0 {
        99.0
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[test]
fn larger_quantiser_shrinks_stream_and_lowers_psnr() {
    let seq = davis_sequence("dog", &SuiteConfig::tiny()).unwrap();
    let mut sizes = Vec::new();
    let mut quality = Vec::new();
    for quant in [2u8, 8, 24] {
        let cfg = CodecConfig {
            quant,
            ..CodecConfig::default()
        };
        let encoded = Encoder::new(cfg).encode(&seq.frames).unwrap();
        let decoded = Decoder::new().decode(&encoded.bitstream).unwrap();
        let mean_psnr: f64 = seq
            .frames
            .iter()
            .zip(&decoded.frames)
            .map(|(a, b)| psnr(a, b))
            .sum::<f64>()
            / seq.len() as f64;
        sizes.push(encoded.bitstream.len());
        quality.push(mean_psnr);
    }
    assert!(
        sizes[0] > sizes[1] && sizes[1] > sizes[2],
        "sizes {sizes:?}"
    );
    assert!(
        quality[0] > quality[1] && quality[1] > quality[2],
        "psnr {quality:?}"
    );
    assert!(
        quality[0] > 40.0,
        "q=2 should be near-lossless: {quality:?}"
    );
    assert!(quality[2] > 22.0, "q=24 should stay watchable: {quality:?}");
}

#[test]
fn both_standards_compress_and_roundtrip() {
    let seq = davis_sequence("camel", &SuiteConfig::tiny()).unwrap();
    for standard in [Standard::H264, Standard::H265] {
        let cfg = CodecConfig {
            standard,
            ..CodecConfig::default()
        };
        let encoded = Encoder::new(cfg).encode(&seq.frames).unwrap();
        assert!(
            encoded.stats.compression_ratio() > 1.5,
            "{standard}: ratio {:.2}",
            encoded.stats.compression_ratio()
        );
        let decoded = Decoder::new().decode(&encoded.bitstream).unwrap();
        let p = psnr(&seq.frames[3], &decoded.frames[3]);
        assert!(p > 30.0, "{standard}: psnr {p:.1}");
    }
}
