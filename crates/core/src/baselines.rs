//! The comparison schemes of the paper's evaluation: OSVOS, FAVOS, DFF
//! (segmentation) and SELSA, Euphrates (detection).
//!
//! Each baseline produces the same artefacts as the VR-DANN pipeline —
//! per-frame masks or detections plus a [`SchemeTrace`] — so accuracy and
//! simulated performance/energy are compared on identical footing.

use crate::engine::run_display_order;
use crate::error::Result;
use crate::trace::{ComputeKind, ConcealmentStats, SchemeKind};
use vrd_codec::EncodedVideo;
use vrd_flow::{estimate, FlowConfig};
use vrd_nn::{LargeNet, LargeNetProfile, FLOWNET_OPS_PER_PIXEL};
use vrd_video::texture::hash2;
use vrd_video::{Detection, Rect, SegMask, Sequence};

use crate::vrdann::{DetectionRun, SegmentationRun};

/// Key-frame interval used by DFF (the fixed, arbitrarily selected interval
/// the paper criticises).
pub const DFF_KEY_INTERVAL: usize = 10;

/// A per-frame large-network scheme (shared skeleton of OSVOS / FAVOS),
/// expressed as a display-order engine configuration.
fn run_per_frame_nnl(
    seq: &Sequence,
    encoded: &EncodedVideo,
    scheme: SchemeKind,
    profile: LargeNetProfile,
    seed: u64,
) -> SegmentationRun {
    let nnl = LargeNet::new(profile);
    let (w, h) = (seq.width(), seq.height());
    let (masks, trace) = run_display_order(seq, encoded, scheme, |d, _prev: &[SegMask]| {
        (
            nnl.segment(&seq.gt_masks[d], hash2(d as i64, 10, seed)),
            ComputeKind::NnL { ops: nnl.ops(w, h) },
        )
    });
    SegmentationRun {
        masks,
        trace,
        concealment: ConcealmentStats::default(),
        peak_live_frames: seq.len(),
        peak_live_features: 0,
        peak_inflight_units: 0,
    }
}

/// OSVOS: two large networks (foreground + contour) on every decoded frame.
pub fn run_osvos(seq: &Sequence, encoded: &EncodedVideo, seed: u64) -> SegmentationRun {
    run_per_frame_nnl(
        seq,
        encoded,
        SchemeKind::Osvos,
        LargeNetProfile::osvos(),
        seed,
    )
}

/// FAVOS: part tracking + ROI-SegNet on every decoded frame. The accuracy
/// reference of Fig. 9/10 and the normalisation baseline of Figs. 12–13.
pub fn run_favos(seq: &Sequence, encoded: &EncodedVideo, seed: u64) -> SegmentationRun {
    run_per_frame_nnl(
        seq,
        encoded,
        SchemeKind::Favos,
        LargeNetProfile::favos(),
        seed,
    )
}

/// DFF: the large network on every `DFF_KEY_INTERVAL`-th frame; other frames
/// get FlowNet optical flow plus warping of the key frame's result.
pub fn run_dff(
    seq: &Sequence,
    encoded: &EncodedVideo,
    key_interval: usize,
    seed: u64,
) -> SegmentationRun {
    assert!(key_interval >= 1, "key interval must be at least 1");
    let nnl = LargeNet::new(LargeNetProfile::dff_key());
    let (w, h) = (seq.width(), seq.height());
    let flow_cfg = FlowConfig::default();
    let flow_ops = (FLOWNET_OPS_PER_PIXEL * (w * h) as f64) as u64;

    let (masks, trace) = run_display_order(seq, encoded, SchemeKind::Dff, |d, prev| {
        if d % key_interval == 0 {
            (
                nnl.segment(&seq.gt_masks[d], hash2(d as i64, 11, seed)),
                ComputeKind::NnL { ops: nnl.ops(w, h) },
            )
        } else {
            // Sequential propagation: warp the previous frame's mask along
            // the consecutive-frame flow (small displacements match well;
            // errors accumulate with distance from the key frame, which is
            // DFF's characteristic failure mode).
            let flow = estimate(&seq.frames[d], &seq.frames[d - 1], &flow_cfg);
            (
                flow.warp_mask(&prev[d - 1]),
                ComputeKind::FlowWarp { ops: flow_ops },
            )
        }
    });
    SegmentationRun {
        masks,
        trace,
        concealment: ConcealmentStats::default(),
        peak_live_frames: seq.len(),
        peak_live_features: 0,
        peak_inflight_units: 0,
    }
}

/// SELSA: sequence-level feature aggregation — a strong per-frame detector
/// (the detection accuracy reference of Fig. 11).
pub fn run_selsa(seq: &Sequence, encoded: &EncodedVideo, seed: u64) -> DetectionRun {
    let nnl = LargeNet::new(LargeNetProfile::selsa());
    let (w, h) = (seq.width(), seq.height());
    let (detections, trace) = run_display_order(
        seq,
        encoded,
        SchemeKind::Selsa,
        |d, _prev: &[Vec<Detection>]| {
            (
                nnl.detect(&seq.gt_boxes[d], w, h, hash2(d as i64, 12, seed)),
                ComputeKind::NnL { ops: nnl.ops(w, h) },
            )
        },
    );
    DetectionRun {
        detections,
        trace,
        concealment: ConcealmentStats::default(),
        peak_live_frames: seq.len(),
        peak_inflight_units: 0,
    }
}

/// Euphrates: the large detector on every `key_interval`-th frame; on the
/// rest, each rectangle is translated by the average motion vector inside
/// it (the paper's `Euphrates-2` / `Euphrates-4` are intervals 2 and 4).
///
/// The motion comes from dense block matching between consecutive frames —
/// the stand-in for the ISP-generated motion vectors Euphrates taps.
pub fn run_euphrates(
    seq: &Sequence,
    encoded: &EncodedVideo,
    key_interval: usize,
    seed: u64,
) -> DetectionRun {
    assert!(key_interval >= 1, "key interval must be at least 1");
    let nnl = LargeNet::new(LargeNetProfile::selsa());
    let (w, h) = (seq.width(), seq.height());
    let flow_cfg = FlowConfig::default();

    let (detections, trace) = run_display_order(seq, encoded, SchemeKind::Euphrates, |d, prev| {
        if d % key_interval == 0 {
            (
                nnl.detect(&seq.gt_boxes[d], w, h, hash2(d as i64, 13, seed)),
                ComputeKind::NnL { ops: nnl.ops(w, h) },
            )
        } else {
            // Shift the previous frame's boxes by their mean motion.
            let flow = estimate(&seq.frames[d], &seq.frames[d - 1], &flow_cfg);
            let moved = prev[d - 1]
                .iter()
                .map(|det| {
                    let r = det.rect.clamped(w, h);
                    let (mut sx, mut sy, mut n) = (0.0f32, 0.0f32, 0u32);
                    for y in (r.y0..r.y1).step_by(4) {
                        for x in (r.x0..r.x1).step_by(4) {
                            let (dx, dy) = flow.get(x as usize, y as usize);
                            sx += dx;
                            sy += dy;
                            n += 1;
                        }
                    }
                    // Backward flow points current -> previous, so the box
                    // moves against it.
                    let (mx, my) = if n > 0 {
                        (-(sx / n as f32), -(sy / n as f32))
                    } else {
                        (0.0, 0.0)
                    };
                    Detection::new(
                        det.rect.shifted(mx.round() as i32, my.round() as i32),
                        (det.score * 0.97).max(0.05),
                    )
                })
                .filter(|det| {
                    !det.rect
                        .intersect(&Rect::new(0, 0, w as i32, h as i32))
                        .is_empty()
                })
                .collect();
            (moved, ComputeKind::BoxShift)
        }
    });
    DetectionRun {
        detections,
        trace,
        concealment: ConcealmentStats::default(),
        peak_live_frames: seq.len(),
        peak_inflight_units: 0,
    }
}

/// Convenience: encode a sequence with the default codec settings (shared by
/// experiments that compare several schemes on one bitstream).
///
/// # Errors
/// Propagates encoder failures.
pub fn encode_default(seq: &Sequence) -> Result<EncodedVideo> {
    Ok(vrd_codec::Encoder::new(vrd_codec::CodecConfig::default()).encode(&seq.frames)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_metrics::{average_precision, score_sequence, FrameDetections};
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    fn setup(name: &str) -> (Sequence, EncodedVideo) {
        let seq = davis_sequence(name, &SuiteConfig::tiny()).unwrap();
        let encoded = encode_default(&seq).unwrap();
        (seq, encoded)
    }

    #[test]
    fn favos_beats_osvos_in_accuracy() {
        let (seq, encoded) = setup("cows");
        let favos = run_favos(&seq, &encoded, 1);
        let osvos = run_osvos(&seq, &encoded, 1);
        let sf = score_sequence(&favos.masks, &seq.gt_masks);
        let so = score_sequence(&osvos.masks, &seq.gt_masks);
        assert!(
            sf.iou > so.iou,
            "favos {:.3} <= osvos {:.3}",
            sf.iou,
            so.iou
        );
        // OSVOS costs twice the ops.
        assert!(osvos.trace.total_ops() > favos.trace.total_ops());
    }

    #[test]
    fn dff_cuts_ops_but_drifts() {
        let (seq, encoded) = setup("drift-straight");
        let favos = run_favos(&seq, &encoded, 1);
        let dff = run_dff(&seq, &encoded, DFF_KEY_INTERVAL, 1);
        // FlowNet costs the same order as the backbone, so DFF saves work
        // but far from proportionally to its key interval (the paper's
        // observation that DFF is only modestly faster than FAVOS).
        assert!(dff.trace.total_ops() < favos.trace.total_ops());
        assert!(dff.trace.total_ops() > favos.trace.total_ops() / 2);
        let sf = score_sequence(&favos.masks, &seq.gt_masks);
        let sd = score_sequence(&dff.masks, &seq.gt_masks);
        assert!(
            sd.iou < sf.iou,
            "dff {:.3} should trail favos {:.3} on fast content",
            sd.iou,
            sf.iou
        );
        // But DFF still has to track the object far better than nothing.
        assert!(sd.iou > 0.3, "dff collapsed: {:.3}", sd.iou);
    }

    #[test]
    fn selsa_detects_accurately() {
        let (seq, encoded) = setup("camel");
        let run = run_selsa(&seq, &encoded, 1);
        let frames: Vec<FrameDetections> = run
            .detections
            .iter()
            .zip(&seq.gt_boxes)
            .map(|(dets, gts)| FrameDetections {
                detections: dets.clone(),
                ground_truth: gts.clone(),
            })
            .collect();
        let ap = average_precision(&frames);
        assert!(ap > 0.75, "SELSA AP too low: {ap:.3}");
    }

    #[test]
    fn euphrates_interval_trades_accuracy_for_ops() {
        let (seq, encoded) = setup("dog");
        let e2 = run_euphrates(&seq, &encoded, 2, 1);
        let e4 = run_euphrates(&seq, &encoded, 4, 1);
        assert!(e4.trace.total_ops() < e2.trace.total_ops());
        let ap = |run: &DetectionRun| {
            let frames: Vec<FrameDetections> = run
                .detections
                .iter()
                .zip(&seq.gt_boxes)
                .map(|(dets, gts)| FrameDetections {
                    detections: dets.clone(),
                    ground_truth: gts.clone(),
                })
                .collect();
            average_precision(&frames)
        };
        let (a2, a4) = (ap(&e2), ap(&e4));
        assert!(
            a2 >= a4 - 0.02,
            "interval 2 ({a2:.3}) should be at least as accurate as 4 ({a4:.3})"
        );
        assert!(a2 > 0.5, "Euphrates-2 collapsed: {a2:.3}");
    }

    #[test]
    fn traces_cover_every_frame() {
        let (seq, encoded) = setup("libby");
        for trace in [
            run_favos(&seq, &encoded, 1).trace,
            run_dff(&seq, &encoded, DFF_KEY_INTERVAL, 1).trace,
            run_euphrates(&seq, &encoded, 2, 1).trace,
        ] {
            assert_eq!(trace.frames.len(), seq.len());
            // Baselines decode everything.
            assert_eq!(trace.decoded_frames(), seq.len());
        }
    }
}
