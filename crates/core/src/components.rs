//! Connected-component extraction: masks → detection boxes.
//!
//! The VR-DANN detection pipeline (§III-B) treats "a rectangle box and the
//! data inside as an object", reconstructs/refines it as a mask, and reads
//! the resulting boxes back out. This module does the read-out: 4-connected
//! component labelling with a minimum-size filter, each component scored by
//! its fill ratio.

use vrd_video::{Detection, Rect, SegMask};

/// Extracts scored bounding boxes of the 4-connected foreground components
/// of `mask`, dropping components smaller than `min_pixels`.
///
/// The score is the component's fill ratio of its bounding box (a compact
/// reconstructed object scores high; scattered noise scores low), which
/// gives the mAP metric a meaningful ranking signal.
pub fn extract_components(mask: &SegMask, min_pixels: usize) -> Vec<Detection> {
    let (w, h) = (mask.width(), mask.height());
    let mut visited = vec![false; w * h];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            if mask.get(sx, sy) == 0 || visited[sy * w + sx] {
                continue;
            }
            // Flood-fill this component.
            let mut count = 0usize;
            let mut bbox = Rect::new(sx as i32, sy as i32, sx as i32 + 1, sy as i32 + 1);
            stack.push((sx, sy));
            visited[sy * w + sx] = true;
            while let Some((x, y)) = stack.pop() {
                count += 1;
                bbox = bbox.union(&Rect::new(x as i32, y as i32, x as i32 + 1, y as i32 + 1));
                let mut visit = |nx: i64, ny: i64, stack: &mut Vec<(usize, usize)>| {
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        let (nx, ny) = (nx as usize, ny as usize);
                        if mask.get(nx, ny) == 1 && !visited[ny * w + nx] {
                            visited[ny * w + nx] = true;
                            stack.push((nx, ny));
                        }
                    }
                };
                visit(x as i64 + 1, y as i64, &mut stack);
                visit(x as i64 - 1, y as i64, &mut stack);
                visit(x as i64, y as i64 + 1, &mut stack);
                visit(x as i64, y as i64 - 1, &mut stack);
            }
            if count >= min_pixels {
                let fill = count as f32 / bbox.area().max(1) as f32;
                out.push(Detection::new(bbox, fill.clamp(0.05, 1.0)));
            }
        }
    }
    // Highest-confidence first, deterministic order.
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("fill ratios are finite")
            .then_with(|| (a.rect.x0, a.rect.y0).cmp(&(b.rect.x0, b.rect.y0)))
    });
    out
}

/// Rasterises detection boxes into a mask (the inverse direction, used to
/// seed the detection pipeline's reconstruction).
pub fn boxes_to_mask(boxes: &[Rect], width: usize, height: usize) -> SegMask {
    let mut m = SegMask::new(width, height);
    for b in boxes {
        m.fill_rect(*b);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_separate_components() {
        let mut m = SegMask::new(32, 16);
        m.fill_rect(Rect::new(2, 2, 8, 8));
        m.fill_rect(Rect::new(20, 4, 30, 12));
        let dets = extract_components(&m, 4);
        assert_eq!(dets.len(), 2);
        let rects: Vec<Rect> = dets.iter().map(|d| d.rect).collect();
        assert!(rects.contains(&Rect::new(2, 2, 8, 8)));
        assert!(rects.contains(&Rect::new(20, 4, 30, 12)));
        // Solid rectangles fill their boxes completely.
        assert!(dets.iter().all(|d| d.score > 0.99));
    }

    #[test]
    fn min_size_filters_noise() {
        let mut m = SegMask::new(16, 16);
        m.fill_rect(Rect::new(0, 0, 8, 8));
        m.set(15, 15, 1); // speckle
        let dets = extract_components(&m, 4);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].rect, Rect::new(0, 0, 8, 8));
    }

    #[test]
    fn diagonal_pixels_are_separate_components() {
        let mut m = SegMask::new(4, 4);
        m.set(0, 0, 1);
        m.set(1, 1, 1);
        let dets = extract_components(&m, 1);
        assert_eq!(dets.len(), 2, "4-connectivity must not join diagonals");
    }

    #[test]
    fn sparse_component_scores_low() {
        let mut m = SegMask::new(16, 16);
        // An L-shaped sparse component.
        for i in 0..10 {
            m.set(i, 0, 1);
        }
        for i in 1..10 {
            m.set(0, i, 1);
        }
        let dets = extract_components(&m, 4);
        assert_eq!(dets.len(), 1);
        assert!(dets[0].score < 0.3, "score {}", dets[0].score);
    }

    #[test]
    fn boxes_roundtrip_through_mask() {
        let boxes = vec![Rect::new(1, 1, 6, 5), Rect::new(10, 8, 14, 12)];
        let m = boxes_to_mask(&boxes, 16, 16);
        let dets = extract_components(&m, 1);
        let rects: Vec<Rect> = dets.iter().map(|d| d.rect).collect();
        assert_eq!(rects.len(), 2);
        assert!(rects.contains(&boxes[0]));
        assert!(rects.contains(&boxes[1]));
    }

    #[test]
    fn empty_mask_yields_nothing() {
        assert!(extract_components(&SegMask::new(8, 8), 1).is_empty());
    }
}
