//! The staged streaming pipeline engine: one generic decode → reconstruct →
//! refine execution path from the decoder to the NPU.
//!
//! VR-DANN's premise (§IV) is that the decoder and the NPU operate
//! *concurrently on a stream*. The engine realises that shape in software:
//! it pulls [`DecodedUnit`]s from a [`FrameSource`] one at a time, runs the
//! per-unit stage ladder, and retains only an O(GOP)-sized window of
//! reference segmentations plus whatever the source keeps in its own pixel
//! window — never the whole video.
//!
//! The engine is generic over two axes, so the four former monolithic
//! pipelines (`run_{segmentation,detection}[_resilient]`) are each one
//! configuration of the same code:
//!
//! | axis | trait | implementations |
//! |------|-------|-----------------|
//! | task | [`TaskPolicy`] | [`SegTask`] (masks), [`DetTask`] (boxes) |
//! | fault handling | [`FaultPolicy`] | [`StrictPolicy`] (fail fast), [`ConcealingPolicy`] (degrade) |
//!
//! The per-unit ladder, in order:
//!
//! 1. **anchor** → NN-L inference (lazy, as the unit arrives) and insertion
//!    into the reference window — or, concealing, a substitution count for
//!    anchors decoded from replacement references;
//! 2. **lost anchor** (concealing) → mark a pending NN-L re-inference;
//! 3. **B-frame payload** → pending re-inference, then the §VI-A adaptive
//!    fallback, then reconstruction from motion vectors and NN-S refinement
//!    (with the fault lottery and payload sanitisation when concealing);
//! 4. **lost B-frame** (concealing) → copy the nearest reference's result.
//!
//! A windowed strict run is byte-identical to the retired eager pipeline:
//! every nearest/adjacent reference lookup a B-frame performs resolves
//! within its surrounding anchors, which are always still in the window
//! (anything older is strictly farther in display distance, and future
//! anchors are strictly farther than the next one — so neither pruning the
//! past nor not-yet-knowing the future can change an argmin).

use crate::components::{boxes_to_mask, extract_components};
use crate::error::{Result, VrDannError};
use crate::recon::{plane_to_mask, reconstruct_b_frame};
use crate::sandwich::{build_reconstruction_only, build_sandwich};
use crate::trace::{ComputeKind, ConcealmentStats, SchemeKind, SchemeTrace, TraceFrame};
use crate::vrdann::{ResilienceOptions, VrDannConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::{
    ConcealReason, DecodeOutcome, DecodedUnit, EncodedVideo, FrameSource, FrameType, StreamInfo,
    UnitPayload,
};
use vrd_nn::{ComputeMode, LargeNet, NnS, QuantNnS};
use vrd_video::texture::hash2;
use vrd_video::{Detection, SegMask, Sequence};

/// Reference segmentations the strict engine retains. Must cover every
/// anchor a B-frame can name (the encoder's search interval is ≤ 9
/// anchors back) plus the adjacent sandwich anchors — 10 is the codec's
/// own pixel retention window, matched here for the mask window.
const MASK_WINDOW: usize = 10;

/// How a trace frame's `bitstream_bytes` is filled once the stream totals
/// are final: the per-anchor average, the per-B average, or zero (lost
/// frames parse nothing).
#[derive(Debug, Clone, Copy)]
enum ByteClass {
    AnchorAvg,
    BAvg,
    Zero,
}

/// 90th-percentile motion-vector magnitude of a B-frame's records (0 when
/// empty). The percentile, not the mean, captures "how fast is the moving
/// object" — most blocks of a frame are static background with zero motion.
fn p90_mv_magnitude(mvs: &[vrd_codec::MvRecord]) -> f64 {
    if mvs.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f64> = mvs.iter().map(|m| m.magnitude()).collect();
    mags.sort_unstable_by(f64::total_cmp);
    mags[(mags.len() * 9 / 10).min(mags.len() - 1)]
}

/// Rewrites a (possibly salvaged) B-frame payload against the references
/// that actually decoded: MV records pointing at anchors with no
/// segmentation, and blocks the payload never covered at all, are demoted to
/// intra blocks so reconstruction falls back to the co-located block of the
/// nearest reference — the classic error-concealment fill. On a clean frame
/// with every reference present this is the identity.
fn sanitize_b_info(
    info: &BFrameInfo,
    ref_segs: &BTreeMap<u32, SegMask>,
    width: usize,
    height: usize,
    mb: usize,
) -> BFrameInfo {
    let cols = width / mb;
    let rows = height / mb;
    let mut covered = vec![false; cols * rows];
    let mark = |covered: &mut Vec<bool>, x: u32, y: u32| {
        let idx = (y as usize / mb) * cols + x as usize / mb;
        if let Some(c) = covered.get_mut(idx) {
            *c = true;
        }
    };
    let mut out = BFrameInfo {
        display_idx: info.display_idx,
        mvs: Vec::with_capacity(info.mvs.len()),
        intra_blocks: info.intra_blocks.clone(),
    };
    for &(bx, by) in &info.intra_blocks {
        mark(&mut covered, bx, by);
    }
    for mv in &info.mvs {
        mark(&mut covered, mv.dst_x, mv.dst_y);
        let refs_present = ref_segs.contains_key(&mv.ref0.frame)
            && mv.ref1.is_none_or(|r| ref_segs.contains_key(&r.frame));
        if refs_present {
            out.mvs.push(*mv);
        } else {
            out.intra_blocks.push((mv.dst_x, mv.dst_y));
        }
    }
    for by in 0..rows {
        for bx in 0..cols {
            if !covered[by * cols + bx] {
                out.intra_blocks.push(((bx * mb) as u32, (by * mb) as u32));
            }
        }
    }
    out
}

/// The segmentation of the display-nearest entry of `refs` (empty mask when
/// there is nothing to copy from — a stream with every anchor lost).
fn nearest_mask(refs: &BTreeMap<u32, SegMask>, display: u32, w: usize, h: usize) -> SegMask {
    refs.iter()
        .min_by_key(|(d, _)| d.abs_diff(display))
        .map(|(_, m)| m.clone())
        .unwrap_or_else(|| SegMask::new(w, h))
}

/// The detections of the display-nearest entry of `dets` (empty when none).
fn nearest_dets(dets: &BTreeMap<u32, Vec<Detection>>, display: u32) -> Vec<Detection> {
    dets.iter()
        .min_by_key(|(d, _)| d.abs_diff(display))
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

/// What the engine produces: per-frame outputs in display order, the
/// workload trace in decode order, concealment counters, and the source's
/// live-pixel high-water mark (the bounded-memory accounting hook).
#[derive(Debug, Clone)]
pub struct EngineRun<O> {
    /// Per-frame task outputs, display order.
    pub outputs: Vec<O>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
    /// What the run had to conceal (all zero under [`StrictPolicy`]).
    pub concealment: ConcealmentStats,
    /// Peak number of reconstructed pixel frames the source held alive.
    pub peak_live_frames: usize,
    /// Peak number of cached backbone feature maps the task held alive
    /// (0 unless the task propagates in feature space).
    pub peak_live_features: usize,
    /// Peak number of decoded units buffered between the decode and
    /// compute lanes (always 0 for the sequential driver; bounded by the
    /// stage channel's capacity under [`PipelineEngine::run_pipelined`]).
    pub peak_inflight_units: usize,
}

/// The task axis of the engine: what NN-L produces on anchors, what a
/// refined B-frame mask is turned into, and how gaps are concealed.
pub trait TaskPolicy {
    /// Per-frame artefact the task produces (mask or detection list).
    type Output;

    /// Whether the §VI-A adaptive fallback applies (segmentation only).
    const SUPPORTS_FALLBACK: bool;

    /// The scheme label stamped on the run's trace. Defaults to VR-DANN —
    /// only tasks that replace the B-frame ladder wholesale (feature
    /// propagation) report something else.
    fn scheme(&self) -> SchemeKind {
        SchemeKind::VrDann
    }

    /// Feature-space propagation hook. A propagating task consumes the
    /// B-frame's MV payload entirely in feature space (warp cached
    /// backbone features, run the head, store the result) and returns
    /// `Some(ops)` — the head-only NPU cost — which makes the engine emit
    /// a [`ComputeKind::FeatHead`] trace frame and skip the mask-space
    /// reconstruction ladder. The default (`None`) routes the B-frame
    /// through reconstruction + NN-S unchanged.
    ///
    /// # Errors
    /// `Some(Err(..))` aborts the run (e.g. the payload references an
    /// anchor whose features left the window — impossible on a conforming
    /// stream, fatal on a corrupt one).
    fn propagate(&mut self, _info: &BFrameInfo) -> Option<Result<u64>> {
        None
    }

    /// Drops per-anchor task state older than `oldest`, called in
    /// lock-step with the engine's reference-mask window eviction so
    /// cached features obey the same O(GOP) bound as the masks.
    fn evict_below(&mut self, _oldest: u32) {}

    /// High-water mark of live cached feature maps (0 for tasks that keep
    /// none) — the bounded-memory accounting hook for feature windows.
    fn peak_live_features(&self) -> usize {
        0
    }

    /// Operations of one NN-L inference at the stream's resolution.
    fn nnl_ops(&self) -> u64;

    /// Runs NN-L on frame `display`, records its output, and returns the
    /// reference mask downstream B-frames reconstruct from. `reinfer`
    /// selects the re-inference / fallback seeding lane (a B-frame routed
    /// through NN-L must not collide with the anchor lane).
    fn infer_anchor(&mut self, display: u32, reinfer: bool) -> SegMask;

    /// Records the refined result of a reconstructed B-frame.
    fn store_refined(&mut self, display: u32, mask: SegMask);

    /// Conceals an unusable B-frame with the nearest reference's result.
    fn store_nearest(&mut self, display: u32, refs: &BTreeMap<u32, SegMask>);

    /// Conceals a B-frame when no reference at all survived.
    fn store_empty(&mut self, display: u32);

    /// Collects the outputs, erroring on any frame that was never produced
    /// (the strict pipeline's contract).
    ///
    /// # Errors
    /// Returns [`VrDannError::BadInput`] naming the first missing frame.
    fn finalize_strict(self) -> Result<Vec<Self::Output>>;

    /// Collects the outputs, filling gaps from the nearest computed frame
    /// (the concealing pipeline never fails on damage).
    fn finalize_concealed(self) -> Vec<Self::Output>;
}

/// Segmentation task: NN-L masks on anchors, refined masks on B-frames.
#[derive(Debug)]
pub struct SegTask<'a> {
    seq: &'a Sequence,
    nnl: LargeNet,
    seed: u64,
    w: usize,
    h: usize,
    masks: Vec<Option<SegMask>>,
}

impl<'a> SegTask<'a> {
    /// Builds the task for one sequence/stream pair.
    pub fn new(seq: &'a Sequence, nnl: LargeNet, seed: u64, info: &StreamInfo) -> Self {
        Self {
            seq,
            nnl,
            seed,
            w: info.width,
            h: info.height,
            masks: vec![None; seq.len()],
        }
    }
}

impl TaskPolicy for SegTask<'_> {
    type Output = SegMask;

    const SUPPORTS_FALLBACK: bool = true;

    fn nnl_ops(&self) -> u64 {
        self.nnl.ops(self.w, self.h)
    }

    fn infer_anchor(&mut self, display: u32, reinfer: bool) -> SegMask {
        let lane: i64 = if reinfer { 2 } else { 0 };
        let seed = hash2(display as i64, lane, self.seed);
        let mask = self.nnl.segment(&self.seq.gt_masks[display as usize], seed);
        self.masks[display as usize] = Some(mask.clone());
        mask
    }

    fn store_refined(&mut self, display: u32, mask: SegMask) {
        self.masks[display as usize] = Some(mask);
    }

    fn store_nearest(&mut self, display: u32, refs: &BTreeMap<u32, SegMask>) {
        self.masks[display as usize] = Some(nearest_mask(refs, display, self.w, self.h));
    }

    fn store_empty(&mut self, display: u32) {
        self.masks[display as usize] = Some(SegMask::new(self.w, self.h));
    }

    fn finalize_strict(self) -> Result<Vec<SegMask>> {
        self.masks
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never segmented")))
            })
            .collect()
    }

    fn finalize_concealed(self) -> Vec<SegMask> {
        let computed: BTreeMap<u32, SegMask> = self
            .masks
            .iter()
            .enumerate()
            .filter_map(|(d, m)| m.as_ref().map(|m| (d as u32, m.clone())))
            .collect();
        self.masks
            .into_iter()
            .enumerate()
            .map(|(d, m)| m.unwrap_or_else(|| nearest_mask(&computed, d as u32, self.w, self.h)))
            .collect()
    }
}

/// Detection task: NN-L boxes on anchors (rasterised into reference masks),
/// component extraction on refined B-frame masks.
#[derive(Debug)]
pub struct DetTask<'a> {
    seq: &'a Sequence,
    nnl: LargeNet,
    seed: u64,
    w: usize,
    h: usize,
    min_component: usize,
    anchor_dets: BTreeMap<u32, Vec<Detection>>,
    detections: Vec<Option<Vec<Detection>>>,
}

impl<'a> DetTask<'a> {
    /// Builds the task for one sequence/stream pair.
    pub fn new(seq: &'a Sequence, nnl: LargeNet, seed: u64, info: &StreamInfo) -> Self {
        Self {
            seq,
            nnl,
            seed,
            w: info.width,
            h: info.height,
            min_component: (info.mb_size * info.mb_size) / 2,
            anchor_dets: BTreeMap::new(),
            detections: vec![None; seq.len()],
        }
    }
}

impl TaskPolicy for DetTask<'_> {
    type Output = Vec<Detection>;

    const SUPPORTS_FALLBACK: bool = false;

    fn nnl_ops(&self) -> u64 {
        self.nnl.ops(self.w, self.h)
    }

    fn infer_anchor(&mut self, display: u32, _reinfer: bool) -> SegMask {
        let seed = hash2(display as i64, 1, self.seed);
        let dets = self
            .nnl
            .detect(&self.seq.gt_boxes[display as usize], self.w, self.h, seed);
        let boxes: Vec<_> = dets.iter().map(|d| d.rect).collect();
        self.detections[display as usize] = Some(dets.clone());
        self.anchor_dets.insert(display, dets);
        boxes_to_mask(&boxes, self.w, self.h)
    }

    fn store_refined(&mut self, display: u32, mask: SegMask) {
        self.detections[display as usize] = Some(extract_components(&mask, self.min_component));
    }

    fn store_nearest(&mut self, display: u32, _refs: &BTreeMap<u32, SegMask>) {
        self.detections[display as usize] = Some(nearest_dets(&self.anchor_dets, display));
    }

    fn store_empty(&mut self, display: u32) {
        self.detections[display as usize] = Some(Vec::new());
    }

    fn finalize_strict(self) -> Result<Vec<Vec<Detection>>> {
        self.detections
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                d.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never detected")))
            })
            .collect()
    }

    fn finalize_concealed(self) -> Vec<Vec<Detection>> {
        let computed: BTreeMap<u32, Vec<Detection>> = self
            .detections
            .iter()
            .enumerate()
            .filter_map(|(d, v)| v.as_ref().map(|v| (d as u32, v.clone())))
            .collect();
        self.detections
            .into_iter()
            .enumerate()
            .map(|(d, v)| v.unwrap_or_else(|| nearest_dets(&computed, d as u32)))
            .collect()
    }
}

/// Saved state of a [`FaultPolicy`], captured by
/// [`PipelineEngine::checkpoint`]: the concealment counters and the NN-S
/// fault lottery's generator position. Restoring it rewinds the lottery, so
/// a replayed span of units redraws exactly the faults it drew the first
/// time instead of double-counting them.
#[derive(Debug, Clone)]
pub struct PolicyCheckpoint {
    stats: ConcealmentStats,
    rng: Option<StdRng>,
}

/// The fault axis of the engine: whether damage is concealed or fatal, and
/// the NN-S soft-error lottery.
pub trait FaultPolicy {
    /// Whether the degradation rungs (substitution, refetch, copy, salvage)
    /// are active. A strict run treats every unit as pristine.
    const CONCEALING: bool;

    /// Concealment counters the rungs increment as they fire.
    fn stats(&mut self) -> &mut ConcealmentStats;

    /// Draws the per-B-frame NN-S fault lottery (always `false` when
    /// strict; one draw per reconstructed B-frame, in decode order).
    fn draw_nns_fault(&mut self) -> bool;

    /// Saves the policy's counters and lottery position.
    fn save(&self) -> PolicyCheckpoint;

    /// Restores a previously [`save`](FaultPolicy::save)d state.
    fn load(&mut self, ckpt: &PolicyCheckpoint);

    /// Final counters for the run report.
    fn into_stats(self) -> ConcealmentStats;
}

/// Fail-fast policy: any decode error aborts the run, no concealment.
#[derive(Debug, Default)]
pub struct StrictPolicy {
    stats: ConcealmentStats,
}

impl FaultPolicy for StrictPolicy {
    const CONCEALING: bool = false;

    fn stats(&mut self) -> &mut ConcealmentStats {
        &mut self.stats
    }

    fn draw_nns_fault(&mut self) -> bool {
        false
    }

    fn save(&self) -> PolicyCheckpoint {
        PolicyCheckpoint {
            stats: self.stats,
            rng: None,
        }
    }

    fn load(&mut self, ckpt: &PolicyCheckpoint) {
        self.stats = ckpt.stats;
    }

    fn into_stats(self) -> ConcealmentStats {
        self.stats
    }
}

/// Degrade-gracefully policy: damage is concealed per the ladder and the
/// seeded NN-S fault lottery of [`ResilienceOptions`] applies.
#[derive(Debug)]
pub struct ConcealingPolicy {
    stats: ConcealmentStats,
    rng: Option<StdRng>,
    rate: f64,
}

impl ConcealingPolicy {
    /// Builds the policy from the run's resilience knobs.
    pub fn new(opts: &ResilienceOptions) -> Self {
        Self {
            stats: ConcealmentStats::default(),
            rng: (opts.nns_failure_rate > 0.0).then(|| StdRng::seed_from_u64(opts.seed)),
            rate: opts.nns_failure_rate,
        }
    }
}

impl FaultPolicy for ConcealingPolicy {
    const CONCEALING: bool = true;

    fn stats(&mut self) -> &mut ConcealmentStats {
        &mut self.stats
    }

    fn draw_nns_fault(&mut self) -> bool {
        self.rng
            .as_mut()
            .is_some_and(|rng| rng.random_range(0.0f64..1.0) < self.rate)
    }

    fn save(&self) -> PolicyCheckpoint {
        PolicyCheckpoint {
            stats: self.stats,
            rng: self.rng.clone(),
        }
    }

    fn load(&mut self, ckpt: &PolicyCheckpoint) {
        self.stats = ckpt.stats;
        self.rng = ckpt.rng.clone();
    }

    fn into_stats(self) -> ConcealmentStats {
        self.stats
    }
}

/// A snapshot of the engine's resumable streaming state: the O(GOP)
/// reference-mask window, the anchor eviction queue, the pending-refetch
/// flag, the fault policy's counters and lottery position, and the length
/// of the trace at capture time.
///
/// [`PipelineEngine::checkpoint`] captures it; [`PipelineEngine::restore`]
/// rolls the same engine back to it, after which re-[`step`]ping the units
/// decoded since the checkpoint reproduces the original run byte-for-byte
/// (every inference lane is display-seeded, every store idempotent per
/// display index). This is what lets a serving layer resume a stream whose
/// accelerator crashed mid-flight instead of dropping it: the host keeps
/// the checkpoint, re-primes the recovered NPU, and replays forward.
///
/// The snapshot is O(GOP): `MASK_WINDOW` reference masks plus scalars —
/// never the decoded video or the per-frame outputs.
///
/// [`step`]: PipelineEngine::step
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    ref_segs: BTreeMap<u32, SegMask>,
    anchor_window: VecDeque<u32>,
    pending_refetch: bool,
    frames_len: usize,
    policy: PolicyCheckpoint,
}

impl EngineCheckpoint {
    /// Reference masks held in the snapshot (bounded by the engine's
    /// O(GOP) window).
    pub fn reference_count(&self) -> usize {
        self.ref_segs.len()
    }

    /// Trace frames the engine had emitted when the snapshot was taken.
    pub fn frames_emitted(&self) -> usize {
        self.frames_len
    }
}

/// The NPU work one engine step emitted, as a serving layer sees it: enough
/// to place the frame on a shared accelerator (which model, how many
/// operations, whether the decoder reconstructed pixels) without holding
/// the full trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepWork {
    /// Display index of the frame the work belongs to.
    pub display: u32,
    /// Codec frame type.
    pub ftype: FrameType,
    /// Operations the NPU must execute for this frame.
    pub ops: u64,
    /// Whether the work needs the large model resident (NN-L) rather than
    /// the small refinement network (NN-S).
    pub uses_large_model: bool,
    /// Whether the decoder fully reconstructed this frame's pixels.
    pub full_decode: bool,
}

/// Decoded units the stage channel between the decode and compute lanes
/// buffers by default — the software analogue of the paper's small on-chip
/// `ip_Q`/`b_Q` frame queues between the decoder and the NPU.
const DEFAULT_STAGE_CAPACITY: usize = 8;

/// Tuning knobs of [`PipelineEngine::run_pipelined`]. `Default` resolves
/// both: worker count from [`vrd_runtime::max_threads`] (which honours
/// `VRD_THREADS`), channel capacity from [`DEFAULT_STAGE_CAPACITY`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Wave-front worker threads for B-frame reconstruction + refinement
    /// (`None` → `max_threads()`). The decode lane always adds one more
    /// thread on top.
    pub threads: Option<usize>,
    /// Bounded capacity of the decode→compute stage channel (`None` → 8).
    pub channel_capacity: Option<usize>,
}

impl PipelineOptions {
    /// The worker-thread count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(vrd_runtime::max_threads).max(1)
    }

    /// The stage-channel capacity this configuration resolves to.
    pub fn resolved_capacity(&self) -> usize {
        self.channel_capacity
            .unwrap_or(DEFAULT_STAGE_CAPACITY)
            .max(1)
    }
}

/// One deferred B-frame mask computation: everything the pure
/// reconstruct → sandwich → NN-S chain needs, captured at plan time. The
/// payload is already sanitised (concealing) and the fault lottery already
/// drawn (`refined`), so executing the job touches no engine state.
#[derive(Debug)]
struct ReconJob {
    display: u32,
    info: BFrameInfo,
    refined: bool,
}

/// The compute lane's in-flight wave: B-frame jobs planned since the last
/// reference-window mutation, executed together (fanned out across
/// `threads` workers) when the next mutation — or the end of the stream —
/// forces a barrier.
///
/// Do not interleave [`PipelineEngine::checkpoint`] /
/// [`PipelineEngine::restore`] with a non-empty wave: the snapshot cannot
/// see deferred jobs. The serving layer's checkpointed driver stays on the
/// sequential [`PipelineEngine::step`] for exactly this reason.
#[derive(Debug)]
pub struct PipelineWave {
    jobs: Vec<ReconJob>,
    threads: usize,
    flush_threshold: usize,
}

impl PipelineWave {
    /// An empty wave fanning out over `threads` (≥ 1) workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            jobs: Vec::new(),
            threads,
            // Anchor arrivals bound a wave at one GOP's worth of B-frames;
            // this threshold keeps the wave O(GOP) even on pathological
            // streams that lose every anchor (no barrier would ever fire).
            flush_threshold: (2 * MASK_WINDOW).max(2 * threads),
        }
    }

    /// Deferred jobs currently in the wave.
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }
}

/// Executes one deferred B-frame job. Pure with respect to the engine:
/// reads the reference window and model, produces the mask, mutates
/// nothing — which is what makes the wave fan-out safe and bit-identical
/// to sequential execution.
#[allow(clippy::too_many_arguments)]
fn exec_recon(
    job: &ReconJob,
    ref_segs: &BTreeMap<u32, SegMask>,
    w: usize,
    h: usize,
    mb: usize,
    recon_cfg: &crate::recon::ReconConfig,
    sandwich: bool,
    nns: &NnS,
    nns_q: Option<&QuantNnS>,
) -> Result<SegMask> {
    let plane = reconstruct_b_frame(&job.info, ref_segs, w, h, mb, recon_cfg)?;
    if job.refined {
        let input = if sandwich {
            build_sandwich(job.display, &plane, ref_segs)?
        } else {
            build_reconstruction_only(&plane)
        };
        Ok(match nns_q {
            Some(q) => q.infer(&input).to_mask(0.5),
            None => nns.infer(&input).to_mask(0.5),
        })
    } else {
        Ok(plane_to_mask(&plane, recon_cfg))
    }
}

/// The generic streaming engine: a task, a fault policy, and a shared model
/// configuration, executed over any [`FrameSource`].
///
/// Two driving styles share the same stage ladder:
///
/// * [`PipelineEngine::run`] — pull a source to exhaustion (the classic
///   single-stream entry points);
/// * [`PipelineEngine::prime`] / [`PipelineEngine::step`] /
///   [`PipelineEngine::finish`] — resumable stepping for callers that
///   interleave many streams over shared hardware (the `vrd-serve` session
///   layer): feed one [`DecodedUnit`] at a time, observe the [`StepWork`]
///   it put on the NPU, and close the books when the stream ends.
#[derive(Debug)]
pub struct PipelineEngine<'a, T, P> {
    cfg: &'a VrDannConfig,
    nns: &'a NnS,
    task: T,
    policy: P,
    // Streaming state, established by `prime` and advanced by `step`.
    primed: bool,
    w: usize,
    h: usize,
    mb: usize,
    nns_ops: u64,
    nnl_ops: u64,
    // Quantized twin of `nns`, built at prime time when the configuration
    // selects `ComputeMode::Int8` (weight quantization is done once, not
    // per frame).
    nns_q: Option<QuantNnS>,
    ref_segs: BTreeMap<u32, SegMask>,
    anchor_window: VecDeque<u32>,
    frames: Vec<(TraceFrame, ByteClass)>,
    // Set once an anchor is lost; the next decodable B-frame goes
    // through NN-L to re-establish a trusted reference.
    pending_refetch: bool,
    // High-water mark of the decode→compute stage channel (0 unless a
    // pipelined driver reported one via `note_peak_inflight`).
    peak_inflight_units: usize,
}

impl<'a, T: TaskPolicy, P: FaultPolicy> PipelineEngine<'a, T, P> {
    /// Assembles an engine from its stages.
    pub fn new(cfg: &'a VrDannConfig, nns: &'a NnS, task: T, policy: P) -> Self {
        Self {
            cfg,
            nns,
            task,
            policy,
            primed: false,
            w: 0,
            h: 0,
            mb: 0,
            nns_ops: 0,
            nnl_ops: 0,
            nns_q: None,
            ref_segs: BTreeMap::new(),
            anchor_window: VecDeque::new(),
            frames: Vec::new(),
            pending_refetch: false,
            peak_inflight_units: 0,
        }
    }

    /// Records the stage channel's occupancy high-water mark so
    /// [`PipelineEngine::finish`] can report it (pipelined drivers only;
    /// keeps the larger of repeated reports).
    pub fn note_peak_inflight(&mut self, peak: usize) {
        self.peak_inflight_units = self.peak_inflight_units.max(peak);
    }

    /// Prepares the engine for a stream: caches the stream geometry and
    /// per-inference operation counts, and establishes the up-front NN-L
    /// references.
    ///
    /// `prepopulate` lists anchor displays whose NN-L references must exist
    /// before the first unit (the concealing path needs the full usable
    /// anchor set up front: a lost B-frame may copy from an anchor that
    /// only decodes *later*). Strict runs pass `&[]` and infer lazily,
    /// which keeps the reference window O(GOP).
    pub fn prime(&mut self, info: &StreamInfo, prepopulate: &[u32]) {
        self.w = info.width;
        self.h = info.height;
        self.mb = info.mb_size;
        // The NPU is charged the same MAC count in both compute modes (the
        // paper's MAC array runs low precision natively), so traces are
        // byte-identical across `ComputeMode`s.
        self.nns_ops = 2 * self.nns.macs(self.h, self.w);
        self.nnl_ops = self.task.nnl_ops();
        self.nns_q = (self.cfg.compute == ComputeMode::Int8).then(|| self.nns.quantize());
        for &display in prepopulate {
            let mask = self.task.infer_anchor(display, false);
            self.ref_segs.insert(display, mask);
        }
        self.primed = true;
    }

    /// Snapshots the engine's resumable streaming state (see
    /// [`EngineCheckpoint`]). O(GOP) cost: clones the reference-mask window
    /// and scalars only.
    ///
    /// # Errors
    /// Returns [`VrDannError::BadInput`] if the engine was never primed —
    /// there is no stream state to snapshot.
    pub fn checkpoint(&self) -> Result<EngineCheckpoint> {
        if !self.primed {
            return Err(VrDannError::BadInput(
                "engine checkpointed before prime() established the stream".into(),
            ));
        }
        Ok(EngineCheckpoint {
            ref_segs: self.ref_segs.clone(),
            anchor_window: self.anchor_window.clone(),
            pending_refetch: self.pending_refetch,
            frames_len: self.frames.len(),
            policy: self.policy.save(),
        })
    }

    /// Rolls this engine back to `ckpt`: the reference window, anchor
    /// eviction queue, refetch flag and fault-lottery position return to
    /// their snapshot values and the trace is truncated to the snapshot
    /// length. Task outputs recorded after the checkpoint are left in place
    /// — re-stepping the same units overwrites them with identical values
    /// (all stores are keyed by display index and all inference lanes are
    /// display-seeded), which is exactly the crash-replay contract.
    ///
    /// # Errors
    /// Returns [`VrDannError::BadInput`] if the engine is unprimed or the
    /// checkpoint is ahead of this engine's trace (it belongs to a
    /// different or longer-lived run).
    pub fn restore(&mut self, ckpt: &EngineCheckpoint) -> Result<()> {
        if !self.primed {
            return Err(VrDannError::BadInput(
                "engine restored before prime() established the stream".into(),
            ));
        }
        if ckpt.frames_len > self.frames.len() {
            return Err(VrDannError::BadInput(format!(
                "checkpoint at trace length {} is ahead of the engine ({} frames emitted)",
                ckpt.frames_len,
                self.frames.len()
            )));
        }
        self.frames.truncate(ckpt.frames_len);
        self.ref_segs = ckpt.ref_segs.clone();
        self.anchor_window = ckpt.anchor_window.clone();
        self.pending_refetch = ckpt.pending_refetch;
        self.policy.load(&ckpt.policy);
        Ok(())
    }

    /// The [`StepWork`] view of the trace frame just pushed (if any).
    fn emitted(&self, before: usize) -> Option<StepWork> {
        (self.frames.len() > before).then(|| {
            let f = &self.frames[self.frames.len() - 1].0;
            StepWork {
                display: f.display,
                ftype: f.ftype,
                ops: f.kind.ops(),
                uses_large_model: f.kind.uses_large_model(),
                full_decode: f.full_decode,
            }
        })
    }

    /// Advances the engine by one decoded unit through the stage ladder,
    /// returning the NPU work the unit generated (`None` for units that
    /// parse to nothing, e.g. a lost frame with no inferable display slot).
    ///
    /// # Errors
    /// Returns [`VrDannError::BadInput`] if called before
    /// [`PipelineEngine::prime`], and propagates reconstruction failures.
    pub fn step(&mut self, unit: DecodedUnit) -> Result<Option<StepWork>> {
        self.step_impl(unit, None)
    }

    /// [`PipelineEngine::step`] with wave-front deferral: everything
    /// stateful (routing, sanitisation, the fault lottery, trace emission)
    /// still happens here, in decode order, but a B-frame's pure mask
    /// computation is parked in `wave` instead of executed inline. The
    /// engine flushes the wave itself before any reference-window mutation;
    /// the caller only owes a final [`PipelineEngine::drain_wave`] once the
    /// stream ends. The returned [`StepWork`] is identical to the
    /// sequential driver's (it derives from the plan, not the masks).
    ///
    /// # Errors
    /// As [`PipelineEngine::step`]; a forced wave flush can surface a
    /// reconstruction failure from an earlier deferred unit.
    pub fn step_pipelined(
        &mut self,
        unit: DecodedUnit,
        wave: &mut PipelineWave,
    ) -> Result<Option<StepWork>> {
        self.step_impl(unit, Some(wave))
    }

    /// Executes every job still parked in `wave`, fanning out across its
    /// worker threads. Must be called (repeatedly, if it errors) before
    /// [`PipelineEngine::finish`] when driving with
    /// [`PipelineEngine::step_pipelined`].
    ///
    /// # Errors
    /// Propagates the decode-order-first reconstruction failure among the
    /// deferred jobs.
    pub fn drain_wave(&mut self, wave: &mut PipelineWave) -> Result<()> {
        self.flush_wave(wave)
    }

    /// Executes and stores the wave's deferred jobs: reconstruct + refine
    /// in parallel (order-preserving, pure reads of the reference window),
    /// then store results sequentially in decode order.
    fn flush_wave(&mut self, wave: &mut PipelineWave) -> Result<()> {
        if wave.jobs.is_empty() {
            return Ok(());
        }
        let jobs = std::mem::take(&mut wave.jobs);
        let refs = &self.ref_segs;
        let (w, h, mb) = (self.w, self.h, self.mb);
        let recon_cfg = &self.cfg.recon;
        let sandwich = self.cfg.sandwich;
        let nns = self.nns;
        let nns_q = self.nns_q.as_ref();
        let masks: Vec<Result<SegMask>> = if wave.threads > 1 && jobs.len() > 1 {
            vrd_runtime::parallel_map_with(&jobs, wave.threads, |job| {
                exec_recon(job, refs, w, h, mb, recon_cfg, sandwich, nns, nns_q)
            })
        } else {
            jobs.iter()
                .map(|job| exec_recon(job, refs, w, h, mb, recon_cfg, sandwich, nns, nns_q))
                .collect()
        };
        for (job, mask) in jobs.into_iter().zip(masks) {
            self.task.store_refined(job.display, mask?);
        }
        Ok(())
    }

    fn step_impl(
        &mut self,
        unit: DecodedUnit,
        mut wave: Option<&mut PipelineWave>,
    ) -> Result<Option<StepWork>> {
        if !self.primed {
            return Err(VrDannError::BadInput(
                "engine stepped before prime() established the stream".into(),
            ));
        }
        let before = self.frames.len();
        let (w, h) = (self.w, self.h);
        match unit.payload {
            UnitPayload::Anchor { display, .. } => {
                // Barrier: a strict anchor mutates the reference window
                // (insert + eviction), which every deferred job reads.
                // Flushing on concealing anchors too keeps waves GOP-sized.
                if let Some(wv) = wave.as_deref_mut() {
                    self.flush_wave(wv)?;
                }
                if P::CONCEALING {
                    // Reference already established by prepopulation;
                    // only the substitution bookkeeping remains.
                    if matches!(
                        unit.outcome,
                        DecodeOutcome::Concealed(ConcealReason::MissingReference)
                    ) {
                        self.policy.stats().anchors_substituted += 1;
                    }
                } else {
                    let mask = self.task.infer_anchor(display, false);
                    self.ref_segs.insert(display, mask);
                    self.anchor_window.push_back(display);
                    if self.anchor_window.len() > MASK_WINDOW {
                        self.anchor_window.pop_front();
                        if let Some(&front) = self.anchor_window.front() {
                            // Drop every reference older than the window
                            // (fallback masks between evicted anchors
                            // can never win a nearest lookup again).
                            self.ref_segs = self.ref_segs.split_off(&front);
                            // Cached backbone features ride the same
                            // window: evicting the mask evicts the map.
                            self.task.evict_below(front);
                        }
                    }
                }
                self.frames.push((
                    TraceFrame {
                        display,
                        ftype: unit.ftype,
                        kind: ComputeKind::NnL { ops: self.nnl_ops },
                        full_decode: true,
                        bitstream_bytes: 0,
                    },
                    ByteClass::AnchorAvg,
                ));
            }
            UnitPayload::Motion(info_b) => {
                let display = info_b.display_idx;

                // A lost anchor earlier in decode order: spend an NN-L
                // here to re-establish a trusted reference (§VI-A's
                // fallback machinery, repurposed for recovery).
                if P::CONCEALING && self.pending_refetch {
                    // Barrier: the re-inference inserts a new reference.
                    if let Some(wv) = wave.as_deref_mut() {
                        self.flush_wave(wv)?;
                    }
                    self.pending_refetch = false;
                    self.policy.stats().nnl_reinferences += 1;
                    let mask = self.task.infer_anchor(display, true);
                    self.ref_segs.insert(display, mask);
                    self.frames.push((
                        TraceFrame {
                            display,
                            ftype: FrameType::B,
                            kind: ComputeKind::NnL { ops: self.nnl_ops },
                            full_decode: true,
                            bitstream_bytes: 0,
                        },
                        ByteClass::BAvg,
                    ));
                    return Ok(self.emitted(before));
                }

                // Adaptive fallback: fast-moving B-frames go through
                // NN-L (only on fully trusted payloads when concealing).
                if T::SUPPORTS_FALLBACK && (!P::CONCEALING || unit.outcome == DecodeOutcome::Ok) {
                    if let Some(threshold) = self.cfg.fallback_mv_threshold {
                        if p90_mv_magnitude(&info_b.mvs) > threshold as f64 {
                            // Barrier: the fallback inserts a reference.
                            if let Some(wv) = wave.as_deref_mut() {
                                self.flush_wave(wv)?;
                            }
                            let mask = self.task.infer_anchor(display, true);
                            self.ref_segs.insert(display, mask);
                            self.frames.push((
                                TraceFrame {
                                    display,
                                    ftype: FrameType::B,
                                    kind: ComputeKind::NnL { ops: self.nnl_ops },
                                    full_decode: true,
                                    bitstream_bytes: 0,
                                },
                                ByteClass::BAvg,
                            ));
                            return Ok(self.emitted(before));
                        }
                    }
                }

                // Feature-space propagation: a propagating task consumes
                // the MV payload here (warp cached features + head-only
                // inference) and the mask-space reconstruction ladder
                // below never runs. Only fully trusted payloads qualify —
                // a concealing run routes damaged frames to the ladder,
                // whose sanitisation machinery knows how to degrade.
                if !P::CONCEALING || unit.outcome == DecodeOutcome::Ok {
                    if let Some(head) = self.task.propagate(&info_b) {
                        let ops = head?;
                        self.frames.push((
                            TraceFrame {
                                display,
                                ftype: FrameType::B,
                                kind: ComputeKind::FeatHead {
                                    ops,
                                    mvs: info_b.mvs,
                                },
                                full_decode: false,
                                bitstream_bytes: 0,
                            },
                            ByteClass::BAvg,
                        ));
                        return Ok(self.emitted(before));
                    }
                }

                if P::CONCEALING && self.ref_segs.is_empty() {
                    // Every anchor lost: nothing to reconstruct from.
                    self.policy.stats().b_copied += 1;
                    self.task.store_empty(display);
                    self.frames.push((
                        TraceFrame {
                            display,
                            ftype: unit.ftype,
                            kind: ComputeKind::NnSRefine {
                                ops: 0,
                                mvs: vec![],
                            },
                            full_decode: false,
                            bitstream_bytes: 0,
                        },
                        ByteClass::Zero,
                    ));
                    return Ok(self.emitted(before));
                }

                if P::CONCEALING && matches!(unit.outcome, DecodeOutcome::Concealed(_)) {
                    self.policy.stats().b_salvaged += 1;
                }
                // Plan the reconstruction now — sanitisation and the fault
                // lottery are stateful and must happen in decode order —
                // but the mask computation itself is pure, so the wave
                // driver may defer it past this unit.
                let use_info = match P::CONCEALING {
                    true => sanitize_b_info(&info_b, &self.ref_segs, w, h, self.mb),
                    false => info_b,
                };
                let nns_faulted = self.policy.draw_nns_fault();
                if nns_faulted {
                    self.policy.stats().nns_failures += 1;
                }
                let refined = self.cfg.refine && !nns_faulted;
                let job = ReconJob {
                    display,
                    info: use_info,
                    refined,
                };
                let refine_ops = if refined { self.nns_ops } else { 0 };
                let entry = |mvs| {
                    (
                        TraceFrame {
                            display,
                            ftype: FrameType::B,
                            kind: ComputeKind::NnSRefine {
                                ops: refine_ops,
                                mvs,
                            },
                            full_decode: false,
                            bitstream_bytes: 0,
                        },
                        ByteClass::BAvg,
                    )
                };
                match wave {
                    Some(wv) => {
                        // The trace frame and the deferred job both need
                        // the (sanitised) MV payload; the job keeps the
                        // original.
                        self.frames.push(entry(job.info.mvs.clone()));
                        wv.jobs.push(job);
                        if wv.jobs.len() >= wv.flush_threshold {
                            self.flush_wave(wv)?;
                        }
                    }
                    None => {
                        let mask = exec_recon(
                            &job,
                            &self.ref_segs,
                            w,
                            h,
                            self.mb,
                            &self.cfg.recon,
                            self.cfg.sandwich,
                            self.nns,
                            self.nns_q.as_ref(),
                        )?;
                        self.task.store_refined(display, mask);
                        self.frames.push(entry(job.info.mvs));
                    }
                }
            }
            UnitPayload::Skipped { display } => {
                let Some(display) = display else {
                    return Ok(None);
                };
                if unit.ftype.is_anchor() {
                    self.policy.stats().anchors_lost += 1;
                    self.pending_refetch = true;
                } else {
                    self.policy.stats().b_copied += 1;
                    self.task.store_nearest(display, &self.ref_segs);
                }
                self.frames.push((
                    TraceFrame {
                        display,
                        ftype: unit.ftype,
                        kind: ComputeKind::NnSRefine {
                            ops: 0,
                            mvs: vec![],
                        },
                        full_decode: false,
                        bitstream_bytes: 0,
                    },
                    ByteClass::Zero,
                ));
            }
        }
        Ok(self.emitted(before))
    }

    /// Ends the stream: patches the whole-stream per-frame byte averages
    /// into the trace, collects the task outputs and closes the books.
    /// `totals` and `peak_live_frames` come from the exhausted source.
    ///
    /// # Errors
    /// Propagates [`TaskPolicy::finalize_strict`] failures (a strict run
    /// with frames that were never produced).
    pub fn finish(
        mut self,
        totals: vrd_codec::StreamTotals,
        peak_live_frames: usize,
    ) -> Result<EngineRun<T::Output>> {
        // The per-frame byte figures are whole-stream averages, only known
        // once the source is exhausted — patch them in now.
        let per_anchor_bytes = totals.anchor_bytes / totals.anchors.max(1);
        let per_b_bytes = totals.b_bytes / totals.b_frames.max(1);
        let frames = std::mem::take(&mut self.frames)
            .into_iter()
            .map(|(mut f, class)| {
                f.bitstream_bytes = match class {
                    ByteClass::AnchorAvg => per_anchor_bytes,
                    ByteClass::BAvg => per_b_bytes,
                    ByteClass::Zero => 0,
                };
                f
            })
            .collect();

        let scheme = self.task.scheme();
        let peak_live_features = self.task.peak_live_features();
        let outputs = if P::CONCEALING {
            self.task.finalize_concealed()
        } else {
            self.task.finalize_strict()?
        };
        Ok(EngineRun {
            outputs,
            trace: SchemeTrace {
                scheme,
                width: self.w,
                height: self.h,
                mb_size: self.mb,
                frames,
            },
            concealment: self.policy.into_stats(),
            peak_live_frames,
            peak_live_features,
            peak_inflight_units: self.peak_inflight_units,
        })
    }

    /// Drives the source to exhaustion through the stage ladder — the
    /// prime/step/finish cycle in one call (see [`PipelineEngine::prime`]
    /// for the `prepopulate` contract).
    ///
    /// # Errors
    /// Propagates source decode errors (strict sources only) and
    /// reconstruction failures.
    pub fn run<S: FrameSource>(
        mut self,
        mut source: S,
        prepopulate: &[u32],
    ) -> Result<EngineRun<T::Output>> {
        self.prime(&source.info(), prepopulate);
        while let Some(unit) = source.next_unit() {
            self.step(unit?)?;
        }
        let totals = source.totals();
        let peak = source.peak_live_frames();
        self.finish(totals, peak)
    }

    /// Drives the source to exhaustion on **two lanes**: a decode-lane
    /// worker thread owns the source and pulls [`DecodedUnit`]s through a
    /// bounded SPSC stage channel (the software `ip_Q`/`b_Q`), while this
    /// thread plans units in decode order and fans each GOP's B-frame
    /// reconstructions out wave-front-style across `opts.threads` workers.
    ///
    /// A drop-in sibling of [`PipelineEngine::run`]: same `prepopulate`
    /// contract, works for every [`TaskPolicy`] × [`FaultPolicy`], and
    /// produces bit-identical outputs, traces and concealment counters at
    /// every thread count — all stateful decisions still execute
    /// sequentially in decode order; only pure per-frame mask computation
    /// runs concurrently. Memory stays bounded: the source keeps its own
    /// O(GOP) window, at most `opts.channel_capacity` decoded units sit in
    /// the channel, and a wave holds at most O(GOP) deferred jobs.
    ///
    /// Checkpoint/restore is not available mid-run here (see
    /// [`PipelineWave`]); use the sequential stepping API for that.
    ///
    /// # Errors
    /// As [`PipelineEngine::run`]. On a source decode error the decode
    /// lane shuts down and the error is reported after the lanes join.
    pub fn run_pipelined<S: FrameSource + Send>(
        mut self,
        source: S,
        prepopulate: &[u32],
        opts: &PipelineOptions,
    ) -> Result<EngineRun<T::Output>> {
        self.prime(&source.info(), prepopulate);
        let threads = opts.resolved_threads();
        let mut wave = PipelineWave::new(threads);
        let (tx, rx) = vrd_runtime::stage_channel(opts.resolved_capacity());
        let (stepped, totals, peak_frames) = std::thread::scope(|s| {
            let decode_lane = s.spawn(move || {
                let mut source = source;
                while let Some(unit) = source.next_unit() {
                    // A strict source fuses after an error; forward it and
                    // stop. A dropped receiver (compute lane bailed) also
                    // ends the lane.
                    let fatal = unit.is_err();
                    if tx.send(unit).is_err() || fatal {
                        break;
                    }
                }
                (source.totals(), source.peak_live_frames())
            });
            let mut stepped = Ok(());
            while let Some(unit) = rx.recv() {
                let advanced = unit
                    .map_err(VrDannError::from)
                    .and_then(|u| self.step_pipelined(u, &mut wave).map(|_| ()));
                if let Err(e) = advanced {
                    stepped = Err(e);
                    break;
                }
            }
            self.note_peak_inflight(rx.peak_len());
            drop(rx);
            let (totals, peak_frames) = decode_lane.join().expect("decode lane never panics");
            (stepped, totals, peak_frames)
        });
        stepped?;
        self.drain_wave(&mut wave)?;
        self.finish(totals, peak_frames)
    }
}

/// Display-order stage driver for the full-decode baselines: every frame is
/// decoded, `stage` maps it (with the outputs so far, for the propagating
/// schemes) to an output and its compute kind, and the trace is assembled
/// uniformly (per-frame byte average, frame types from the GOP plan).
pub(crate) fn run_display_order<O>(
    seq: &Sequence,
    encoded: &EncodedVideo,
    scheme: SchemeKind,
    mut stage: impl FnMut(usize, &[O]) -> (O, ComputeKind),
) -> (Vec<O>, SchemeTrace) {
    let (w, h) = (seq.width(), seq.height());
    let bytes = encoded.bitstream.len() / seq.len().max(1);
    let mut outputs: Vec<O> = Vec::with_capacity(seq.len());
    let mut frames = Vec::with_capacity(seq.len());
    for d in 0..seq.len() {
        let (out, kind) = stage(d, &outputs);
        outputs.push(out);
        frames.push(TraceFrame {
            display: d as u32,
            ftype: encoded.plan.types[d],
            kind,
            full_decode: true,
            bitstream_bytes: bytes,
        });
    }
    (
        outputs,
        SchemeTrace {
            scheme,
            width: w,
            height: h,
            mb_size: encoded.config.standard.mb_size(),
            frames,
        },
    )
}
