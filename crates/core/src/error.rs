//! Error type of the core VR-DANN crate.

use std::error::Error as StdError;
use std::fmt;
use vrd_codec::CodecError;

/// Errors produced by the recognition pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VrDannError {
    /// The underlying codec failed.
    Codec(CodecError),
    /// Pipeline configuration is unusable (message explains why).
    InvalidConfig(String),
    /// The input sequence is unusable (too short, inconsistent, …).
    BadInput(String),
}

impl fmt::Display for VrDannError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VrDannError::Codec(e) => write!(f, "codec failure: {e}"),
            VrDannError::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            VrDannError::BadInput(msg) => write!(f, "bad input sequence: {msg}"),
        }
    }
}

impl StdError for VrDannError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            VrDannError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for VrDannError {
    fn from(e: CodecError) -> Self {
        VrDannError::Codec(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, VrDannError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_codec_errors_with_source() {
        let e: VrDannError = CodecError::Bitstream("oops".into()).into();
        assert!(e.to_string().contains("oops"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<VrDannError>();
    }
}
