//! Feature-space propagation (Jain & Gonzalez) as a [`TaskPolicy`]: the
//! staged large network runs in full on I/P anchors, its penultimate
//! feature maps are cached in the engine's O(GOP) window, and B-frames are
//! handled entirely in feature space — the cached features are warped with
//! the frame's bitstream block MVs and only the network *head* runs on the
//! NPU.
//!
//! This is the baseline VR-DANN's mask-space reconstruction is usually
//! contrasted with: instead of reconstructing the *output* (a bit-packed
//! mask) and refining it with a second network, the *intermediate
//! activations* are interpolated and the tail of the same network finishes
//! the job. The compute tradeoff is head-only inference per B-frame
//! ([`ComputeKind::FeatHead`], ~[`NNL_HEAD_FRACTION`] of a full NN-L pass)
//! versus VR-DANN's tiny NN-S — more NPU work, but no second model, no
//! model switching, and no NN-S training.
//!
//! The task reuses the engine's window discipline wholesale: cached
//! feature maps are evicted in lock-step with the reference masks
//! ([`TaskPolicy::evict_below`]), so peak live features obey the same
//! O(GOP) bound the masks do (`bounded_memory.rs` pins it).

use crate::engine::TaskPolicy;
use crate::error::{Result, VrDannError};
use crate::trace::SchemeKind;
use std::collections::BTreeMap;
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::StreamInfo;
use vrd_nn::featwarp::{warp_block, FeatureMap, WarpSource, FEATURE_CHANNELS, FEATURE_STRIDE};
use vrd_nn::LargeNet;
use vrd_video::texture::hash2;
use vrd_video::{SegMask, Sequence};

#[cfg(doc)]
use crate::trace::ComputeKind;
#[cfg(doc)]
use vrd_nn::NNL_HEAD_FRACTION;

/// Feature-propagation task: staged NN-L on anchors, warped features +
/// head-only inference on B-frames.
#[derive(Debug)]
pub struct FeatPropTask<'a> {
    seq: &'a Sequence,
    nnl: LargeNet,
    seed: u64,
    w: usize,
    h: usize,
    mb: usize,
    masks: Vec<Option<SegMask>>,
    /// Cached backbone features per live anchor, evicted with the engine's
    /// reference-mask window.
    feats: BTreeMap<u32, FeatureMap>,
    peak_feats: usize,
}

impl<'a> FeatPropTask<'a> {
    /// Builds the task for one sequence/stream pair.
    pub fn new(seq: &'a Sequence, nnl: LargeNet, seed: u64, info: &StreamInfo) -> Self {
        Self {
            seq,
            nnl,
            seed,
            w: info.width,
            h: info.height,
            mb: info.mb_size,
            masks: vec![None; seq.len()],
            feats: BTreeMap::new(),
            peak_feats: 0,
        }
    }

    /// The feature map of the display-nearest cached anchor (for intra
    /// blocks, which have no MV and fill co-located — the feature-space
    /// analogue of the reconstruction kernel's intra fallback).
    fn nearest_feat(&self, display: u32) -> Option<&FeatureMap> {
        self.feats
            .iter()
            .min_by_key(|(d, _)| d.abs_diff(display))
            .map(|(_, f)| f)
    }
}

impl TaskPolicy for FeatPropTask<'_> {
    type Output = SegMask;

    // Feature propagation replaces the whole B-frame ladder; the §VI-A
    // mask-space fallback does not apply.
    const SUPPORTS_FALLBACK: bool = false;

    fn scheme(&self) -> SchemeKind {
        SchemeKind::FeatProp
    }

    fn nnl_ops(&self) -> u64 {
        self.nnl.ops(self.w, self.h)
    }

    fn infer_anchor(&mut self, display: u32, reinfer: bool) -> SegMask {
        // Same seed lanes as `SegTask`, so FeatProp's anchors are
        // bit-identical to VR-DANN's — the baseline comparison then
        // isolates the propagation method, not the anchor noise.
        let lane: i64 = if reinfer { 2 } else { 0 };
        let seed = hash2(display as i64, lane, self.seed);
        let feat = self
            .nnl
            .forward_backbone(&self.seq.gt_masks[display as usize], seed);
        let mask = self.nnl.forward_head(&feat);
        self.feats.insert(display, feat);
        self.peak_feats = self.peak_feats.max(self.feats.len());
        self.masks[display as usize] = Some(mask.clone());
        mask
    }

    fn propagate(&mut self, info: &BFrameInfo) -> Option<Result<u64>> {
        let display = info.display_idx;
        let mut out = FeatureMap::zeros(self.w, self.h, FEATURE_STRIDE, FEATURE_CHANNELS);
        // The transient destination map counts against the live-feature
        // high-water mark alongside the cached anchors.
        self.peak_feats = self.peak_feats.max(self.feats.len() + 1);

        // Intra blocks carry no MV: fill co-located from the nearest
        // cached anchor.
        if !info.intra_blocks.is_empty() {
            let Some(near) = self.nearest_feat(display) else {
                return Some(Err(VrDannError::BadInput(format!(
                    "feature propagation: B-frame {display} has no cached anchor features"
                ))));
            };
            for &(bx, by) in &info.intra_blocks {
                let src = WarpSource {
                    feat: near,
                    dx: 0,
                    dy: 0,
                };
                warp_block(&mut out, bx as usize, by as usize, self.mb, src, None);
            }
        }

        for mv in &info.mvs {
            let Some(f0) = self.feats.get(&mv.ref0.frame) else {
                return Some(Err(VrDannError::BadInput(format!(
                    "feature propagation: B-frame {display} references anchor {} outside the \
                     feature window",
                    mv.ref0.frame
                ))));
            };
            let first = WarpSource {
                feat: f0,
                dx: mv.ref0.src_x - mv.dst_x as i32,
                dy: mv.ref0.src_y - mv.dst_y as i32,
            };
            let second = match &mv.ref1 {
                None => None,
                Some(r1) => {
                    let Some(f1) = self.feats.get(&r1.frame) else {
                        return Some(Err(VrDannError::BadInput(format!(
                            "feature propagation: B-frame {display} references anchor {} outside \
                             the feature window",
                            r1.frame
                        ))));
                    };
                    Some(WarpSource {
                        feat: f1,
                        dx: r1.src_x - mv.dst_x as i32,
                        dy: r1.src_y - mv.dst_y as i32,
                    })
                }
            };
            warp_block(
                &mut out,
                mv.dst_x as usize,
                mv.dst_y as usize,
                self.mb,
                first,
                second,
            );
        }

        let mask = self.nnl.forward_head(&out);
        self.masks[display as usize] = Some(mask);
        Some(Ok(self.nnl.head_ops(self.w, self.h)))
    }

    fn evict_below(&mut self, oldest: u32) {
        self.feats = self.feats.split_off(&oldest);
    }

    fn peak_live_features(&self) -> usize {
        self.peak_feats
    }

    fn store_refined(&mut self, display: u32, mask: SegMask) {
        self.masks[display as usize] = Some(mask);
    }

    fn store_nearest(&mut self, display: u32, refs: &BTreeMap<u32, SegMask>) {
        let mask = refs
            .iter()
            .min_by_key(|(d, _)| d.abs_diff(display))
            .map(|(_, m)| m.clone())
            .unwrap_or_else(|| SegMask::new(self.w, self.h));
        self.masks[display as usize] = Some(mask);
    }

    fn store_empty(&mut self, display: u32) {
        self.masks[display as usize] = Some(SegMask::new(self.w, self.h));
    }

    fn finalize_strict(self) -> Result<Vec<SegMask>> {
        self.masks
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never segmented")))
            })
            .collect()
    }

    fn finalize_concealed(self) -> Vec<SegMask> {
        let computed: BTreeMap<u32, SegMask> = self
            .masks
            .iter()
            .enumerate()
            .filter_map(|(d, m)| m.as_ref().map(|m| (d as u32, m.clone())))
            .collect();
        let (w, h) = (self.w, self.h);
        self.masks
            .into_iter()
            .enumerate()
            .map(|(d, m)| {
                m.unwrap_or_else(|| {
                    computed
                        .iter()
                        .min_by_key(|(k, _)| k.abs_diff(d as u32))
                        .map(|(_, m)| m.clone())
                        .unwrap_or_else(|| SegMask::new(w, h))
                })
            })
            .collect()
    }
}
