//! # vr-dann — decoder-assisted neural network acceleration for video
//! recognition
//!
//! The core crate of the reproduction of *"VR-DANN: Real-Time Video
//! Recognition via Decoder-Assisted Neural Network Acceleration"* (Song et
//! al., MICRO 2020). It implements the paper's algorithm (§III) and the
//! schemes it is evaluated against:
//!
//! * [`recon`] — B-frame segmentation **reconstruction** from motion
//!   vectors, with the 2-bit bi-reference mean filter;
//! * [`sandwich`] — the 3-channel NN-S input builder;
//! * [`VrDann`] — the trained pipeline: NN-L on I/P anchors, reconstruction
//!   plus NN-S refinement on B-frames, for both **segmentation** and
//!   **detection**;
//! * [`baselines`] — OSVOS, FAVOS, DFF, SELSA and Euphrates;
//! * [`trace`] — the workload traces the `vrd-sim` architecture simulator
//!   replays to produce the paper's performance/energy figures.
//!
//! ## Example
//!
//! ```
//! use vr_dann::{TrainTask, VrDann, VrDannConfig};
//! use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SuiteConfig::tiny();
//! let train = davis_train_suite(&cfg, 2);
//! let mut model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default())?;
//!
//! let seq = davis_sequence("cows", &cfg)?;
//! let encoded = model.encode(&seq)?;
//! let run = model.run_segmentation(&seq, &encoded)?;
//! assert_eq!(run.masks.len(), seq.len());
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod components;
pub mod engine;
pub mod error;
pub mod featprop;
pub mod recon;
pub mod sandwich;
pub mod trace;
pub mod vrdann;

pub use components::{boxes_to_mask, extract_components};
pub use engine::{
    ConcealingPolicy, DetTask, EngineCheckpoint, EngineRun, FaultPolicy, PipelineEngine,
    PipelineOptions, PipelineWave, PolicyCheckpoint, SegTask, StepWork, StrictPolicy, TaskPolicy,
};
pub use error::{Result, VrDannError};
pub use featprop::FeatPropTask;
pub use recon::{plane_to_mask, reconstruct_b_frame, ReconConfig};
pub use sandwich::{build_reconstruction_only, build_sandwich};
pub use trace::{ComputeKind, ConcealmentStats, SchemeKind, SchemeTrace, TraceFrame};
pub use vrd_nn::ComputeMode;
pub use vrdann::{
    DetectionRun, ResilienceOptions, SegmentationRun, TrainTask, VrDann, VrDannConfig,
};
