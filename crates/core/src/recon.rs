//! B-frame segmentation reconstruction from motion vectors (§III-A1).
//!
//! For every macro-block of a B-frame, the reference block's **segmentation
//! result** (not pixels) is copied from the already-segmented I/P reference
//! frame at the motion vector's source coordinates. Bi-referenced blocks are
//! combined with the paper's 2-bit mean filter: both references background →
//! black, both foreground → white, disagreement → gray.
//!
//! The kernels here are word-parallel over the packed bitplanes
//! (`vrd_video::mask`): each macro-block row is fetched as one shift-and-
//! merge word read from each reference (the software analogue of the agent
//! unit's coalesced DRAM burst, §IV-B) and combined with two bitwise ops
//! (`white = a AND b`, `gray = a XOR b`) before being merged into the
//! destination plane. The original per-pixel loops are retained in
//! [`reference`] and pinned bit-exact by the proptests in
//! `tests/recon_equivalence.rs`.

use crate::error::{Result, VrDannError};
use std::collections::BTreeMap;
use vrd_codec::decoder::BFrameInfo;
use vrd_video::{Seg2Plane, SegMask, MASK_WORD_BITS};

/// Reconstruction options (the defaults are the paper's algorithm; the
/// alternatives exist for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconConfig {
    /// Combine bi-referenced blocks with the mean filter (paper). When off,
    /// the first reference wins (ablation).
    pub mean_filter: bool,
    /// When thresholding a reconstruction directly into a mask (no NN-S),
    /// treat gray as foreground.
    pub gray_is_foreground: bool,
}

impl Default for ReconConfig {
    fn default() -> Self {
        Self {
            mean_filter: true,
            gray_is_foreground: true,
        }
    }
}

/// Copies one macro-block into the plane as mean-filtered word spans: each
/// block row is up to `⌈mb/64⌉` coalesced reads per reference, combined
/// bitwise. `s1`/`src1` are the second reference; pass the first again for
/// single-reference blocks (`a AND a = a`, `a XOR a = 0` — a plain copy).
#[inline]
fn copy_block(
    plane: &mut Seg2Plane,
    s0: &SegMask,
    src0: (i32, i32),
    s1: &SegMask,
    src1: (i32, i32),
    dst: (usize, usize),
    mb_size: usize,
) {
    for dy in 0..mb_size {
        let mut dx = 0;
        while dx < mb_size {
            let n = (mb_size - dx).min(MASK_WORD_BITS);
            let a = s0.extract_row_bits_clamped(src0.1 + dy as i32, src0.0 + dx as i32, n);
            let b = s1.extract_row_bits_clamped(src1.1 + dy as i32, src1.0 + dx as i32, n);
            plane.write_mean_filtered_row(dst.1 + dy, dst.0 + dx, n, a, b);
            dx += n;
        }
    }
}

/// Reconstructs a B-frame's segmentation from its motion vectors and the
/// segmentation results of its reference anchors.
///
/// `ref_segs` maps anchor display indices to their (already computed)
/// segmentation masks. Intra-coded blocks carry no motion information; they
/// are filled from the co-located block of the nearest available reference
/// (the natural hardware fallback — the agent unit treats them as zero
/// motion).
///
/// # Errors
/// Returns [`VrDannError::BadInput`] if a motion vector references an anchor
/// whose segmentation is missing, or if `ref_segs` is empty while intra
/// blocks need a fallback.
///
/// # Example
/// ```
/// use std::collections::BTreeMap;
/// use vr_dann::{reconstruct_b_frame, ReconConfig};
/// use vrd_codec::decoder::BFrameInfo;
/// use vrd_codec::{MvRecord, RefMv};
/// use vrd_video::{Rect, Seg2, SegMask};
///
/// # fn main() -> Result<(), vr_dann::VrDannError> {
/// // Anchor 0's segmentation has a foreground block at (8, 0).
/// let mut anchor = SegMask::new(32, 16);
/// anchor.fill_rect(Rect::new(8, 0, 16, 8));
/// let mut refs = BTreeMap::new();
/// refs.insert(0u32, anchor);
///
/// // The B-frame's block at (0, 0) points at that source block.
/// let info = BFrameInfo {
///     display_idx: 1,
///     mvs: vec![MvRecord {
///         dst_x: 0,
///         dst_y: 0,
///         ref0: RefMv { frame: 0, src_x: 8, src_y: 0 },
///         ref1: None,
///     }],
///     intra_blocks: vec![],
/// };
/// let plane = reconstruct_b_frame(&info, &refs, 32, 16, 8, &ReconConfig::default())?;
/// assert_eq!(plane.get(0, 0), Seg2::White);
/// # Ok(())
/// # }
/// ```
pub fn reconstruct_b_frame(
    info: &BFrameInfo,
    ref_segs: &BTreeMap<u32, SegMask>,
    width: usize,
    height: usize,
    mb_size: usize,
    cfg: &ReconConfig,
) -> Result<Seg2Plane> {
    let mut plane = Seg2Plane::new(width, height);

    let fetch = |frame: u32| -> Result<&SegMask> {
        ref_segs.get(&frame).ok_or_else(|| {
            VrDannError::BadInput(format!(
                "B-frame {} references anchor {frame} with no segmentation",
                info.display_idx
            ))
        })
    };

    for mv in &info.mvs {
        let s0 = fetch(mv.ref0.frame)?;
        let src0 = (mv.ref0.src_x, mv.ref0.src_y);
        let dst = (mv.dst_x as usize, mv.dst_y as usize);
        match (cfg.mean_filter, mv.ref1) {
            (true, Some(r1)) => {
                let s1 = fetch(r1.frame)?;
                copy_block(&mut plane, s0, src0, s1, (r1.src_x, r1.src_y), dst, mb_size);
            }
            _ => copy_block(&mut plane, s0, src0, s0, src0, dst, mb_size),
        }
    }

    if !info.intra_blocks.is_empty() {
        // Nearest anchor by display distance serves the co-located fallback.
        let nearest = ref_segs
            .keys()
            .min_by_key(|&&k| k.abs_diff(info.display_idx))
            .copied()
            .ok_or_else(|| {
                VrDannError::BadInput(format!(
                    "B-frame {} has intra blocks but no reference segmentations",
                    info.display_idx
                ))
            })?;
        let seg = &ref_segs[&nearest];
        for &(bx, by) in &info.intra_blocks {
            let src = (bx as i32, by as i32);
            copy_block(
                &mut plane,
                seg,
                src,
                seg,
                src,
                (bx as usize, by as usize),
                mb_size,
            );
        }
    }

    Ok(plane)
}

/// Thresholds a reconstruction into a mask without NN-S (the VR-DANN
/// ablation without refinement, and the source of Fig. 4's noisy example).
/// A single OR (or copy) over the packed bitplanes.
pub fn plane_to_mask(plane: &Seg2Plane, cfg: &ReconConfig) -> SegMask {
    plane.to_mask(cfg.gray_is_foreground)
}

/// Retained per-pixel reconstruction kernels (the pre-packing semantics),
/// kept as the ground truth the word-parallel path is property-tested and
/// benchmarked against — the same pattern as `vrd_nn::conv::reference`.
pub mod reference {
    use super::{ReconConfig, Result, VrDannError};
    use std::collections::BTreeMap;
    use vrd_codec::decoder::BFrameInfo;
    use vrd_video::{Seg2, Seg2Plane, SegMask};

    /// Per-pixel reference-block copy with scalar clamped reads — the
    /// scalar ground truth of [`super::reconstruct_b_frame`].
    ///
    /// # Errors
    /// Same contract as the packed kernel.
    pub fn reconstruct_b_frame(
        info: &BFrameInfo,
        ref_segs: &BTreeMap<u32, SegMask>,
        width: usize,
        height: usize,
        mb_size: usize,
        cfg: &ReconConfig,
    ) -> Result<Seg2Plane> {
        let mut plane = Seg2Plane::new(width, height);

        let fetch = |frame: u32| -> Result<&SegMask> {
            ref_segs.get(&frame).ok_or_else(|| {
                VrDannError::BadInput(format!(
                    "B-frame {} references anchor {frame} with no segmentation",
                    info.display_idx
                ))
            })
        };

        for mv in &info.mvs {
            let s0 = fetch(mv.ref0.frame)?;
            match (cfg.mean_filter, mv.ref1) {
                (true, Some(r1)) => {
                    let s1 = fetch(r1.frame)?;
                    for dy in 0..mb_size {
                        for dx in 0..mb_size {
                            let a = s0
                                .get_clamped(mv.ref0.src_x + dx as i32, mv.ref0.src_y + dy as i32);
                            let b = s1.get_clamped(r1.src_x + dx as i32, r1.src_y + dy as i32);
                            plane.set(
                                mv.dst_x as usize + dx,
                                mv.dst_y as usize + dy,
                                Seg2::from_bits(a, b),
                            );
                        }
                    }
                }
                _ => {
                    for dy in 0..mb_size {
                        for dx in 0..mb_size {
                            let a = s0
                                .get_clamped(mv.ref0.src_x + dx as i32, mv.ref0.src_y + dy as i32);
                            plane.set(
                                mv.dst_x as usize + dx,
                                mv.dst_y as usize + dy,
                                Seg2::from_bits(a, a),
                            );
                        }
                    }
                }
            }
        }

        if !info.intra_blocks.is_empty() {
            let nearest = ref_segs
                .keys()
                .min_by_key(|&&k| k.abs_diff(info.display_idx))
                .copied()
                .ok_or_else(|| {
                    VrDannError::BadInput(format!(
                        "B-frame {} has intra blocks but no reference segmentations",
                        info.display_idx
                    ))
                })?;
            let seg = &ref_segs[&nearest];
            for &(bx, by) in &info.intra_blocks {
                for dy in 0..mb_size {
                    for dx in 0..mb_size {
                        let a = seg.get_clamped(bx as i32 + dx as i32, by as i32 + dy as i32);
                        plane.set(bx as usize + dx, by as usize + dy, Seg2::from_bits(a, a));
                    }
                }
            }
        }

        Ok(plane)
    }

    /// Per-pixel threshold of a plane into a mask — the scalar ground truth
    /// of [`super::plane_to_mask`].
    pub fn plane_to_mask(plane: &Seg2Plane, cfg: &ReconConfig) -> SegMask {
        vrd_video::mask::reference::plane_to_mask(plane, cfg.gray_is_foreground)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_codec::{MvRecord, RefMv};
    use vrd_video::{Rect, Seg2};

    fn seg_with(r: Rect) -> SegMask {
        let mut m = SegMask::new(32, 16);
        m.fill_rect(r);
        m
    }

    fn mv(
        dst: (u32, u32),
        f0: u32,
        src0: (i32, i32),
        second: Option<(u32, (i32, i32))>,
    ) -> MvRecord {
        MvRecord {
            dst_x: dst.0,
            dst_y: dst.1,
            ref0: RefMv {
                frame: f0,
                src_x: src0.0,
                src_y: src0.1,
            },
            ref1: second.map(|(f, s)| RefMv {
                frame: f,
                src_x: s.0,
                src_y: s.1,
            }),
        }
    }

    #[test]
    fn single_reference_copies_block() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, seg_with(Rect::new(8, 0, 16, 8)));
        let info = BFrameInfo {
            display_idx: 1,
            mvs: vec![mv((0, 0), 0, (8, 0), None)],
            intra_blocks: vec![],
        };
        let plane = reconstruct_b_frame(&info, &refs, 32, 16, 8, &ReconConfig::default()).unwrap();
        // The destination block is fully white (the source was foreground).
        assert_eq!(plane.get(0, 0), Seg2::White);
        assert_eq!(plane.get(7, 7), Seg2::White);
        // Outside the written block the plane stays black.
        assert_eq!(plane.get(8, 0), Seg2::Black);
    }

    #[test]
    fn bi_reference_mean_filters_disagreement() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, seg_with(Rect::new(0, 0, 8, 8))); // foreground
        refs.insert(4u32, seg_with(Rect::new(16, 8, 24, 16))); // elsewhere
        let info = BFrameInfo {
            display_idx: 2,
            mvs: vec![mv((8, 8), 0, (0, 0), Some((4, (0, 0))))],
            intra_blocks: vec![],
        };
        let plane = reconstruct_b_frame(&info, &refs, 32, 16, 8, &ReconConfig::default()).unwrap();
        // Ref0 says white, ref4 (at 0,0) says black -> gray.
        assert_eq!(plane.get(8, 8), Seg2::Gray);
        let strict = plane_to_mask(
            &plane,
            &ReconConfig {
                gray_is_foreground: false,
                ..ReconConfig::default()
            },
        );
        assert_eq!(strict.get(8, 8), 0);
        let lenient = plane_to_mask(&plane, &ReconConfig::default());
        assert_eq!(lenient.get(8, 8), 1);
    }

    #[test]
    fn first_ref_wins_without_mean_filter() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, seg_with(Rect::new(0, 0, 8, 8)));
        refs.insert(4u32, SegMask::new(32, 16));
        let info = BFrameInfo {
            display_idx: 2,
            mvs: vec![mv((8, 8), 0, (0, 0), Some((4, (0, 0))))],
            intra_blocks: vec![],
        };
        let cfg = ReconConfig {
            mean_filter: false,
            ..ReconConfig::default()
        };
        let plane = reconstruct_b_frame(&info, &refs, 32, 16, 8, &cfg).unwrap();
        assert_eq!(plane.get(8, 8), Seg2::White);
    }

    #[test]
    fn intra_blocks_fall_back_to_colocated_nearest_anchor() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, seg_with(Rect::new(0, 8, 8, 16)));
        refs.insert(8u32, SegMask::new(32, 16));
        let info = BFrameInfo {
            display_idx: 1, // nearest anchor is 0
            mvs: vec![],
            intra_blocks: vec![(0, 8)],
        };
        let plane = reconstruct_b_frame(&info, &refs, 32, 16, 8, &ReconConfig::default()).unwrap();
        assert_eq!(plane.get(0, 8), Seg2::White);
        assert_eq!(plane.get(0, 0), Seg2::Black);
    }

    #[test]
    fn missing_reference_is_an_error() {
        let refs = BTreeMap::new();
        let info = BFrameInfo {
            display_idx: 1,
            mvs: vec![mv((0, 0), 0, (0, 0), None)],
            intra_blocks: vec![],
        };
        let err = reconstruct_b_frame(&info, &refs, 32, 16, 8, &ReconConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn packed_matches_reference_on_unaligned_sources() {
        // Sources straddling word boundaries and the frame edge, 96-wide so
        // rows span two words with a 32-bit tail.
        let mut a = SegMask::new(96, 32);
        let mut b = SegMask::new(96, 32);
        a.fill_rect(Rect::new(50, 3, 80, 20));
        b.fill_rect(Rect::new(60, 0, 96, 31));
        let mut refs = BTreeMap::new();
        refs.insert(0u32, a);
        refs.insert(4u32, b);
        let info = BFrameInfo {
            display_idx: 2,
            mvs: vec![
                mv((0, 0), 0, (59, -2), Some((4, (61, 5)))),
                mv((16, 0), 0, (90, 7), None),
                mv((0, 16), 4, (-6, 28), Some((0, (63, 15)))),
            ],
            intra_blocks: vec![(80, 16)],
        };
        for cfg in [
            ReconConfig::default(),
            ReconConfig {
                mean_filter: false,
                ..ReconConfig::default()
            },
        ] {
            let packed = reconstruct_b_frame(&info, &refs, 96, 32, 16, &cfg).unwrap();
            let scalar = reference::reconstruct_b_frame(&info, &refs, 96, 32, 16, &cfg).unwrap();
            assert_eq!(packed, scalar);
        }
    }
}
