//! The sandwich input to NN-S (§III-A2).
//!
//! "We build sandwich-like three-channel images as the input to the NN-S,
//! where the middle channel is the reconstruction results of current
//! B-frame, and the first and third channels are the immediately preceding
//! and following segmentation results of the reference I-frame and P-frame."

use crate::error::{Result, VrDannError};
use std::collections::BTreeMap;
use vrd_nn::Tensor;
use vrd_video::{Seg2Plane, SegMask};

/// Picks the sandwich's outer channels: the temporally nearest anchors
/// before and after `display_idx` (one side duplicated at stream
/// boundaries).
fn pick_anchors(
    display_idx: u32,
    ref_segs: &BTreeMap<u32, SegMask>,
) -> Result<(&SegMask, &SegMask)> {
    let prev = ref_segs.range(..display_idx).next_back().map(|(_, m)| m);
    let next = ref_segs.range(display_idx + 1..).next().map(|(_, m)| m);
    match (prev, next) {
        (Some(p), Some(n)) => Ok((p, n)),
        (Some(p), None) => Ok((p, p)),
        (None, Some(n)) => Ok((n, n)),
        (None, None) => Err(VrDannError::BadInput(format!(
            "B-frame {display_idx} has no reference segmentations for the sandwich"
        ))),
    }
}

/// Builds the 3-channel sandwich tensor for a B-frame.
///
/// `ref_segs` maps anchor display indices to segmentations; the channels are
/// the temporally nearest anchor before and after `display_idx`. When the
/// B-frame has anchors on only one side (stream boundaries), that side's
/// nearest anchor fills both outer channels.
///
/// The assembly is fused: each channel expands its packed bitplanes word-at-
/// a-time straight into its slice of the final CHW buffer, so no
/// intermediate per-channel tensor or byte raster is materialised.
///
/// # Errors
/// Returns [`VrDannError::BadInput`] if `ref_segs` is empty.
pub fn build_sandwich(
    display_idx: u32,
    plane: &Seg2Plane,
    ref_segs: &BTreeMap<u32, SegMask>,
) -> Result<Tensor> {
    let (prev, next) = pick_anchors(display_idx, ref_segs)?;
    let (w, h) = (plane.width(), plane.height());
    let hw = h * w;
    let mut data = vec![0.0f32; 3 * hw];
    let (first, rest) = data.split_at_mut(hw);
    let (mid, last) = rest.split_at_mut(hw);
    prev.expand_f32_into(first);
    plane.expand_f32_into(mid);
    next.expand_f32_into(last);
    Ok(Tensor::from_vec(3, h, w, data))
}

/// Builds a degenerate single-information input for the no-sandwich
/// ablation: the reconstruction fills all three channels, so NN-S sees no
/// temporal context.
pub fn build_reconstruction_only(plane: &Seg2Plane) -> Tensor {
    let (w, h) = (plane.width(), plane.height());
    let hw = h * w;
    let mut data = vec![0.0f32; 3 * hw];
    plane.expand_f32_into(&mut data[..hw]);
    let (first, rest) = data.split_at_mut(hw);
    rest[..hw].copy_from_slice(first);
    rest[hw..].copy_from_slice(first);
    Tensor::from_vec(3, h, w, data)
}

/// Retained per-pixel sandwich assembly — the scalar ground truth the fused
/// packed expansion is property-tested and benchmarked against.
pub mod reference {
    use super::{pick_anchors, Result};
    use std::collections::BTreeMap;
    use vrd_nn::Tensor;
    use vrd_video::{Seg2Plane, SegMask};

    /// Scalar per-pixel sandwich assembly.
    ///
    /// # Errors
    /// Same contract as [`super::build_sandwich`].
    pub fn build_sandwich(
        display_idx: u32,
        plane: &Seg2Plane,
        ref_segs: &BTreeMap<u32, SegMask>,
    ) -> Result<Tensor> {
        let (prev, next) = pick_anchors(display_idx, ref_segs)?;
        let (w, h) = (plane.width(), plane.height());
        let mut t = Tensor::zeros(3, h, w);
        for y in 0..h {
            for x in 0..w {
                t.set(0, y, x, f32::from(prev.get(x, y)));
                t.set(1, y, x, plane.get(x, y).to_f32());
                t.set(2, y, x, f32::from(next.get(x, y)));
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::{Rect, Seg2};

    fn mask(r: Rect) -> SegMask {
        let mut m = SegMask::new(8, 8);
        m.fill_rect(r);
        m
    }

    #[test]
    fn picks_immediately_adjacent_anchors() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, mask(Rect::new(0, 0, 1, 1)));
        refs.insert(4u32, mask(Rect::new(1, 0, 2, 1)));
        refs.insert(8u32, mask(Rect::new(2, 0, 3, 1)));
        let mut plane = Seg2Plane::new(8, 8);
        plane.set(3, 0, Seg2::Gray);
        // display 5 sits between anchors 4 and 8.
        let t = build_sandwich(5, &plane, &refs).unwrap();
        assert_eq!(t.channels(), 3);
        assert_eq!(t.get(0, 0, 1), 1.0, "prev channel should be anchor 4");
        assert_eq!(t.get(1, 0, 3), 0.5, "middle channel is the recon plane");
        assert_eq!(t.get(2, 0, 2), 1.0, "next channel should be anchor 8");
        assert_eq!(t.get(0, 0, 0), 0.0, "anchor 0 must not leak in");
    }

    #[test]
    fn one_sided_anchors_duplicate() {
        let mut refs = BTreeMap::new();
        refs.insert(0u32, mask(Rect::new(0, 0, 2, 2)));
        let plane = Seg2Plane::new(8, 8);
        let t = build_sandwich(3, &plane, &refs).unwrap();
        assert_eq!(t.channel(0), t.channel(2));
    }

    #[test]
    fn empty_refs_error() {
        let plane = Seg2Plane::new(8, 8);
        assert!(build_sandwich(3, &plane, &BTreeMap::new()).is_err());
    }

    #[test]
    fn reconstruction_only_ablation_replicates_middle() {
        let mut plane = Seg2Plane::new(8, 8);
        plane.set(2, 2, Seg2::White);
        let t = build_reconstruction_only(&plane);
        assert_eq!(t.channel(0), t.channel(1));
        assert_eq!(t.channel(1), t.channel(2));
        assert_eq!(t.get(1, 2, 2), 1.0);
    }
}
