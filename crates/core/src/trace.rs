//! Workload traces: the interface between the recognition pipelines and the
//! architecture simulator.
//!
//! Every pipeline (VR-DANN and each baseline) emits a [`SchemeTrace`]
//! describing, **in decode order**, what each frame cost: which network ran,
//! how many operations it needed, whether the frame's pixels were decoded at
//! all, and — for VR-DANN B-frames — the motion-vector records the agent
//! unit must stream through `mv_T`. The simulator (`vrd-sim`) replays these
//! traces against its NPU/decoder/DRAM/agent-unit models to produce the
//! cycle and energy numbers of Figs. 12–16.

use vrd_codec::{FrameType, MvRecord};

/// Which recognition scheme produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// OSVOS: two large networks on every frame.
    Osvos,
    /// FAVOS: tracker + one large network on every frame (the baseline all
    /// performance numbers are normalised to).
    Favos,
    /// DFF: large network on key frames, FlowNet + warp on the rest.
    Dff,
    /// Euphrates: large network on key frames, MV box-shift on the rest.
    Euphrates,
    /// SELSA: sequence-level aggregation, large network on every frame.
    Selsa,
    /// Feature-space propagation (Jain & Gonzalez): full backbone+head on
    /// anchors, MV-warped backbone features + head-only inference on
    /// B-frames.
    FeatProp,
    /// VR-DANN (this paper).
    VrDann,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchemeKind::Osvos => "OSVOS",
            SchemeKind::Favos => "FAVOS",
            SchemeKind::Dff => "DFF",
            SchemeKind::Euphrates => "Euphrates",
            SchemeKind::Selsa => "SELSA",
            SchemeKind::FeatProp => "FeatProp",
            SchemeKind::VrDann => "VR-DANN",
        };
        f.write_str(s)
    }
}

/// The compute a frame requires.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeKind {
    /// A large-network inference (NN-L family).
    NnL {
        /// Total operations of the inference.
        ops: u64,
    },
    /// VR-DANN B-frame handling: motion-vector reconstruction followed by
    /// NN-S refinement.
    NnSRefine {
        /// Operations of the NN-S inference (2 ops per MAC).
        ops: u64,
        /// Motion-vector records the agent unit streams for reconstruction.
        mvs: Vec<MvRecord>,
    },
    /// DFF non-key frame: optical-flow network plus warping.
    FlowWarp {
        /// Operations of the flow inference.
        ops: u64,
    },
    /// Euphrates non-key frame: average-MV rectangle shift (work is
    /// negligible next to any NN inference).
    BoxShift,
    /// Feature-propagation B-frame: cached backbone features warped by the
    /// agent unit with the frame's MV records, then the network head alone
    /// on the NPU — billed distinctly from both NN-L and NN-S.
    FeatHead {
        /// Operations of the head-only inference.
        ops: u64,
        /// Motion-vector records the agent unit streams for the feature
        /// warp.
        mvs: Vec<MvRecord>,
    },
}

impl ComputeKind {
    /// Operations this frame puts on the NPU.
    pub fn ops(&self) -> u64 {
        match self {
            ComputeKind::NnL { ops } => *ops,
            ComputeKind::NnSRefine { ops, .. } => *ops,
            ComputeKind::FlowWarp { ops } => *ops,
            ComputeKind::BoxShift => 0,
            ComputeKind::FeatHead { ops, .. } => *ops,
        }
    }

    /// Whether the NPU must have the large network's weights loaded.
    ///
    /// The head of the staged large network counts: its weights live with
    /// the backbone, which is why feature propagation never pays a model
    /// switch between anchors and B-frames.
    pub fn uses_large_model(&self) -> bool {
        matches!(
            self,
            ComputeKind::NnL { .. } | ComputeKind::FlowWarp { .. } | ComputeKind::FeatHead { .. }
        )
    }
}

/// What a resilient run had to conceal (all zero on a clean stream).
///
/// Each counter is one rung of the degradation ladder: lost B-frame MVs are
/// the cheapest (copy a neighbouring segmentation), a lost anchor the most
/// expensive (its dependents decode from substituted references and NN-L is
/// re-run on the next decodable frame to re-establish a trusted reference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcealmentStats {
    /// B-frames whose MV payload was lost outright; their segmentation is a
    /// copy of the nearest reference frame's result.
    pub b_copied: usize,
    /// B-frames reconstructed from a salvaged (partial or checksum-suspect)
    /// MV payload, with uncovered blocks filled co-located.
    pub b_salvaged: usize,
    /// Anchor frames that produced no pixels at all.
    pub anchors_lost: usize,
    /// Anchor frames decoded with at least one substituted reference.
    pub anchors_substituted: usize,
    /// Extra NN-L inferences run to re-establish a reference after a lost
    /// anchor.
    pub nnl_reinferences: usize,
    /// NN-S inference faults concealed by falling back to the unrefined
    /// blocky reconstruction.
    pub nns_failures: usize,
}

impl ConcealmentStats {
    /// Total concealment events of any kind.
    pub fn total(&self) -> usize {
        self.b_copied
            + self.b_salvaged
            + self.anchors_lost
            + self.anchors_substituted
            + self.nnl_reinferences
            + self.nns_failures
    }

    /// Whether the run needed no concealment at all (clean stream, no NN-S
    /// faults) — such runs are bit-identical to the strict pipeline.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Accumulates another run's counters (suite-level aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.b_copied += other.b_copied;
        self.b_salvaged += other.b_salvaged;
        self.anchors_lost += other.anchors_lost;
        self.anchors_substituted += other.anchors_substituted;
        self.nnl_reinferences += other.nnl_reinferences;
        self.nns_failures += other.nns_failures;
    }
}

impl std::fmt::Display for ConcealmentStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b_copied={} b_salvaged={} anchors_lost={} anchors_substituted={} \
             nnl_reinferences={} nns_failures={}",
            self.b_copied,
            self.b_salvaged,
            self.anchors_lost,
            self.anchors_substituted,
            self.nnl_reinferences,
            self.nns_failures
        )
    }
}

/// One frame's work item, in decode order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// Display index of the frame.
    pub display: u32,
    /// Codec frame type.
    pub ftype: FrameType,
    /// Compute required.
    pub kind: ComputeKind,
    /// Whether the decoder reconstructs this frame's pixels.
    pub full_decode: bool,
    /// Bitstream bytes parsed for this frame.
    pub bitstream_bytes: usize,
}

/// A complete per-sequence workload description for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeTrace {
    /// The scheme that produced this trace.
    pub scheme: SchemeKind,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Macro-block size of the underlying bitstream.
    pub mb_size: usize,
    /// Per-frame work in decode order.
    pub frames: Vec<TraceFrame>,
}

impl SchemeTrace {
    /// Total NPU operations over the sequence.
    pub fn total_ops(&self) -> u64 {
        self.frames.iter().map(|f| f.kind.ops()).sum()
    }

    /// Mean NPU tera-operations per frame (the paper's Fig. 12 overlay).
    pub fn tops_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.total_ops() as f64 / self.frames.len() as f64 / 1e12
    }

    /// Number of frames whose pixels are decoded.
    pub fn decoded_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.full_decode).count()
    }

    /// Number of large-model ↔ small-model switches a strict in-order
    /// execution would incur (the quantity VR-DANN-parallel's lagged queue
    /// switching minimises; Fig. 7).
    pub fn model_switches_in_order(&self) -> usize {
        self.frames
            .windows(2)
            .filter(|w| w[0].kind.uses_large_model() != w[1].kind.uses_large_model())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: ComputeKind) -> TraceFrame {
        TraceFrame {
            display: 0,
            ftype: FrameType::I,
            kind,
            full_decode: true,
            bitstream_bytes: 100,
        }
    }

    #[test]
    fn ops_accounting() {
        let t = SchemeTrace {
            scheme: SchemeKind::VrDann,
            width: 64,
            height: 48,
            mb_size: 8,
            frames: vec![
                frame(ComputeKind::NnL { ops: 1000 }),
                frame(ComputeKind::NnSRefine {
                    ops: 10,
                    mvs: vec![],
                }),
                frame(ComputeKind::BoxShift),
            ],
        };
        assert_eq!(t.total_ops(), 1010);
        assert_eq!(t.decoded_frames(), 3);
        assert!((t.tops_per_frame() - 1010.0 / 3.0 / 1e12).abs() < 1e-18);
    }

    #[test]
    fn switch_counting() {
        let l = || frame(ComputeKind::NnL { ops: 1 });
        let s = || {
            frame(ComputeKind::NnSRefine {
                ops: 1,
                mvs: vec![],
            })
        };
        let t = SchemeTrace {
            scheme: SchemeKind::VrDann,
            width: 8,
            height: 8,
            mb_size: 8,
            frames: vec![l(), s(), l(), s()],
        };
        assert_eq!(t.model_switches_in_order(), 3);
        let grouped = SchemeTrace {
            frames: vec![l(), l(), s(), s()],
            ..t
        };
        assert_eq!(grouped.model_switches_in_order(), 1);
    }

    #[test]
    fn concealment_merge_accumulates() {
        let mut a = ConcealmentStats {
            b_copied: 1,
            anchors_lost: 2,
            ..ConcealmentStats::default()
        };
        let b = ConcealmentStats {
            b_copied: 3,
            nns_failures: 4,
            ..ConcealmentStats::default()
        };
        a.merge(&b);
        assert_eq!(a.b_copied, 4);
        assert_eq!(a.anchors_lost, 2);
        assert_eq!(a.nns_failures, 4);
        assert_eq!(a.total(), 10);
        assert!(!a.is_clean());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::VrDann.to_string(), "VR-DANN");
        assert_eq!(SchemeKind::Favos.to_string(), "FAVOS");
    }
}
