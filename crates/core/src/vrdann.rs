//! The VR-DANN pipeline (Fig. 5): decode anchors, segment them with NN-L,
//! reconstruct B-frames from motion vectors, refine with NN-S.
//!
//! Every entry point is one configuration of the streaming
//! [`PipelineEngine`](crate::engine::PipelineEngine) — a task
//! (segmentation/detection) paired with a fault policy (strict/concealing)
//! over a pull-based [`FrameSource`](vrd_codec::FrameSource). No entry
//! point materialises the whole video: live pixel memory is bounded by the
//! source's reference window, and the strict paths keep only an O(GOP)
//! window of reference masks.

use crate::components::boxes_to_mask;
use crate::engine::{
    ConcealingPolicy, DetTask, EngineRun, PipelineEngine, PipelineOptions, SegTask, StrictPolicy,
};
use crate::error::{Result, VrDannError};
use crate::recon::{reconstruct_b_frame, ReconConfig};
use crate::sandwich::{build_reconstruction_only, build_sandwich};
use crate::trace::{ConcealmentStats, SchemeTrace};
use std::collections::BTreeMap;
use vrd_codec::faults::PacketStream;
use vrd_codec::{
    CodecConfig, Decoder, EncodedVideo, Encoder, FrameSource, ResilientFrameSource,
    StrictFrameSource,
};
use vrd_nn::{trainer, ComputeMode, LargeNet, LargeNetProfile, NnS, Sample, Tensor, TrainConfig};
use vrd_video::{Detection, SegMask, Sequence};

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct VrDannConfig {
    /// Encoder settings (B ratio, search interval `n`, standard — the
    /// paper's Figs. 15–17 knobs).
    pub codec: CodecConfig,
    /// NN-S hidden channel width.
    pub nns_hidden: usize,
    /// NN-S training recipe (paper: 2 epochs).
    pub train: TrainConfig,
    /// Run NN-S refinement on B-frames (off = raw reconstruction ablation).
    pub refine: bool,
    /// Use the sandwich input (off = reconstruction-only ablation).
    pub sandwich: bool,
    /// Reconstruction options (mean filter et al.).
    pub recon: ReconConfig,
    /// The NN-L used on anchor frames for segmentation (paper: FAVOS's
    /// ROI-SegNet).
    pub segment_profile: LargeNetProfile,
    /// The NN-L used on anchor frames for detection.
    pub detect_profile: LargeNetProfile,
    /// Seed for NN-S initialisation and the NN-L oracles.
    pub seed: u64,
    /// Optional adaptive fallback (§VI-A: "we can always refine the VR-DANN
    /// algorithm with fewer B-frame reconstruction while treating some
    /// B-frames as I/P-frames to pass through NN-L"). A B-frame whose mean
    /// 90th-percentile motion-vector magnitude exceeds this many pixels is
    /// fully decoded
    /// and segmented by NN-L instead of reconstructed — trading performance
    /// for accuracy on fast motion.
    pub fallback_mv_threshold: Option<f32>,
    /// Which compute path NN-S inference runs on:
    /// [`ComputeMode::F32Reference`] is the pinned full-precision path,
    /// [`ComputeMode::Int8`] the quantized MAC-array-faithful one. The
    /// NPU-ops accounting is identical in both modes, so traces never
    /// change — only the arithmetic inside the refinement does.
    pub compute: ComputeMode,
}

impl Default for VrDannConfig {
    fn default() -> Self {
        Self {
            codec: CodecConfig::default(),
            nns_hidden: 8,
            train: TrainConfig::default(),
            refine: true,
            sandwich: true,
            recon: ReconConfig::default(),
            segment_profile: LargeNetProfile::favos(),
            detect_profile: LargeNetProfile::selsa(),
            seed: 0xda77,
            fallback_mv_threshold: None,
            compute: ComputeMode::F32Reference,
        }
    }
}

/// The result of running the pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct SegmentationRun {
    /// Segmentation mask per frame, display order.
    pub masks: Vec<SegMask>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
    /// What the run had to conceal (all zero for the strict pipeline).
    pub concealment: ConcealmentStats,
    /// Peak number of reconstructed pixel frames held alive at once (the
    /// bounded-memory accounting hook; `seq.len()` for the full-decode
    /// baselines, O(GOP) for the streaming engine).
    pub peak_live_frames: usize,
    /// Peak number of cached backbone feature maps held alive at once
    /// (0 unless the run propagates in feature space).
    pub peak_live_features: usize,
    /// Peak number of decoded units buffered between the decode and
    /// compute lanes (0 for sequential drivers; bounded by the stage
    /// channel capacity under the pipelined executor).
    pub peak_inflight_units: usize,
}

impl From<EngineRun<SegMask>> for SegmentationRun {
    fn from(run: EngineRun<SegMask>) -> Self {
        Self {
            masks: run.outputs,
            trace: run.trace,
            concealment: run.concealment,
            peak_live_frames: run.peak_live_frames,
            peak_live_features: run.peak_live_features,
            peak_inflight_units: run.peak_inflight_units,
        }
    }
}

/// The result of running the detection pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct DetectionRun {
    /// Scored detections per frame, display order.
    pub detections: Vec<Vec<Detection>>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
    /// What the run had to conceal (all zero for the strict pipeline).
    pub concealment: ConcealmentStats,
    /// Peak number of reconstructed pixel frames held alive at once (the
    /// bounded-memory accounting hook; `seq.len()` for the full-decode
    /// baselines, O(GOP) for the streaming engine).
    pub peak_live_frames: usize,
    /// Peak number of decoded units buffered between the decode and
    /// compute lanes (0 for sequential drivers).
    pub peak_inflight_units: usize,
}

impl From<EngineRun<Vec<Detection>>> for DetectionRun {
    fn from(run: EngineRun<Vec<Detection>>) -> Self {
        Self {
            detections: run.outputs,
            trace: run.trace,
            concealment: run.concealment,
            peak_live_frames: run.peak_live_frames,
            peak_inflight_units: run.peak_inflight_units,
        }
    }
}

/// Degradation-policy knobs for the resilient pipeline entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceOptions {
    /// Per-B-frame probability that the NN-S inference itself faults (a
    /// model of accelerator soft errors); a faulted inference falls back to
    /// the unrefined blocky reconstruction. 0 disables the model entirely.
    pub nns_failure_rate: f64,
    /// Seed for the NN-S fault lottery.
    pub seed: u64,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        Self {
            nns_failure_rate: 0.0,
            seed: 0x5eed,
        }
    }
}

/// A trained VR-DANN pipeline instance.
#[derive(Debug, Clone)]
pub struct VrDann {
    cfg: VrDannConfig,
    nns: NnS,
}

/// What the pipeline was trained to refine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainTask {
    /// Pixel-accurate object masks (DAVIS-style).
    Segmentation,
    /// Rasterised detection rectangles (VID-style).
    Detection,
}

impl VrDann {
    /// Trains NN-S exactly as §III-B prescribes: encode the training
    /// sequences, reconstruct their B-frames from the **ground-truth** I/P
    /// masks plus motion vectors, feed the sandwich as input and the B-frame
    /// ground truth as label, two epochs.
    ///
    /// # Errors
    /// Fails if encoding fails or the training set contains no B-frames.
    pub fn train(train_seqs: &[Sequence], task: TrainTask, cfg: VrDannConfig) -> Result<Self> {
        let encoder = Encoder::new(cfg.codec);
        let decoder = Decoder::new();
        let mut samples = Vec::new();
        for seq in train_seqs {
            let ev = encoder.encode(&seq.frames)?;
            let rec = decoder.decode_for_recognition(&ev.bitstream)?;
            let gt_mask = |d: usize| -> SegMask {
                match task {
                    TrainTask::Segmentation => seq.gt_masks[d].clone(),
                    TrainTask::Detection => {
                        boxes_to_mask(&seq.gt_boxes[d], seq.width(), seq.height())
                    }
                }
            };
            let ref_segs: BTreeMap<u32, SegMask> = rec
                .anchors
                .iter()
                .map(|(d, _)| (*d, gt_mask(*d as usize)))
                .collect();
            for info in &rec.b_frames {
                let plane = reconstruct_b_frame(
                    info,
                    &ref_segs,
                    rec.width,
                    rec.height,
                    rec.mb_size,
                    &cfg.recon,
                )?;
                let input = if cfg.sandwich {
                    build_sandwich(info.display_idx, &plane, &ref_segs)?
                } else {
                    build_reconstruction_only(&plane)
                };
                let target = Tensor::from_mask(&gt_mask(info.display_idx as usize));
                samples.push(Sample { input, target });
            }
        }
        if samples.is_empty() {
            return Err(VrDannError::BadInput(
                "training sequences produced no B-frames".into(),
            ));
        }
        let mut nns = NnS::new(cfg.nns_hidden, cfg.seed);
        trainer::train(&mut nns, &samples, &cfg.train);
        // Calibrate the quantized path's activation scales on (a slice of)
        // the training inputs. This only observes activations — weights and
        // the f32 inference path are untouched.
        let calib: Vec<&Tensor> = samples.iter().take(32).map(|s| &s.input).collect();
        nns.calibrate(&calib);
        Ok(Self { cfg, nns })
    }

    /// Returns the pipeline with its NN-S compute path switched (builder
    /// style: `model.clone().with_compute(ComputeMode::Int8)`).
    #[must_use]
    pub fn with_compute(mut self, compute: ComputeMode) -> Self {
        self.cfg.compute = compute;
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &VrDannConfig {
        &self.cfg
    }

    /// The trained refinement network.
    pub fn nns(&self) -> &NnS {
        &self.nns
    }

    /// Serialises the trained NN-S weights (see [`vrd_nn::save_nns`]); pair
    /// with [`VrDann::from_parts`] to redeploy without retraining.
    pub fn export_nns(&self) -> Vec<u8> {
        vrd_nn::save_nns(&self.nns)
    }

    /// Rebuilds a pipeline from a configuration and serialised NN-S bytes.
    ///
    /// # Errors
    /// Returns [`VrDannError::InvalidConfig`] if the bytes do not hold a
    /// valid model or its width differs from `cfg.nns_hidden`.
    pub fn from_parts(cfg: VrDannConfig, nns_bytes: &[u8]) -> Result<Self> {
        let nns = vrd_nn::load_nns(nns_bytes)
            .map_err(|e| VrDannError::InvalidConfig(format!("bad NN-S model: {e}")))?;
        if nns.hidden() != cfg.nns_hidden {
            return Err(VrDannError::InvalidConfig(format!(
                "model width {} does not match configured {}",
                nns.hidden(),
                cfg.nns_hidden
            )));
        }
        Ok(Self { cfg, nns })
    }

    /// Encodes a sequence with the pipeline's codec settings (convenience
    /// for callers that do not manage bitstreams themselves).
    ///
    /// # Errors
    /// Propagates encoder failures.
    pub fn encode(&self, seq: &Sequence) -> Result<EncodedVideo> {
        Ok(Encoder::new(self.cfg.codec).encode(&seq.frames)?)
    }

    /// Runs video segmentation on an encoded sequence (Fig. 5's flow): the
    /// strict segmentation configuration of the streaming engine.
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_segmentation(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
    ) -> Result<SegmentationRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = SegTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run(source, &[])?;
        Ok(run.into())
    }

    /// Runs the feature-space propagation baseline (Jain & Gonzalez) on an
    /// encoded sequence, through the same streaming engine as
    /// [`VrDann::run_segmentation`]: the staged NN-L runs in full on I/P
    /// anchors and caches its penultimate feature maps in the O(GOP)
    /// window; each B-frame warps those features with its bitstream block
    /// MVs and runs only the network head
    /// ([`crate::trace::ComputeKind::FeatHead`], billed at
    /// [`vrd_nn::NNL_HEAD_FRACTION`] of a full inference). The run's trace
    /// carries [`crate::trace::SchemeKind::FeatProp`] for the fig13-style
    /// comparisons.
    ///
    /// # Errors
    /// Fails on malformed bitstreams or payloads referencing anchors
    /// outside the feature window.
    pub fn run_feature_propagation(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
    ) -> Result<SegmentationRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = crate::featprop::FeatPropTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run(source, &[])?;
        Ok(run.into())
    }

    /// Runs video detection (§III-B): anchor boxes from NN-L are rasterised
    /// into masks, B-frames are reconstructed and refined exactly like
    /// segmentation, and the refined masks are read back as boxes — the
    /// strict detection configuration of the streaming engine.
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_detection(&self, seq: &Sequence, encoded: &EncodedVideo) -> Result<DetectionRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = DetTask::new(
            seq,
            LargeNet::new(self.cfg.detect_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run(source, &[])?;
        Ok(run.into())
    }

    /// Runs segmentation on a (possibly damaged) packetized stream,
    /// degrading gracefully instead of failing — the concealing
    /// segmentation configuration of the streaming engine:
    ///
    /// * a B-frame whose MV payload was **lost** copies the segmentation of
    ///   the nearest reference frame;
    /// * a **salvaged** B payload is reconstructed with uncovered blocks and
    ///   records pointing at missing anchors filled co-located;
    /// * a **lost anchor** is concealed by a nearest-reference copy and
    ///   triggers an NN-L re-inference on the next decodable B-frame to
    ///   re-establish a trusted reference;
    /// * an **NN-S fault** (modelled by [`ResilienceOptions`]) falls back to
    ///   the unrefined blocky reconstruction.
    ///
    /// On a clean stream with `nns_failure_rate == 0` the output is
    /// bit-identical to [`VrDann::run_segmentation`] and
    /// `concealment.is_clean()` holds.
    ///
    /// # Errors
    /// Fails only if the stream *header* is unusable or the sequence and
    /// stream disagree structurally — frame damage never errors.
    pub fn run_segmentation_resilient(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
    ) -> Result<SegmentationRun> {
        let source = ResilientFrameSource::new(stream)?;
        let info = source.info();
        let prepopulate = source.usable_anchor_displays().to_vec();
        let task = SegTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, ConcealingPolicy::new(opts))
            .run(source, &prepopulate)?;
        Ok(run.into())
    }

    /// Runs detection on a (possibly damaged) packetized stream with the
    /// same degradation ladder as [`VrDann::run_segmentation_resilient`]
    /// (lost B payloads copy the nearest reference's detections).
    ///
    /// # Errors
    /// Fails only on an unusable stream header or a structural mismatch.
    pub fn run_detection_resilient(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
    ) -> Result<DetectionRun> {
        let source = ResilientFrameSource::new(stream)?;
        let info = source.info();
        let prepopulate = source.usable_anchor_displays().to_vec();
        let task = DetTask::new(
            seq,
            LargeNet::new(self.cfg.detect_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, ConcealingPolicy::new(opts))
            .run(source, &prepopulate)?;
        Ok(run.into())
    }

    /// [`VrDann::run_segmentation`] on the two-lane pipelined executor
    /// ([`PipelineEngine::run_pipelined`]): the decoder runs on its own
    /// thread and each GOP's B-frame reconstructions fan out across the
    /// wave-front pool. Outputs, trace and concealment counters are
    /// bit-identical to the sequential entry point at every thread count.
    ///
    /// # Errors
    /// As [`VrDann::run_segmentation`].
    pub fn run_segmentation_pipelined(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
        opts: &PipelineOptions,
    ) -> Result<SegmentationRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = SegTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run_pipelined(source, &[], opts)?;
        Ok(run.into())
    }

    /// [`VrDann::run_detection`] on the pipelined executor; bit-identical
    /// to the sequential entry point at every thread count.
    ///
    /// # Errors
    /// As [`VrDann::run_detection`].
    pub fn run_detection_pipelined(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
        opts: &PipelineOptions,
    ) -> Result<DetectionRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = DetTask::new(
            seq,
            LargeNet::new(self.cfg.detect_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run_pipelined(source, &[], opts)?;
        Ok(run.into())
    }

    /// [`VrDann::run_feature_propagation`] on the pipelined executor. The
    /// propagating task consumes B-frames at plan time (feature-space
    /// warps are engine state), so the wave only ever carries the
    /// mask-space ladder's work — still bit-identical at every thread
    /// count.
    ///
    /// # Errors
    /// As [`VrDann::run_feature_propagation`].
    pub fn run_feature_propagation_pipelined(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
        opts: &PipelineOptions,
    ) -> Result<SegmentationRun> {
        let source = StrictFrameSource::new(&encoded.bitstream)?;
        let info = source.info();
        let task = crate::featprop::FeatPropTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, StrictPolicy::default())
            .run_pipelined(source, &[], opts)?;
        Ok(run.into())
    }

    /// [`VrDann::run_segmentation_resilient`] on the pipelined executor.
    /// The degradation ladder (sanitisation, lottery draws, refetches)
    /// executes sequentially in decode order exactly as in the sequential
    /// driver, so concealment statistics are bit-identical too.
    ///
    /// # Errors
    /// As [`VrDann::run_segmentation_resilient`].
    pub fn run_segmentation_resilient_pipelined(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
        pipe: &PipelineOptions,
    ) -> Result<SegmentationRun> {
        let source = ResilientFrameSource::new(stream)?;
        let info = source.info();
        let prepopulate = source.usable_anchor_displays().to_vec();
        let task = SegTask::new(
            seq,
            LargeNet::new(self.cfg.segment_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, ConcealingPolicy::new(opts))
            .run_pipelined(source, &prepopulate, pipe)?;
        Ok(run.into())
    }

    /// [`VrDann::run_detection_resilient`] on the pipelined executor.
    ///
    /// # Errors
    /// As [`VrDann::run_detection_resilient`].
    pub fn run_detection_resilient_pipelined(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
        pipe: &PipelineOptions,
    ) -> Result<DetectionRun> {
        let source = ResilientFrameSource::new(stream)?;
        let info = source.info();
        let prepopulate = source.usable_anchor_displays().to_vec();
        let task = DetTask::new(
            seq,
            LargeNet::new(self.cfg.detect_profile),
            self.cfg.seed,
            &info,
        );
        let run = PipelineEngine::new(&self.cfg, &self.nns, task, ConcealingPolicy::new(opts))
            .run_pipelined(source, &prepopulate, pipe)?;
        Ok(run.into())
    }

    /// Runs segmentation over many (sequence, bitstream) jobs concurrently
    /// — multi-sequence batch serving on `vrd-runtime`'s deterministic,
    /// order-preserving thread pool. Results match per-job
    /// [`VrDann::run_segmentation`] calls exactly, in input order.
    pub fn run_segmentation_batch(
        &self,
        jobs: &[(&Sequence, &EncodedVideo)],
    ) -> Vec<Result<SegmentationRun>> {
        vrd_runtime::parallel_map(jobs, |job| self.run_segmentation(job.0, job.1))
    }

    /// Runs detection over many (sequence, bitstream) jobs concurrently;
    /// the detection counterpart of [`VrDann::run_segmentation_batch`].
    pub fn run_detection_batch(
        &self,
        jobs: &[(&Sequence, &EncodedVideo)],
    ) -> Vec<Result<DetectionRun>> {
        vrd_runtime::parallel_map(jobs, |job| self.run_detection(job.0, job.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ComputeKind;
    use vrd_metrics::score_sequence;
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn tiny_model(task: TrainTask) -> (VrDann, SuiteConfig) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let vr_cfg = VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        };
        (VrDann::train(&train, task, vr_cfg).unwrap(), cfg)
    }

    #[test]
    fn segmentation_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(run.masks.len(), seq.len());
        assert_eq!(run.trace.frames.len(), seq.len());
        // Accuracy sanity: must beat a trivial all-background predictor.
        let scores = score_sequence(&run.masks, &seq.gt_masks);
        assert!(scores.iou > 0.5, "IoU too low: {:.3}", scores.iou);
        // The trace must contain both work kinds.
        let n_b = run
            .trace
            .frames
            .iter()
            .filter(|f| matches!(f.kind, ComputeKind::NnSRefine { .. }))
            .count();
        assert_eq!(n_b, encoded.stats.b_frames);
        // B-frames are never fully decoded in this pipeline.
        assert!(run
            .trace
            .frames
            .iter()
            .all(|f| f.full_decode == f.ftype.is_anchor()));
    }

    #[test]
    fn refinement_improves_over_raw_reconstruction() {
        let (refined, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = refined.encode(&seq).unwrap();
        let run_ref = refined.run_segmentation(&seq, &encoded).unwrap();

        let mut raw = refined.clone();
        raw.cfg.refine = false;
        let run_raw = raw.run_segmentation(&seq, &encoded).unwrap();

        let s_ref = score_sequence(&run_ref.masks, &seq.gt_masks);
        let s_raw = score_sequence(&run_raw.masks, &seq.gt_masks);
        assert!(
            s_ref.iou >= s_raw.iou - 0.01,
            "refined {:.3} much worse than raw {:.3}",
            s_ref.iou,
            s_raw.iou
        );
    }

    #[test]
    fn detection_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Detection);
        let seq = davis_sequence("camel", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_detection(&seq, &encoded).unwrap();
        assert_eq!(run.detections.len(), seq.len());
        // Most frames should have at least one detection.
        let with_dets = run.detections.iter().filter(|d| !d.is_empty()).count();
        assert!(with_dets > seq.len() * 2 / 3, "{with_dets}/{}", seq.len());
    }

    #[test]
    fn export_import_preserves_pipeline_outputs() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("goat", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let original = model.run_segmentation(&seq, &encoded).unwrap();

        let bytes = model.export_nns();
        let restored = VrDann::from_parts(*model.config(), &bytes).unwrap();
        let replayed = restored.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(original.masks, replayed.masks);

        // Width mismatch is rejected.
        let mut wrong = *model.config();
        wrong.nns_hidden += 1;
        assert!(VrDann::from_parts(wrong, &bytes).is_err());
        assert!(VrDann::from_parts(*model.config(), b"junk").is_err());
    }

    #[test]
    fn adaptive_fallback_reroutes_fast_b_frames_to_nnl() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("parkour", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();

        let run_plain = model.run_segmentation(&seq, &encoded).unwrap();
        let mut fb = model.clone();
        fb.cfg.fallback_mv_threshold = Some(1.5);
        let run_fb = fb.run_segmentation(&seq, &encoded).unwrap();

        // Some B-frames must have been rerouted to NN-L.
        let nnl_frames = |run: &SegmentationRun| {
            run.trace
                .frames
                .iter()
                .filter(|f| matches!(f.kind, ComputeKind::NnL { .. }))
                .count()
        };
        assert!(
            nnl_frames(&run_fb) > nnl_frames(&run_plain),
            "fallback rerouted nothing"
        );
        // Accuracy must not degrade on a fast sequence.
        let s_plain = score_sequence(&run_plain.masks, &seq.gt_masks);
        let s_fb = score_sequence(&run_fb.masks, &seq.gt_masks);
        assert!(
            s_fb.iou >= s_plain.iou - 0.005,
            "fallback hurt accuracy: {:.3} vs {:.3}",
            s_fb.iou,
            s_plain.iou
        );
        // An absurd threshold reroutes nothing.
        let mut noop = model.clone();
        noop.cfg.fallback_mv_threshold = Some(1e6);
        let run_noop = noop.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(nnl_frames(&run_noop), nnl_frames(&run_plain));
    }

    #[test]
    fn int8_mode_matches_f32_work_and_tracks_masks() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        assert!(model.nns().act_scales().is_some(), "training calibrates");
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let f32_run = model.run_segmentation(&seq, &encoded).unwrap();
        let int8 = model.clone().with_compute(ComputeMode::Int8);
        let int8_run = int8.run_segmentation(&seq, &encoded).unwrap();
        // The NPU accounting is mode-invariant: identical traces.
        assert_eq!(f32_run.trace, int8_run.trace);
        assert_eq!(f32_run.masks.len(), int8_run.masks.len());
        // The masks themselves must stay close: quantization may flip
        // borderline pixels but not reshape the segmentation.
        let total: usize = f32_run.masks.iter().map(|m| m.width() * m.height()).sum();
        let flipped: usize = f32_run
            .masks
            .iter()
            .zip(&int8_run.masks)
            .map(|(a, b)| {
                a.words()
                    .iter()
                    .zip(b.words())
                    .map(|(x, y)| (x ^ y).count_ones() as usize)
                    .sum::<usize>()
            })
            .sum();
        assert!(
            (flipped as f64) < 0.01 * total as f64,
            "{flipped}/{total} mask pixels flipped under int8"
        );
    }

    #[test]
    fn training_requires_b_frames() {
        let cfg = SuiteConfig::tiny();
        let mut seq = davis_sequence("cows", &cfg).unwrap();
        // One frame -> a single I frame -> no B-frames anywhere.
        seq.frames.truncate(1);
        seq.gt_masks.truncate(1);
        seq.gt_boxes.truncate(1);
        let err = VrDann::train(&[seq], TrainTask::Segmentation, VrDannConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn batch_runs_match_sequential_runs() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let names = ["cows", "dog", "goat"];
        let seqs: Vec<Sequence> = names
            .iter()
            .map(|n| davis_sequence(n, &cfg).unwrap())
            .collect();
        let encoded: Vec<EncodedVideo> = seqs.iter().map(|s| model.encode(s).unwrap()).collect();
        let jobs: Vec<(&Sequence, &EncodedVideo)> = seqs.iter().zip(encoded.iter()).collect();
        let batch = model.run_segmentation_batch(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for ((seq, ev), out) in jobs.iter().zip(batch) {
            let solo = model.run_segmentation(seq, ev).unwrap();
            let out = out.unwrap();
            assert_eq!(out.masks, solo.masks);
            assert_eq!(out.trace, solo.trace);
        }
    }
}
