//! The VR-DANN pipeline (Fig. 5): decode anchors, segment them with NN-L,
//! reconstruct B-frames from motion vectors, refine with NN-S.

use crate::components::{boxes_to_mask, extract_components};
use crate::error::{Result, VrDannError};
use crate::recon::{plane_to_mask, reconstruct_b_frame, ReconConfig};
use crate::sandwich::{build_reconstruction_only, build_sandwich};
use crate::trace::{ComputeKind, SchemeKind, SchemeTrace, TraceFrame};
use std::collections::BTreeMap;
use vrd_codec::{CodecConfig, Decoder, EncodedVideo, Encoder, FrameType};
use vrd_nn::{trainer, LargeNet, LargeNetProfile, NnS, Sample, Tensor, TrainConfig};
use vrd_video::texture::hash2;
use vrd_video::{Detection, SegMask, Sequence};

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct VrDannConfig {
    /// Encoder settings (B ratio, search interval `n`, standard — the
    /// paper's Figs. 15–17 knobs).
    pub codec: CodecConfig,
    /// NN-S hidden channel width.
    pub nns_hidden: usize,
    /// NN-S training recipe (paper: 2 epochs).
    pub train: TrainConfig,
    /// Run NN-S refinement on B-frames (off = raw reconstruction ablation).
    pub refine: bool,
    /// Use the sandwich input (off = reconstruction-only ablation).
    pub sandwich: bool,
    /// Reconstruction options (mean filter et al.).
    pub recon: ReconConfig,
    /// The NN-L used on anchor frames for segmentation (paper: FAVOS's
    /// ROI-SegNet).
    pub segment_profile: LargeNetProfile,
    /// The NN-L used on anchor frames for detection.
    pub detect_profile: LargeNetProfile,
    /// Seed for NN-S initialisation and the NN-L oracles.
    pub seed: u64,
    /// Optional adaptive fallback (§VI-A: "we can always refine the VR-DANN
    /// algorithm with fewer B-frame reconstruction while treating some
    /// B-frames as I/P-frames to pass through NN-L"). A B-frame whose mean
    /// 90th-percentile motion-vector magnitude exceeds this many pixels is
    /// fully decoded
    /// and segmented by NN-L instead of reconstructed — trading performance
    /// for accuracy on fast motion.
    pub fallback_mv_threshold: Option<f32>,
}

impl Default for VrDannConfig {
    fn default() -> Self {
        Self {
            codec: CodecConfig::default(),
            nns_hidden: 8,
            train: TrainConfig::default(),
            refine: true,
            sandwich: true,
            recon: ReconConfig::default(),
            segment_profile: LargeNetProfile::favos(),
            detect_profile: LargeNetProfile::selsa(),
            seed: 0xda77,
            fallback_mv_threshold: None,
        }
    }
}

/// The result of running the pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct SegmentationRun {
    /// Segmentation mask per frame, display order.
    pub masks: Vec<SegMask>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
}

/// The result of running the detection pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct DetectionRun {
    /// Scored detections per frame, display order.
    pub detections: Vec<Vec<Detection>>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
}

/// 90th-percentile motion-vector magnitude of a B-frame's records (0 when
/// empty). The percentile, not the mean, captures "how fast is the moving
/// object" — most blocks of a frame are static background with zero motion.
fn p90_mv_magnitude(mvs: &[vrd_codec::MvRecord]) -> f64 {
    if mvs.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f64> = mvs.iter().map(|m| m.magnitude()).collect();
    mags.sort_unstable_by(|a, b| a.partial_cmp(b).expect("magnitudes are finite"));
    mags[(mags.len() * 9 / 10).min(mags.len() - 1)]
}

/// A trained VR-DANN pipeline instance.
#[derive(Debug, Clone)]
pub struct VrDann {
    cfg: VrDannConfig,
    nns: NnS,
}

/// What the pipeline was trained to refine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainTask {
    /// Pixel-accurate object masks (DAVIS-style).
    Segmentation,
    /// Rasterised detection rectangles (VID-style).
    Detection,
}

impl VrDann {
    /// Trains NN-S exactly as §III-B prescribes: encode the training
    /// sequences, reconstruct their B-frames from the **ground-truth** I/P
    /// masks plus motion vectors, feed the sandwich as input and the B-frame
    /// ground truth as label, two epochs.
    ///
    /// # Errors
    /// Fails if encoding fails or the training set contains no B-frames.
    pub fn train(train_seqs: &[Sequence], task: TrainTask, cfg: VrDannConfig) -> Result<Self> {
        let encoder = Encoder::new(cfg.codec);
        let decoder = Decoder::new();
        let mut samples = Vec::new();
        for seq in train_seqs {
            let ev = encoder.encode(&seq.frames)?;
            let rec = decoder.decode_for_recognition(&ev.bitstream)?;
            let gt_mask = |d: usize| -> SegMask {
                match task {
                    TrainTask::Segmentation => seq.gt_masks[d].clone(),
                    TrainTask::Detection => {
                        boxes_to_mask(&seq.gt_boxes[d], seq.width(), seq.height())
                    }
                }
            };
            let ref_segs: BTreeMap<u32, SegMask> = rec
                .anchors
                .iter()
                .map(|(d, _)| (*d, gt_mask(*d as usize)))
                .collect();
            for info in &rec.b_frames {
                let plane = reconstruct_b_frame(
                    info,
                    &ref_segs,
                    rec.width,
                    rec.height,
                    rec.mb_size,
                    &cfg.recon,
                )?;
                let input = if cfg.sandwich {
                    build_sandwich(info.display_idx, &plane, &ref_segs)?
                } else {
                    build_reconstruction_only(&plane)
                };
                let target = Tensor::from_mask(&gt_mask(info.display_idx as usize));
                samples.push(Sample { input, target });
            }
        }
        if samples.is_empty() {
            return Err(VrDannError::BadInput(
                "training sequences produced no B-frames".into(),
            ));
        }
        let mut nns = NnS::new(cfg.nns_hidden, cfg.seed);
        trainer::train(&mut nns, &samples, &cfg.train);
        Ok(Self { cfg, nns })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &VrDannConfig {
        &self.cfg
    }

    /// The trained refinement network.
    pub fn nns(&self) -> &NnS {
        &self.nns
    }

    /// Serialises the trained NN-S weights (see [`vrd_nn::save_nns`]); pair
    /// with [`VrDann::from_parts`] to redeploy without retraining.
    pub fn export_nns(&self) -> Vec<u8> {
        vrd_nn::save_nns(&self.nns)
    }

    /// Rebuilds a pipeline from a configuration and serialised NN-S bytes.
    ///
    /// # Errors
    /// Returns [`VrDannError::InvalidConfig`] if the bytes do not hold a
    /// valid model or its width differs from `cfg.nns_hidden`.
    pub fn from_parts(cfg: VrDannConfig, nns_bytes: &[u8]) -> Result<Self> {
        let nns = vrd_nn::load_nns(nns_bytes)
            .map_err(|e| VrDannError::InvalidConfig(format!("bad NN-S model: {e}")))?;
        if nns.hidden() != cfg.nns_hidden {
            return Err(VrDannError::InvalidConfig(format!(
                "model width {} does not match configured {}",
                nns.hidden(),
                cfg.nns_hidden
            )));
        }
        Ok(Self { cfg, nns })
    }

    /// Encodes a sequence with the pipeline's codec settings (convenience
    /// for callers that do not manage bitstreams themselves).
    ///
    /// # Errors
    /// Propagates encoder failures.
    pub fn encode(&self, seq: &Sequence) -> Result<EncodedVideo> {
        Ok(Encoder::new(self.cfg.codec).encode(&seq.frames)?)
    }

    /// Runs video segmentation on an encoded sequence (Fig. 5's flow).
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_segmentation(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
    ) -> Result<SegmentationRun> {
        let rec = Decoder::new().decode_for_recognition(&encoded.bitstream)?;
        let nnl = LargeNet::new(self.cfg.segment_profile);
        let (w, h) = (rec.width, rec.height);

        // NN-L on every anchor. The oracle consumes the ground-truth mask —
        // it stands in for running the trained large network on the decoded
        // anchor pixels (DESIGN.md §2).
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &rec.anchors {
            let seed = hash2(*display as i64, 0, self.cfg.seed);
            ref_segs.insert(
                *display,
                nnl.segment(&seq.gt_masks[*display as usize], seed),
            );
        }

        let mut masks: Vec<Option<SegMask>> = vec![None; seq.len()];
        for (d, m) in &ref_segs {
            masks[*d as usize] = Some(m.clone());
        }

        let per_anchor_bytes = rec.anchor_bytes / rec.anchors.len().max(1);
        let per_b_bytes = rec.b_bytes / rec.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut frames = Vec::with_capacity(seq.len());
        let mut b_iter = rec.b_frames.iter();
        for meta in &rec.metas {
            if meta.ftype.is_anchor() {
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: meta.ftype,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_anchor_bytes,
                });
            } else {
                let info = b_iter
                    .next()
                    .expect("decode order lists every B-frame exactly once");
                // Adaptive fallback: fast-moving B-frames go through NN-L.
                if let Some(threshold) = self.cfg.fallback_mv_threshold {
                    if p90_mv_magnitude(&info.mvs) > threshold as f64 {
                        let seed = hash2(info.display_idx as i64, 2, self.cfg.seed);
                        let mask = nnl.segment(&seq.gt_masks[info.display_idx as usize], seed);
                        ref_segs.insert(info.display_idx, mask.clone());
                        masks[info.display_idx as usize] = Some(mask);
                        frames.push(TraceFrame {
                            display: meta.display_idx,
                            ftype: FrameType::B,
                            kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                            full_decode: true,
                            bitstream_bytes: per_b_bytes,
                        });
                        continue;
                    }
                }
                let plane =
                    reconstruct_b_frame(info, &ref_segs, w, h, rec.mb_size, &self.cfg.recon)?;
                let mask = if self.cfg.refine {
                    let input = if self.cfg.sandwich {
                        build_sandwich(info.display_idx, &plane, &ref_segs)?
                    } else {
                        build_reconstruction_only(&plane)
                    };
                    self.nns.infer(&input).to_mask(0.5)
                } else {
                    plane_to_mask(&plane, &self.cfg.recon)
                };
                masks[info.display_idx as usize] = Some(mask);
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnSRefine {
                        ops: if self.cfg.refine { nns_ops } else { 0 },
                        mvs: info.mvs.clone(),
                    },
                    full_decode: false,
                    bitstream_bytes: per_b_bytes,
                });
            }
        }

        let masks = masks
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never segmented")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SegmentationRun {
            masks,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: rec.mb_size,
                frames,
            },
        })
    }

    /// Runs video detection (§III-B): anchor boxes from NN-L are rasterised
    /// into masks, B-frames are reconstructed and refined exactly like
    /// segmentation, and the refined masks are read back as boxes.
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_detection(&self, seq: &Sequence, encoded: &EncodedVideo) -> Result<DetectionRun> {
        let rec = Decoder::new().decode_for_recognition(&encoded.bitstream)?;
        let nnl = LargeNet::new(self.cfg.detect_profile);
        let (w, h) = (rec.width, rec.height);
        let min_component = (rec.mb_size * rec.mb_size) / 2;

        let mut anchor_dets: BTreeMap<u32, Vec<Detection>> = BTreeMap::new();
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &rec.anchors {
            let seed = hash2(*display as i64, 1, self.cfg.seed);
            let dets = nnl.detect(&seq.gt_boxes[*display as usize], w, h, seed);
            let boxes: Vec<_> = dets.iter().map(|d| d.rect).collect();
            ref_segs.insert(*display, boxes_to_mask(&boxes, w, h));
            anchor_dets.insert(*display, dets);
        }

        let mut detections: Vec<Option<Vec<Detection>>> = vec![None; seq.len()];
        for (d, dets) in &anchor_dets {
            detections[*d as usize] = Some(dets.clone());
        }

        let per_anchor_bytes = rec.anchor_bytes / rec.anchors.len().max(1);
        let per_b_bytes = rec.b_bytes / rec.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut frames = Vec::with_capacity(seq.len());
        let mut b_iter = rec.b_frames.iter();
        for meta in &rec.metas {
            if meta.ftype.is_anchor() {
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: meta.ftype,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_anchor_bytes,
                });
            } else {
                let info = b_iter
                    .next()
                    .expect("decode order lists every B-frame exactly once");
                let plane =
                    reconstruct_b_frame(info, &ref_segs, w, h, rec.mb_size, &self.cfg.recon)?;
                let mask = if self.cfg.refine {
                    let input = if self.cfg.sandwich {
                        build_sandwich(info.display_idx, &plane, &ref_segs)?
                    } else {
                        build_reconstruction_only(&plane)
                    };
                    self.nns.infer(&input).to_mask(0.5)
                } else {
                    plane_to_mask(&plane, &self.cfg.recon)
                };
                detections[info.display_idx as usize] =
                    Some(extract_components(&mask, min_component));
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnSRefine {
                        ops: if self.cfg.refine { nns_ops } else { 0 },
                        mvs: info.mvs.clone(),
                    },
                    full_decode: false,
                    bitstream_bytes: per_b_bytes,
                });
            }
        }

        let detections = detections
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                d.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never detected")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DetectionRun {
            detections,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: rec.mb_size,
                frames,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_metrics::score_sequence;
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn tiny_model(task: TrainTask) -> (VrDann, SuiteConfig) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let vr_cfg = VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        };
        (VrDann::train(&train, task, vr_cfg).unwrap(), cfg)
    }

    #[test]
    fn segmentation_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(run.masks.len(), seq.len());
        assert_eq!(run.trace.frames.len(), seq.len());
        // Accuracy sanity: must beat a trivial all-background predictor.
        let scores = score_sequence(&run.masks, &seq.gt_masks);
        assert!(scores.iou > 0.5, "IoU too low: {:.3}", scores.iou);
        // The trace must contain both work kinds.
        let n_b = run
            .trace
            .frames
            .iter()
            .filter(|f| matches!(f.kind, ComputeKind::NnSRefine { .. }))
            .count();
        assert_eq!(n_b, encoded.stats.b_frames);
        // B-frames are never fully decoded in this pipeline.
        assert!(run
            .trace
            .frames
            .iter()
            .all(|f| f.full_decode == f.ftype.is_anchor()));
    }

    #[test]
    fn refinement_improves_over_raw_reconstruction() {
        let (refined, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = refined.encode(&seq).unwrap();
        let run_ref = refined.run_segmentation(&seq, &encoded).unwrap();

        let mut raw = refined.clone();
        raw.cfg.refine = false;
        let run_raw = raw.run_segmentation(&seq, &encoded).unwrap();

        let s_ref = score_sequence(&run_ref.masks, &seq.gt_masks);
        let s_raw = score_sequence(&run_raw.masks, &seq.gt_masks);
        assert!(
            s_ref.iou >= s_raw.iou - 0.01,
            "refined {:.3} much worse than raw {:.3}",
            s_ref.iou,
            s_raw.iou
        );
    }

    #[test]
    fn detection_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Detection);
        let seq = davis_sequence("camel", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_detection(&seq, &encoded).unwrap();
        assert_eq!(run.detections.len(), seq.len());
        // Most frames should have at least one detection.
        let with_dets = run.detections.iter().filter(|d| !d.is_empty()).count();
        assert!(with_dets > seq.len() * 2 / 3, "{with_dets}/{}", seq.len());
    }

    #[test]
    fn export_import_preserves_pipeline_outputs() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("goat", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let original = model.run_segmentation(&seq, &encoded).unwrap();

        let bytes = model.export_nns();
        let restored = VrDann::from_parts(*model.config(), &bytes).unwrap();
        let replayed = restored.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(original.masks, replayed.masks);

        // Width mismatch is rejected.
        let mut wrong = *model.config();
        wrong.nns_hidden += 1;
        assert!(VrDann::from_parts(wrong, &bytes).is_err());
        assert!(VrDann::from_parts(*model.config(), b"junk").is_err());
    }

    #[test]
    fn adaptive_fallback_reroutes_fast_b_frames_to_nnl() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("parkour", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();

        let run_plain = model.run_segmentation(&seq, &encoded).unwrap();
        let mut fb = model.clone();
        fb.cfg.fallback_mv_threshold = Some(1.5);
        let run_fb = fb.run_segmentation(&seq, &encoded).unwrap();

        // Some B-frames must have been rerouted to NN-L.
        let nnl_frames = |run: &SegmentationRun| {
            run.trace
                .frames
                .iter()
                .filter(|f| matches!(f.kind, ComputeKind::NnL { .. }))
                .count()
        };
        assert!(
            nnl_frames(&run_fb) > nnl_frames(&run_plain),
            "fallback rerouted nothing"
        );
        // Accuracy must not degrade on a fast sequence.
        let s_plain = score_sequence(&run_plain.masks, &seq.gt_masks);
        let s_fb = score_sequence(&run_fb.masks, &seq.gt_masks);
        assert!(
            s_fb.iou >= s_plain.iou - 0.005,
            "fallback hurt accuracy: {:.3} vs {:.3}",
            s_fb.iou,
            s_plain.iou
        );
        // An absurd threshold reroutes nothing.
        let mut noop = model.clone();
        noop.cfg.fallback_mv_threshold = Some(1e6);
        let run_noop = noop.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(nnl_frames(&run_noop), nnl_frames(&run_plain));
    }

    #[test]
    fn training_requires_b_frames() {
        let cfg = SuiteConfig::tiny();
        let mut seq = davis_sequence("cows", &cfg).unwrap();
        // One frame -> a single I frame -> no B-frames anywhere.
        seq.frames.truncate(1);
        seq.gt_masks.truncate(1);
        seq.gt_boxes.truncate(1);
        let err = VrDann::train(&[seq], TrainTask::Segmentation, VrDannConfig::default());
        assert!(err.is_err());
    }
}
