//! The VR-DANN pipeline (Fig. 5): decode anchors, segment them with NN-L,
//! reconstruct B-frames from motion vectors, refine with NN-S.

use crate::components::{boxes_to_mask, extract_components};
use crate::error::{Result, VrDannError};
use crate::recon::{plane_to_mask, reconstruct_b_frame, ReconConfig};
use crate::sandwich::{build_reconstruction_only, build_sandwich};
use crate::trace::{ComputeKind, ConcealmentStats, SchemeKind, SchemeTrace, TraceFrame};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::faults::PacketStream;
use vrd_codec::{
    CodecConfig, ConcealReason, DecodeOutcome, Decoder, EncodedVideo, Encoder, FrameType,
};
use vrd_nn::{trainer, LargeNet, LargeNetProfile, NnS, Sample, Tensor, TrainConfig};
use vrd_video::texture::hash2;
use vrd_video::{Detection, SegMask, Sequence};

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct VrDannConfig {
    /// Encoder settings (B ratio, search interval `n`, standard — the
    /// paper's Figs. 15–17 knobs).
    pub codec: CodecConfig,
    /// NN-S hidden channel width.
    pub nns_hidden: usize,
    /// NN-S training recipe (paper: 2 epochs).
    pub train: TrainConfig,
    /// Run NN-S refinement on B-frames (off = raw reconstruction ablation).
    pub refine: bool,
    /// Use the sandwich input (off = reconstruction-only ablation).
    pub sandwich: bool,
    /// Reconstruction options (mean filter et al.).
    pub recon: ReconConfig,
    /// The NN-L used on anchor frames for segmentation (paper: FAVOS's
    /// ROI-SegNet).
    pub segment_profile: LargeNetProfile,
    /// The NN-L used on anchor frames for detection.
    pub detect_profile: LargeNetProfile,
    /// Seed for NN-S initialisation and the NN-L oracles.
    pub seed: u64,
    /// Optional adaptive fallback (§VI-A: "we can always refine the VR-DANN
    /// algorithm with fewer B-frame reconstruction while treating some
    /// B-frames as I/P-frames to pass through NN-L"). A B-frame whose mean
    /// 90th-percentile motion-vector magnitude exceeds this many pixels is
    /// fully decoded
    /// and segmented by NN-L instead of reconstructed — trading performance
    /// for accuracy on fast motion.
    pub fallback_mv_threshold: Option<f32>,
}

impl Default for VrDannConfig {
    fn default() -> Self {
        Self {
            codec: CodecConfig::default(),
            nns_hidden: 8,
            train: TrainConfig::default(),
            refine: true,
            sandwich: true,
            recon: ReconConfig::default(),
            segment_profile: LargeNetProfile::favos(),
            detect_profile: LargeNetProfile::selsa(),
            seed: 0xda77,
            fallback_mv_threshold: None,
        }
    }
}

/// The result of running the pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct SegmentationRun {
    /// Segmentation mask per frame, display order.
    pub masks: Vec<SegMask>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
    /// What the run had to conceal (all zero for the strict pipeline).
    pub concealment: ConcealmentStats,
}

/// The result of running the detection pipeline on one sequence.
#[derive(Debug, Clone)]
pub struct DetectionRun {
    /// Scored detections per frame, display order.
    pub detections: Vec<Vec<Detection>>,
    /// Workload trace for the architecture simulator.
    pub trace: SchemeTrace,
    /// What the run had to conceal (all zero for the strict pipeline).
    pub concealment: ConcealmentStats,
}

/// Degradation-policy knobs for the resilient pipeline entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceOptions {
    /// Per-B-frame probability that the NN-S inference itself faults (a
    /// model of accelerator soft errors); a faulted inference falls back to
    /// the unrefined blocky reconstruction. 0 disables the model entirely.
    pub nns_failure_rate: f64,
    /// Seed for the NN-S fault lottery.
    pub seed: u64,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        Self {
            nns_failure_rate: 0.0,
            seed: 0x5eed,
        }
    }
}

/// 90th-percentile motion-vector magnitude of a B-frame's records (0 when
/// empty). The percentile, not the mean, captures "how fast is the moving
/// object" — most blocks of a frame are static background with zero motion.
fn p90_mv_magnitude(mvs: &[vrd_codec::MvRecord]) -> f64 {
    if mvs.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f64> = mvs.iter().map(|m| m.magnitude()).collect();
    mags.sort_unstable_by(f64::total_cmp);
    mags[(mags.len() * 9 / 10).min(mags.len() - 1)]
}

/// Rewrites a (possibly salvaged) B-frame payload against the references
/// that actually decoded: MV records pointing at anchors with no
/// segmentation, and blocks the payload never covered at all, are demoted to
/// intra blocks so reconstruction falls back to the co-located block of the
/// nearest reference — the classic error-concealment fill. On a clean frame
/// with every reference present this is the identity.
fn sanitize_b_info(
    info: &BFrameInfo,
    ref_segs: &BTreeMap<u32, SegMask>,
    width: usize,
    height: usize,
    mb: usize,
) -> BFrameInfo {
    let cols = width / mb;
    let rows = height / mb;
    let mut covered = vec![false; cols * rows];
    let mark = |covered: &mut Vec<bool>, x: u32, y: u32| {
        let idx = (y as usize / mb) * cols + x as usize / mb;
        if let Some(c) = covered.get_mut(idx) {
            *c = true;
        }
    };
    let mut out = BFrameInfo {
        display_idx: info.display_idx,
        mvs: Vec::with_capacity(info.mvs.len()),
        intra_blocks: info.intra_blocks.clone(),
    };
    for &(bx, by) in &info.intra_blocks {
        mark(&mut covered, bx, by);
    }
    for mv in &info.mvs {
        mark(&mut covered, mv.dst_x, mv.dst_y);
        let refs_present = ref_segs.contains_key(&mv.ref0.frame)
            && mv.ref1.is_none_or(|r| ref_segs.contains_key(&r.frame));
        if refs_present {
            out.mvs.push(*mv);
        } else {
            out.intra_blocks.push((mv.dst_x, mv.dst_y));
        }
    }
    for by in 0..rows {
        for bx in 0..cols {
            if !covered[by * cols + bx] {
                out.intra_blocks.push(((bx * mb) as u32, (by * mb) as u32));
            }
        }
    }
    out
}

/// The segmentation of the display-nearest entry of `refs` (empty mask when
/// there is nothing to copy from — a stream with every anchor lost).
fn nearest_mask(refs: &BTreeMap<u32, SegMask>, display: u32, w: usize, h: usize) -> SegMask {
    refs.iter()
        .min_by_key(|(d, _)| d.abs_diff(display))
        .map(|(_, m)| m.clone())
        .unwrap_or_else(|| SegMask::new(w, h))
}

/// A trained VR-DANN pipeline instance.
#[derive(Debug, Clone)]
pub struct VrDann {
    cfg: VrDannConfig,
    nns: NnS,
}

/// What the pipeline was trained to refine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainTask {
    /// Pixel-accurate object masks (DAVIS-style).
    Segmentation,
    /// Rasterised detection rectangles (VID-style).
    Detection,
}

impl VrDann {
    /// Trains NN-S exactly as §III-B prescribes: encode the training
    /// sequences, reconstruct their B-frames from the **ground-truth** I/P
    /// masks plus motion vectors, feed the sandwich as input and the B-frame
    /// ground truth as label, two epochs.
    ///
    /// # Errors
    /// Fails if encoding fails or the training set contains no B-frames.
    pub fn train(train_seqs: &[Sequence], task: TrainTask, cfg: VrDannConfig) -> Result<Self> {
        let encoder = Encoder::new(cfg.codec);
        let decoder = Decoder::new();
        let mut samples = Vec::new();
        for seq in train_seqs {
            let ev = encoder.encode(&seq.frames)?;
            let rec = decoder.decode_for_recognition(&ev.bitstream)?;
            let gt_mask = |d: usize| -> SegMask {
                match task {
                    TrainTask::Segmentation => seq.gt_masks[d].clone(),
                    TrainTask::Detection => {
                        boxes_to_mask(&seq.gt_boxes[d], seq.width(), seq.height())
                    }
                }
            };
            let ref_segs: BTreeMap<u32, SegMask> = rec
                .anchors
                .iter()
                .map(|(d, _)| (*d, gt_mask(*d as usize)))
                .collect();
            for info in &rec.b_frames {
                let plane = reconstruct_b_frame(
                    info,
                    &ref_segs,
                    rec.width,
                    rec.height,
                    rec.mb_size,
                    &cfg.recon,
                )?;
                let input = if cfg.sandwich {
                    build_sandwich(info.display_idx, &plane, &ref_segs)?
                } else {
                    build_reconstruction_only(&plane)
                };
                let target = Tensor::from_mask(&gt_mask(info.display_idx as usize));
                samples.push(Sample { input, target });
            }
        }
        if samples.is_empty() {
            return Err(VrDannError::BadInput(
                "training sequences produced no B-frames".into(),
            ));
        }
        let mut nns = NnS::new(cfg.nns_hidden, cfg.seed);
        trainer::train(&mut nns, &samples, &cfg.train);
        Ok(Self { cfg, nns })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &VrDannConfig {
        &self.cfg
    }

    /// The trained refinement network.
    pub fn nns(&self) -> &NnS {
        &self.nns
    }

    /// Serialises the trained NN-S weights (see [`vrd_nn::save_nns`]); pair
    /// with [`VrDann::from_parts`] to redeploy without retraining.
    pub fn export_nns(&self) -> Vec<u8> {
        vrd_nn::save_nns(&self.nns)
    }

    /// Rebuilds a pipeline from a configuration and serialised NN-S bytes.
    ///
    /// # Errors
    /// Returns [`VrDannError::InvalidConfig`] if the bytes do not hold a
    /// valid model or its width differs from `cfg.nns_hidden`.
    pub fn from_parts(cfg: VrDannConfig, nns_bytes: &[u8]) -> Result<Self> {
        let nns = vrd_nn::load_nns(nns_bytes)
            .map_err(|e| VrDannError::InvalidConfig(format!("bad NN-S model: {e}")))?;
        if nns.hidden() != cfg.nns_hidden {
            return Err(VrDannError::InvalidConfig(format!(
                "model width {} does not match configured {}",
                nns.hidden(),
                cfg.nns_hidden
            )));
        }
        Ok(Self { cfg, nns })
    }

    /// Encodes a sequence with the pipeline's codec settings (convenience
    /// for callers that do not manage bitstreams themselves).
    ///
    /// # Errors
    /// Propagates encoder failures.
    pub fn encode(&self, seq: &Sequence) -> Result<EncodedVideo> {
        Ok(Encoder::new(self.cfg.codec).encode(&seq.frames)?)
    }

    /// Runs video segmentation on an encoded sequence (Fig. 5's flow).
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_segmentation(
        &self,
        seq: &Sequence,
        encoded: &EncodedVideo,
    ) -> Result<SegmentationRun> {
        let rec = Decoder::new().decode_for_recognition(&encoded.bitstream)?;
        let nnl = LargeNet::new(self.cfg.segment_profile);
        let (w, h) = (rec.width, rec.height);

        // NN-L on every anchor. The oracle consumes the ground-truth mask —
        // it stands in for running the trained large network on the decoded
        // anchor pixels (DESIGN.md §2).
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &rec.anchors {
            let seed = hash2(*display as i64, 0, self.cfg.seed);
            ref_segs.insert(
                *display,
                nnl.segment(&seq.gt_masks[*display as usize], seed),
            );
        }

        let mut masks: Vec<Option<SegMask>> = vec![None; seq.len()];
        for (d, m) in &ref_segs {
            masks[*d as usize] = Some(m.clone());
        }

        let per_anchor_bytes = rec.anchor_bytes / rec.anchors.len().max(1);
        let per_b_bytes = rec.b_bytes / rec.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut frames = Vec::with_capacity(seq.len());
        let mut b_iter = rec.b_frames.iter();
        for meta in &rec.metas {
            if meta.ftype.is_anchor() {
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: meta.ftype,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_anchor_bytes,
                });
            } else {
                let info = b_iter.next().ok_or_else(|| {
                    VrDannError::BadInput(
                        "decode order lists more B-frames than the stream carries".into(),
                    )
                })?;
                // Adaptive fallback: fast-moving B-frames go through NN-L.
                if let Some(threshold) = self.cfg.fallback_mv_threshold {
                    if p90_mv_magnitude(&info.mvs) > threshold as f64 {
                        let seed = hash2(info.display_idx as i64, 2, self.cfg.seed);
                        let mask = nnl.segment(&seq.gt_masks[info.display_idx as usize], seed);
                        ref_segs.insert(info.display_idx, mask.clone());
                        masks[info.display_idx as usize] = Some(mask);
                        frames.push(TraceFrame {
                            display: meta.display_idx,
                            ftype: FrameType::B,
                            kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                            full_decode: true,
                            bitstream_bytes: per_b_bytes,
                        });
                        continue;
                    }
                }
                let plane =
                    reconstruct_b_frame(info, &ref_segs, w, h, rec.mb_size, &self.cfg.recon)?;
                let mask = if self.cfg.refine {
                    let input = if self.cfg.sandwich {
                        build_sandwich(info.display_idx, &plane, &ref_segs)?
                    } else {
                        build_reconstruction_only(&plane)
                    };
                    self.nns.infer(&input).to_mask(0.5)
                } else {
                    plane_to_mask(&plane, &self.cfg.recon)
                };
                masks[info.display_idx as usize] = Some(mask);
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnSRefine {
                        ops: if self.cfg.refine { nns_ops } else { 0 },
                        mvs: info.mvs.clone(),
                    },
                    full_decode: false,
                    bitstream_bytes: per_b_bytes,
                });
            }
        }

        let masks = masks
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never segmented")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SegmentationRun {
            masks,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: rec.mb_size,
                frames,
            },
            concealment: ConcealmentStats::default(),
        })
    }

    /// Runs video detection (§III-B): anchor boxes from NN-L are rasterised
    /// into masks, B-frames are reconstructed and refined exactly like
    /// segmentation, and the refined masks are read back as boxes.
    ///
    /// # Errors
    /// Fails on malformed bitstreams or missing references.
    pub fn run_detection(&self, seq: &Sequence, encoded: &EncodedVideo) -> Result<DetectionRun> {
        let rec = Decoder::new().decode_for_recognition(&encoded.bitstream)?;
        let nnl = LargeNet::new(self.cfg.detect_profile);
        let (w, h) = (rec.width, rec.height);
        let min_component = (rec.mb_size * rec.mb_size) / 2;

        let mut anchor_dets: BTreeMap<u32, Vec<Detection>> = BTreeMap::new();
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &rec.anchors {
            let seed = hash2(*display as i64, 1, self.cfg.seed);
            let dets = nnl.detect(&seq.gt_boxes[*display as usize], w, h, seed);
            let boxes: Vec<_> = dets.iter().map(|d| d.rect).collect();
            ref_segs.insert(*display, boxes_to_mask(&boxes, w, h));
            anchor_dets.insert(*display, dets);
        }

        let mut detections: Vec<Option<Vec<Detection>>> = vec![None; seq.len()];
        for (d, dets) in &anchor_dets {
            detections[*d as usize] = Some(dets.clone());
        }

        let per_anchor_bytes = rec.anchor_bytes / rec.anchors.len().max(1);
        let per_b_bytes = rec.b_bytes / rec.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut frames = Vec::with_capacity(seq.len());
        let mut b_iter = rec.b_frames.iter();
        for meta in &rec.metas {
            if meta.ftype.is_anchor() {
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: meta.ftype,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_anchor_bytes,
                });
            } else {
                let info = b_iter.next().ok_or_else(|| {
                    VrDannError::BadInput(
                        "decode order lists more B-frames than the stream carries".into(),
                    )
                })?;
                let plane =
                    reconstruct_b_frame(info, &ref_segs, w, h, rec.mb_size, &self.cfg.recon)?;
                let mask = if self.cfg.refine {
                    let input = if self.cfg.sandwich {
                        build_sandwich(info.display_idx, &plane, &ref_segs)?
                    } else {
                        build_reconstruction_only(&plane)
                    };
                    self.nns.infer(&input).to_mask(0.5)
                } else {
                    plane_to_mask(&plane, &self.cfg.recon)
                };
                detections[info.display_idx as usize] =
                    Some(extract_components(&mask, min_component));
                frames.push(TraceFrame {
                    display: meta.display_idx,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnSRefine {
                        ops: if self.cfg.refine { nns_ops } else { 0 },
                        mvs: info.mvs.clone(),
                    },
                    full_decode: false,
                    bitstream_bytes: per_b_bytes,
                });
            }
        }

        let detections = detections
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                d.ok_or_else(|| VrDannError::BadInput(format!("frame {i} never detected")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DetectionRun {
            detections,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: rec.mb_size,
                frames,
            },
            concealment: ConcealmentStats::default(),
        })
    }

    /// Runs segmentation on a (possibly damaged) packetized stream,
    /// degrading gracefully instead of failing (the resilience tentpole):
    ///
    /// * a B-frame whose MV payload was **lost** copies the segmentation of
    ///   the nearest reference frame;
    /// * a **salvaged** B payload is reconstructed with uncovered blocks and
    ///   records pointing at missing anchors filled co-located;
    /// * a **lost anchor** is concealed by a nearest-reference copy and
    ///   triggers an NN-L re-inference on the next decodable B-frame to
    ///   re-establish a trusted reference;
    /// * an **NN-S fault** (modelled by [`ResilienceOptions`]) falls back to
    ///   the unrefined blocky reconstruction.
    ///
    /// On a clean stream with `nns_failure_rate == 0` the output is
    /// bit-identical to [`VrDann::run_segmentation`] and
    /// `concealment.is_clean()` holds.
    ///
    /// # Errors
    /// Fails only if the stream *header* is unusable or the sequence and
    /// stream disagree structurally — frame damage never errors.
    pub fn run_segmentation_resilient(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
    ) -> Result<SegmentationRun> {
        let res = Decoder::new().decode_recognition_resilient(stream)?;
        let nnl = LargeNet::new(self.cfg.segment_profile);
        let (w, h) = (res.width, res.height);
        let mut stats = ConcealmentStats::default();

        // NN-L on every decoded anchor — identical seeding to the strict
        // path so clean runs replicate it exactly.
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &res.anchors {
            let seed = hash2(*display as i64, 0, self.cfg.seed);
            ref_segs.insert(
                *display,
                nnl.segment(&seq.gt_masks[*display as usize], seed),
            );
        }

        let mut masks: Vec<Option<SegMask>> = vec![None; seq.len()];
        for (d, m) in &ref_segs {
            masks[*d as usize] = Some(m.clone());
        }

        let per_anchor_bytes = res.anchor_bytes / res.anchors.len().max(1);
        let per_b_bytes = res.b_bytes / res.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut nns_rng = (opts.nns_failure_rate > 0.0).then(|| StdRng::seed_from_u64(opts.seed));
        let mut frames = Vec::with_capacity(res.outcomes.len());
        let mut b_iter = res.b_frames.iter();
        // Set once an anchor is lost; the next decodable B-frame goes
        // through NN-L to re-establish a trusted reference.
        let mut pending_refetch = false;

        for o in &res.outcomes {
            let Some(display) = o.display else { continue };
            if o.ftype.is_anchor() {
                match &o.outcome {
                    DecodeOutcome::Ok | DecodeOutcome::Concealed(_) => {
                        if matches!(
                            o.outcome,
                            DecodeOutcome::Concealed(ConcealReason::MissingReference)
                        ) {
                            stats.anchors_substituted += 1;
                        }
                        frames.push(TraceFrame {
                            display,
                            ftype: o.ftype,
                            kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                            full_decode: true,
                            bitstream_bytes: per_anchor_bytes,
                        });
                    }
                    DecodeOutcome::Lost => {
                        stats.anchors_lost += 1;
                        pending_refetch = true;
                        frames.push(TraceFrame {
                            display,
                            ftype: o.ftype,
                            kind: ComputeKind::NnSRefine {
                                ops: 0,
                                mvs: vec![],
                            },
                            full_decode: false,
                            bitstream_bytes: 0,
                        });
                    }
                }
                continue;
            }

            // B-frame.
            if !o.outcome.is_usable() {
                stats.b_copied += 1;
                masks[display as usize] = Some(nearest_mask(&ref_segs, display, w, h));
                frames.push(TraceFrame {
                    display,
                    ftype: o.ftype,
                    kind: ComputeKind::NnSRefine {
                        ops: 0,
                        mvs: vec![],
                    },
                    full_decode: false,
                    bitstream_bytes: 0,
                });
                continue;
            }
            let info = b_iter.next().ok_or_else(|| {
                VrDannError::BadInput(
                    "decode outcomes list more usable B-frames than were salvaged".into(),
                )
            })?;

            // A lost anchor earlier in decode order: spend an NN-L here to
            // re-establish a trusted reference (§VI-A's fallback machinery,
            // repurposed for recovery).
            if pending_refetch {
                pending_refetch = false;
                stats.nnl_reinferences += 1;
                let seed = hash2(display as i64, 2, self.cfg.seed);
                let mask = nnl.segment(&seq.gt_masks[display as usize], seed);
                ref_segs.insert(display, mask.clone());
                masks[display as usize] = Some(mask);
                frames.push(TraceFrame {
                    display,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_b_bytes,
                });
                continue;
            }

            // Adaptive fallback, exactly as in the strict path.
            if o.outcome == DecodeOutcome::Ok {
                if let Some(threshold) = self.cfg.fallback_mv_threshold {
                    if p90_mv_magnitude(&info.mvs) > threshold as f64 {
                        let seed = hash2(display as i64, 2, self.cfg.seed);
                        let mask = nnl.segment(&seq.gt_masks[display as usize], seed);
                        ref_segs.insert(display, mask.clone());
                        masks[display as usize] = Some(mask);
                        frames.push(TraceFrame {
                            display,
                            ftype: FrameType::B,
                            kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                            full_decode: true,
                            bitstream_bytes: per_b_bytes,
                        });
                        continue;
                    }
                }
            }

            if ref_segs.is_empty() {
                // Every anchor lost: nothing to reconstruct from.
                stats.b_copied += 1;
                masks[display as usize] = Some(SegMask::new(w, h));
                frames.push(TraceFrame {
                    display,
                    ftype: o.ftype,
                    kind: ComputeKind::NnSRefine {
                        ops: 0,
                        mvs: vec![],
                    },
                    full_decode: false,
                    bitstream_bytes: 0,
                });
                continue;
            }

            let salvaged = matches!(o.outcome, DecodeOutcome::Concealed(_));
            if salvaged {
                stats.b_salvaged += 1;
            }
            let cleaned = sanitize_b_info(info, &ref_segs, w, h, res.mb_size);
            let plane =
                reconstruct_b_frame(&cleaned, &ref_segs, w, h, res.mb_size, &self.cfg.recon)?;
            let nns_faulted = nns_rng
                .as_mut()
                .is_some_and(|rng| rng.random_range(0.0f64..1.0) < opts.nns_failure_rate);
            if nns_faulted {
                stats.nns_failures += 1;
            }
            let mask = if self.cfg.refine && !nns_faulted {
                let input = if self.cfg.sandwich {
                    build_sandwich(display, &plane, &ref_segs)?
                } else {
                    build_reconstruction_only(&plane)
                };
                self.nns.infer(&input).to_mask(0.5)
            } else {
                plane_to_mask(&plane, &self.cfg.recon)
            };
            masks[display as usize] = Some(mask);
            frames.push(TraceFrame {
                display,
                ftype: FrameType::B,
                kind: ComputeKind::NnSRefine {
                    ops: if self.cfg.refine && !nns_faulted {
                        nns_ops
                    } else {
                        0
                    },
                    mvs: cleaned.mvs,
                },
                full_decode: false,
                bitstream_bytes: per_b_bytes,
            });
        }

        // Final fill: displays that still have no mask (lost anchors, frames
        // that never arrived) copy the nearest computed segmentation.
        let computed: BTreeMap<u32, SegMask> = masks
            .iter()
            .enumerate()
            .filter_map(|(d, m)| m.as_ref().map(|m| (d as u32, m.clone())))
            .collect();
        let masks = masks
            .into_iter()
            .enumerate()
            .map(|(d, m)| m.unwrap_or_else(|| nearest_mask(&computed, d as u32, w, h)))
            .collect();
        Ok(SegmentationRun {
            masks,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: res.mb_size,
                frames,
            },
            concealment: stats,
        })
    }

    /// Runs detection on a (possibly damaged) packetized stream with the
    /// same degradation ladder as [`VrDann::run_segmentation_resilient`]
    /// (lost B payloads copy the nearest reference's detections).
    ///
    /// # Errors
    /// Fails only on an unusable stream header or a structural mismatch.
    pub fn run_detection_resilient(
        &self,
        seq: &Sequence,
        stream: &PacketStream,
        opts: &ResilienceOptions,
    ) -> Result<DetectionRun> {
        let res = Decoder::new().decode_recognition_resilient(stream)?;
        let nnl = LargeNet::new(self.cfg.detect_profile);
        let (w, h) = (res.width, res.height);
        let min_component = (res.mb_size * res.mb_size) / 2;
        let mut stats = ConcealmentStats::default();

        let mut anchor_dets: BTreeMap<u32, Vec<Detection>> = BTreeMap::new();
        let mut ref_segs: BTreeMap<u32, SegMask> = BTreeMap::new();
        for (display, _pixels) in &res.anchors {
            let seed = hash2(*display as i64, 1, self.cfg.seed);
            let dets = nnl.detect(&seq.gt_boxes[*display as usize], w, h, seed);
            let boxes: Vec<_> = dets.iter().map(|d| d.rect).collect();
            ref_segs.insert(*display, boxes_to_mask(&boxes, w, h));
            anchor_dets.insert(*display, dets);
        }

        let mut detections: Vec<Option<Vec<Detection>>> = vec![None; seq.len()];
        for (d, dets) in &anchor_dets {
            detections[*d as usize] = Some(dets.clone());
        }

        let nearest_dets = |dets: &BTreeMap<u32, Vec<Detection>>, display: u32| {
            dets.iter()
                .min_by_key(|(d, _)| d.abs_diff(display))
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };

        let per_anchor_bytes = res.anchor_bytes / res.anchors.len().max(1);
        let per_b_bytes = res.b_bytes / res.b_frames.len().max(1);
        let nns_ops = 2 * self.nns.macs(h, w);
        let mut nns_rng = (opts.nns_failure_rate > 0.0).then(|| StdRng::seed_from_u64(opts.seed));
        let mut frames = Vec::with_capacity(res.outcomes.len());
        let mut b_iter = res.b_frames.iter();
        let mut pending_refetch = false;

        for o in &res.outcomes {
            let Some(display) = o.display else { continue };
            if o.ftype.is_anchor() {
                match &o.outcome {
                    DecodeOutcome::Ok | DecodeOutcome::Concealed(_) => {
                        if matches!(
                            o.outcome,
                            DecodeOutcome::Concealed(ConcealReason::MissingReference)
                        ) {
                            stats.anchors_substituted += 1;
                        }
                        frames.push(TraceFrame {
                            display,
                            ftype: o.ftype,
                            kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                            full_decode: true,
                            bitstream_bytes: per_anchor_bytes,
                        });
                    }
                    DecodeOutcome::Lost => {
                        stats.anchors_lost += 1;
                        pending_refetch = true;
                        frames.push(TraceFrame {
                            display,
                            ftype: o.ftype,
                            kind: ComputeKind::NnSRefine {
                                ops: 0,
                                mvs: vec![],
                            },
                            full_decode: false,
                            bitstream_bytes: 0,
                        });
                    }
                }
                continue;
            }

            if !o.outcome.is_usable() {
                stats.b_copied += 1;
                detections[display as usize] = Some(nearest_dets(&anchor_dets, display));
                frames.push(TraceFrame {
                    display,
                    ftype: o.ftype,
                    kind: ComputeKind::NnSRefine {
                        ops: 0,
                        mvs: vec![],
                    },
                    full_decode: false,
                    bitstream_bytes: 0,
                });
                continue;
            }
            let info = b_iter.next().ok_or_else(|| {
                VrDannError::BadInput(
                    "decode outcomes list more usable B-frames than were salvaged".into(),
                )
            })?;

            if pending_refetch {
                pending_refetch = false;
                stats.nnl_reinferences += 1;
                let seed = hash2(display as i64, 1, self.cfg.seed);
                let dets = nnl.detect(&seq.gt_boxes[display as usize], w, h, seed);
                let boxes: Vec<_> = dets.iter().map(|d| d.rect).collect();
                ref_segs.insert(display, boxes_to_mask(&boxes, w, h));
                anchor_dets.insert(display, dets.clone());
                detections[display as usize] = Some(dets);
                frames.push(TraceFrame {
                    display,
                    ftype: FrameType::B,
                    kind: ComputeKind::NnL { ops: nnl.ops(w, h) },
                    full_decode: true,
                    bitstream_bytes: per_b_bytes,
                });
                continue;
            }

            if ref_segs.is_empty() {
                stats.b_copied += 1;
                detections[display as usize] = Some(Vec::new());
                frames.push(TraceFrame {
                    display,
                    ftype: o.ftype,
                    kind: ComputeKind::NnSRefine {
                        ops: 0,
                        mvs: vec![],
                    },
                    full_decode: false,
                    bitstream_bytes: 0,
                });
                continue;
            }

            if matches!(o.outcome, DecodeOutcome::Concealed(_)) {
                stats.b_salvaged += 1;
            }
            let cleaned = sanitize_b_info(info, &ref_segs, w, h, res.mb_size);
            let plane =
                reconstruct_b_frame(&cleaned, &ref_segs, w, h, res.mb_size, &self.cfg.recon)?;
            let nns_faulted = nns_rng
                .as_mut()
                .is_some_and(|rng| rng.random_range(0.0f64..1.0) < opts.nns_failure_rate);
            if nns_faulted {
                stats.nns_failures += 1;
            }
            let mask = if self.cfg.refine && !nns_faulted {
                let input = if self.cfg.sandwich {
                    build_sandwich(display, &plane, &ref_segs)?
                } else {
                    build_reconstruction_only(&plane)
                };
                self.nns.infer(&input).to_mask(0.5)
            } else {
                plane_to_mask(&plane, &self.cfg.recon)
            };
            detections[display as usize] = Some(extract_components(&mask, min_component));
            frames.push(TraceFrame {
                display,
                ftype: FrameType::B,
                kind: ComputeKind::NnSRefine {
                    ops: if self.cfg.refine && !nns_faulted {
                        nns_ops
                    } else {
                        0
                    },
                    mvs: cleaned.mvs,
                },
                full_decode: false,
                bitstream_bytes: per_b_bytes,
            });
        }

        let computed: BTreeMap<u32, Vec<Detection>> = detections
            .iter()
            .enumerate()
            .filter_map(|(d, v)| v.as_ref().map(|v| (d as u32, v.clone())))
            .collect();
        let detections = detections
            .into_iter()
            .enumerate()
            .map(|(d, v)| v.unwrap_or_else(|| nearest_dets(&computed, d as u32)))
            .collect();
        Ok(DetectionRun {
            detections,
            trace: SchemeTrace {
                scheme: SchemeKind::VrDann,
                width: w,
                height: h,
                mb_size: res.mb_size,
                frames,
            },
            concealment: stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_metrics::score_sequence;
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn tiny_model(task: TrainTask) -> (VrDann, SuiteConfig) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let vr_cfg = VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        };
        (VrDann::train(&train, task, vr_cfg).unwrap(), cfg)
    }

    #[test]
    fn segmentation_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(run.masks.len(), seq.len());
        assert_eq!(run.trace.frames.len(), seq.len());
        // Accuracy sanity: must beat a trivial all-background predictor.
        let scores = score_sequence(&run.masks, &seq.gt_masks);
        assert!(scores.iou > 0.5, "IoU too low: {:.3}", scores.iou);
        // The trace must contain both work kinds.
        let n_b = run
            .trace
            .frames
            .iter()
            .filter(|f| matches!(f.kind, ComputeKind::NnSRefine { .. }))
            .count();
        assert_eq!(n_b, encoded.stats.b_frames);
        // B-frames are never fully decoded in this pipeline.
        assert!(run
            .trace
            .frames
            .iter()
            .all(|f| f.full_decode == f.ftype.is_anchor()));
    }

    #[test]
    fn refinement_improves_over_raw_reconstruction() {
        let (refined, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = refined.encode(&seq).unwrap();
        let run_ref = refined.run_segmentation(&seq, &encoded).unwrap();

        let mut raw = refined.clone();
        raw.cfg.refine = false;
        let run_raw = raw.run_segmentation(&seq, &encoded).unwrap();

        let s_ref = score_sequence(&run_ref.masks, &seq.gt_masks);
        let s_raw = score_sequence(&run_raw.masks, &seq.gt_masks);
        assert!(
            s_ref.iou >= s_raw.iou - 0.01,
            "refined {:.3} much worse than raw {:.3}",
            s_ref.iou,
            s_raw.iou
        );
    }

    #[test]
    fn detection_pipeline_end_to_end() {
        let (model, cfg) = tiny_model(TrainTask::Detection);
        let seq = davis_sequence("camel", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_detection(&seq, &encoded).unwrap();
        assert_eq!(run.detections.len(), seq.len());
        // Most frames should have at least one detection.
        let with_dets = run.detections.iter().filter(|d| !d.is_empty()).count();
        assert!(with_dets > seq.len() * 2 / 3, "{with_dets}/{}", seq.len());
    }

    #[test]
    fn export_import_preserves_pipeline_outputs() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("goat", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let original = model.run_segmentation(&seq, &encoded).unwrap();

        let bytes = model.export_nns();
        let restored = VrDann::from_parts(*model.config(), &bytes).unwrap();
        let replayed = restored.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(original.masks, replayed.masks);

        // Width mismatch is rejected.
        let mut wrong = *model.config();
        wrong.nns_hidden += 1;
        assert!(VrDann::from_parts(wrong, &bytes).is_err());
        assert!(VrDann::from_parts(*model.config(), b"junk").is_err());
    }

    #[test]
    fn adaptive_fallback_reroutes_fast_b_frames_to_nnl() {
        let (model, cfg) = tiny_model(TrainTask::Segmentation);
        let seq = davis_sequence("parkour", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();

        let run_plain = model.run_segmentation(&seq, &encoded).unwrap();
        let mut fb = model.clone();
        fb.cfg.fallback_mv_threshold = Some(1.5);
        let run_fb = fb.run_segmentation(&seq, &encoded).unwrap();

        // Some B-frames must have been rerouted to NN-L.
        let nnl_frames = |run: &SegmentationRun| {
            run.trace
                .frames
                .iter()
                .filter(|f| matches!(f.kind, ComputeKind::NnL { .. }))
                .count()
        };
        assert!(
            nnl_frames(&run_fb) > nnl_frames(&run_plain),
            "fallback rerouted nothing"
        );
        // Accuracy must not degrade on a fast sequence.
        let s_plain = score_sequence(&run_plain.masks, &seq.gt_masks);
        let s_fb = score_sequence(&run_fb.masks, &seq.gt_masks);
        assert!(
            s_fb.iou >= s_plain.iou - 0.005,
            "fallback hurt accuracy: {:.3} vs {:.3}",
            s_fb.iou,
            s_plain.iou
        );
        // An absurd threshold reroutes nothing.
        let mut noop = model.clone();
        noop.cfg.fallback_mv_threshold = Some(1e6);
        let run_noop = noop.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(nnl_frames(&run_noop), nnl_frames(&run_plain));
    }

    #[test]
    fn training_requires_b_frames() {
        let cfg = SuiteConfig::tiny();
        let mut seq = davis_sequence("cows", &cfg).unwrap();
        // One frame -> a single I frame -> no B-frames anywhere.
        seq.frames.truncate(1);
        seq.gt_masks.truncate(1);
        seq.gt_boxes.truncate(1);
        let err = VrDann::train(&[seq], TrainTask::Segmentation, VrDannConfig::default());
        assert!(err.is_err());
    }
}
