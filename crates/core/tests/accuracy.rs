//! Suite-level accuracy calibration: the Fig. 9 / Fig. 10 shape.
//!
//! Checks the orderings the paper reports: FAVOS best (VR-DANN within ~1%),
//! VR-DANN clearly above DFF and OSVOS. Runs the full 20-video DAVIS-like
//! suite, so it is release-profile friendly but still passes in debug.

use vr_dann::baselines::{run_dff, run_favos, run_osvos, DFF_KEY_INTERVAL};
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_metrics::{mean_scores, score_sequence, SegScores};
use vrd_video::davis::{davis_train_suite, davis_val_suite, SuiteConfig};

#[test]
fn segmentation_accuracy_shape_matches_paper() {
    let cfg = SuiteConfig::default();
    let train = davis_train_suite(&cfg, 6);
    let model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default()).unwrap();
    let suite = davis_val_suite(&cfg);

    let mut scores: [Vec<SegScores>; 4] = [vec![], vec![], vec![], vec![]];
    for seq in &suite {
        let encoded = model.encode(seq).unwrap();
        let favos = run_favos(seq, &encoded, 1);
        let osvos = run_osvos(seq, &encoded, 1);
        let dff = run_dff(seq, &encoded, DFF_KEY_INTERVAL, 1);
        let vr = model.run_segmentation(seq, &encoded).unwrap();
        let f = score_sequence(&favos.masks, &seq.gt_masks);
        let o = score_sequence(&osvos.masks, &seq.gt_masks);
        let d = score_sequence(&dff.masks, &seq.gt_masks);
        let v = score_sequence(&vr.masks, &seq.gt_masks);
        println!(
            "{:20} favos={:.3}/{:.3} osvos={:.3}/{:.3} dff={:.3}/{:.3} vrdann={:.3}/{:.3}",
            seq.name, f.f_score, f.iou, o.f_score, o.iou, d.f_score, d.iou, v.f_score, v.iou
        );
        scores[0].push(f);
        scores[1].push(o);
        scores[2].push(d);
        scores[3].push(v);
    }
    let [mf, mo, md, mv] = scores.map(|s| mean_scores(&s));
    println!(
        "MEAN  favos={:.3}/{:.3} osvos={:.3}/{:.3} dff={:.3}/{:.3} vrdann={:.3}/{:.3}",
        mf.f_score, mf.iou, mo.f_score, mo.iou, md.f_score, md.iou, mv.f_score, mv.iou
    );
    // Paper shape (Fig. 10): FAVOS best with VR-DANN within ~1%; VR-DANN
    // clearly above DFF (+3.8% IoU) and OSVOS (+7.6% IoU).
    assert!(mv.iou > md.iou + 0.02, "VR-DANN must clearly beat DFF");
    assert!(mv.iou > mo.iou + 0.02, "VR-DANN must clearly beat OSVOS");
    assert!(mf.iou >= mv.iou - 0.005, "FAVOS should be best (or tied)");
    assert!(
        mf.iou - mv.iou < 0.015,
        "VR-DANN should be within ~1% of FAVOS, gap={:.3}",
        mf.iou - mv.iou
    );
    assert!(
        mf.f_score - mv.f_score < 0.015,
        "F-score gap too large: {:.3}",
        mf.f_score - mv.f_score
    );
}
