//! Bounded-memory regression: the streaming engine must never materialise
//! a whole video. The accounting hook (`peak_live_frames`) counts decoded
//! pixel frames alive at once inside the frame source; on a long sequence
//! it has to stay within a small multiple of one GOP.

use vr_dann::baselines::run_favos;
use vr_dann::{PipelineOptions, ResilienceOptions, TrainTask, VrDann, VrDannConfig};
use vrd_codec::{inject, packetize, FaultConfig, FaultKind};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

#[test]
fn engine_memory_stays_within_gop_window_on_long_sequences() {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();

    // 200 frames — over twelve GOPs at the default gop_len of 16.
    let long_cfg = SuiteConfig {
        frames: 200,
        ..SuiteConfig::tiny()
    };
    let seq = davis_sequence("cows", &long_cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let run = model.run_segmentation(&seq, &encoded).unwrap();
    assert_eq!(run.masks.len(), seq.len());

    let gop = model.config().codec.gop_len;
    assert!(
        run.peak_live_frames <= 2 * gop,
        "streaming engine held {} live frames, above the 2xGOP bound of {}",
        run.peak_live_frames,
        2 * gop
    );
    assert!(
        run.peak_live_frames < seq.len(),
        "engine materialised the whole {}-frame video",
        seq.len()
    );

    // The full-decode baselines, by contrast, hold every frame.
    let favos = run_favos(&seq, &encoded, 1);
    assert_eq!(favos.peak_live_frames, seq.len());
}

#[test]
fn featprop_feature_window_stays_bounded() {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();

    let long_cfg = SuiteConfig {
        frames: 200,
        ..SuiteConfig::tiny()
    };
    let seq = davis_sequence("cows", &long_cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let run = model.run_feature_propagation(&seq, &encoded).unwrap();
    assert_eq!(run.masks.len(), seq.len());

    // Cached backbone feature maps are evicted with the reference-mask
    // window, so their high-water mark obeys the same 2xGOP bound the
    // pixel frames do — a 200-frame video never holds 200 feature maps.
    let gop = model.config().codec.gop_len;
    assert!(
        run.peak_live_features > 0,
        "feature propagation cached no features"
    );
    assert!(
        run.peak_live_features <= 2 * gop,
        "feature window held {} maps, above the 2xGOP bound of {}",
        run.peak_live_features,
        2 * gop
    );
    assert!(run.peak_live_features < seq.len());
    // And the pixel-frame window discipline is unchanged.
    assert!(
        run.peak_live_frames <= 2 * gop,
        "streaming engine held {} live frames, above the 2xGOP bound of {}",
        run.peak_live_frames,
        2 * gop
    );
}

#[test]
fn concealing_engine_memory_stays_bounded_under_anchor_loss() {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();

    let long_cfg = SuiteConfig {
        frames: 200,
        ..SuiteConfig::tiny()
    };
    let seq = davis_sequence("cows", &long_cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();

    // Drop whole frames — anchors included — so the concealing policy's
    // anchor-substitution path runs, not just B-payload salvage.
    let stream = packetize(&encoded.bitstream).unwrap();
    let faults = FaultConfig {
        seed: 0xbad_a2c4,
        rate: 0.3,
        kinds: vec![FaultKind::DropFrame],
        b_frames_only: false,
        protect_first_i: true,
    };
    let (damaged, log) = inject(&stream, &faults);
    assert!(!log.events.is_empty(), "no faults planted at 30% rate");

    let run = model
        .run_segmentation_resilient(&seq, &damaged, &ResilienceOptions::default())
        .unwrap();
    assert_eq!(run.masks.len(), seq.len());
    assert!(
        run.concealment.anchors_lost > 0,
        "fault plan lost no anchors; the substitution path never ran"
    );

    // Same bound as the strict engine: concealment may re-infer and
    // substitute anchors, but it must not grow the live-frame window.
    let gop = model.config().codec.gop_len;
    assert!(
        run.peak_live_frames <= 2 * gop,
        "concealing engine held {} live frames, above the 2xGOP bound of {}",
        run.peak_live_frames,
        2 * gop
    );
    assert!(run.peak_live_frames < seq.len());
}

#[test]
fn pipelined_engine_memory_stays_bounded_under_anchor_loss() {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();

    let long_cfg = SuiteConfig {
        frames: 200,
        ..SuiteConfig::tiny()
    };
    let seq = davis_sequence("cows", &long_cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();

    let stream = packetize(&encoded.bitstream).unwrap();
    let faults = FaultConfig {
        seed: 0xbad_a2c4,
        rate: 0.3,
        kinds: vec![FaultKind::DropFrame],
        b_frames_only: false,
        protect_first_i: true,
    };
    let (damaged, log) = inject(&stream, &faults);
    assert!(!log.events.is_empty(), "no faults planted at 30% rate");

    let gop = model.config().codec.gop_len;
    for threads in [2, 8] {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: None,
        };
        let run = model
            .run_segmentation_resilient_pipelined(
                &seq,
                &damaged,
                &ResilienceOptions::default(),
                &opts,
            )
            .unwrap();
        assert_eq!(run.masks.len(), seq.len());
        assert!(run.concealment.anchors_lost > 0, "no anchors lost");

        // The pipelined executor adds one new place decoded frames can
        // live: the stage channel between the lanes. The source window
        // plus everything in flight must still fit the 2xGOP bound — the
        // decode lane is never allowed to run ahead without limit.
        assert!(
            run.peak_inflight_units > 0,
            "decode lane never ran ahead; the pipeline did not overlap"
        );
        assert!(
            run.peak_live_frames + run.peak_inflight_units <= 2 * gop,
            "pipelined engine held {} live frames + {} in-flight units, \
             above the 2xGOP bound of {}",
            run.peak_live_frames,
            run.peak_inflight_units,
            2 * gop
        );
        assert!(run.peak_live_frames < seq.len());
    }

    // The strict pipelined driver obeys the same bound on a clean stream.
    let clean = model
        .run_segmentation_pipelined(&seq, &encoded, &PipelineOptions::default())
        .unwrap();
    assert!(
        clean.peak_live_frames + clean.peak_inflight_units <= 2 * gop,
        "strict pipelined run held {} + {} frames, above {}",
        clean.peak_live_frames,
        clean.peak_inflight_units,
        2 * gop
    );
}
