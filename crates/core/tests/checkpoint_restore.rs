//! Checkpoint/restore tests for the resumable pipeline engine.
//!
//! The serving layer's crash-recovery story rests on one contract: an
//! engine rolled back to an [`EngineCheckpoint`] and re-stepped over the
//! units decoded since produces *exactly* the run it would have produced
//! uncrashed — outputs, trace and concealment counters. These tests pin
//! that contract for the strict engine, for the concealing engine with a
//! live NN-S fault lottery (the lottery position is part of the snapshot),
//! and for the error paths.

use vr_dann::engine::SegTask;
use vr_dann::{
    ConcealingPolicy, PipelineEngine, ResilienceOptions, StrictPolicy, TrainTask, VrDann,
    VrDannConfig,
};
use vrd_codec::faults::{inject, packetize, FaultConfig};
use vrd_codec::{BFrameMode, CodecConfig, FrameSource, ResilientFrameSource, StrictFrameSource};
use vrd_nn::LargeNet;
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn tiny_model() -> (VrDann, SuiteConfig) {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let vr_cfg = VrDannConfig {
        nns_hidden: 4,
        codec: CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        },
        ..VrDannConfig::default()
    };
    (
        VrDann::train(&train, TrainTask::Segmentation, vr_cfg).unwrap(),
        cfg,
    )
}

fn seg_task<'a>(
    model: &VrDann,
    seq: &'a vrd_video::Sequence,
    info: &vrd_codec::StreamInfo,
) -> SegTask<'a> {
    SegTask::new(
        seq,
        LargeNet::new(model.config().segment_profile),
        model.config().seed,
        info,
    )
}

/// Straight run vs crash-at-`m`-restore-to-`k` replay over the same strict
/// stream: the replayed run must be byte-identical.
#[test]
fn strict_restore_replays_identically() {
    let (model, cfg) = tiny_model();
    let seq = davis_sequence("cows", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();

    // Reference: one uninterrupted run.
    let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
    let info = source.info();
    let mut engine = PipelineEngine::new(
        model.config(),
        model.nns(),
        seg_task(&model, &seq, &info),
        StrictPolicy::default(),
    );
    engine.prime(&info, &[]);
    while let Some(unit) = source.next_unit() {
        engine.step(unit.unwrap()).unwrap();
    }
    let straight = engine
        .finish(source.totals(), source.peak_live_frames())
        .unwrap();

    // Crashed run: checkpoint after unit k, keep going to unit m, then
    // "lose the NPU", restore, and replay from k on a fresh decode walk.
    let (k, m) = (5usize, 11usize);
    let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
    let mut engine = PipelineEngine::new(
        model.config(),
        model.nns(),
        seg_task(&model, &seq, &info),
        StrictPolicy::default(),
    );
    engine.prime(&info, &[]);
    let mut ckpt = None;
    for i in 0.. {
        let Some(unit) = source.next_unit() else {
            break;
        };
        engine.step(unit.unwrap()).unwrap();
        if i + 1 == k {
            ckpt = Some(engine.checkpoint().unwrap());
        }
        if i + 1 == m {
            break;
        }
    }
    let ckpt = ckpt.unwrap();
    assert_eq!(ckpt.frames_emitted(), k);
    assert!(ckpt.reference_count() > 0);
    engine.restore(&ckpt).unwrap();

    // Recovery: a fresh decoder walk, skipping the k units already
    // reflected in the checkpoint, feeds the restored engine to the end.
    let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
    for _ in 0..k {
        source.next_unit().unwrap().unwrap();
    }
    while let Some(unit) = source.next_unit() {
        engine.step(unit.unwrap()).unwrap();
    }
    let replayed = engine
        .finish(source.totals(), source.peak_live_frames())
        .unwrap();

    assert_eq!(replayed.outputs, straight.outputs);
    assert_eq!(replayed.trace, straight.trace);
    assert_eq!(replayed.concealment, straight.concealment);
}

/// The concealing engine's NN-S fault lottery and concealment counters are
/// part of the snapshot: a replayed span redraws the same faults and does
/// not double-count concealments.
#[test]
fn concealing_restore_rewinds_lottery_and_counters() {
    let (model, cfg) = tiny_model();
    let seq = davis_sequence("dog", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let ps = packetize(&encoded.bitstream).unwrap();
    let (damaged, log) = inject(&ps, &FaultConfig::b_mv_loss(0.4, 23));
    assert!(!log.events.is_empty(), "rate 0.4 planted nothing");
    let opts = ResilienceOptions {
        nns_failure_rate: 0.3,
        ..ResilienceOptions::default()
    };

    let run = |crash_at: Option<(usize, usize)>| {
        let mut source = ResilientFrameSource::new(&damaged).unwrap();
        let info = source.info();
        let prepopulate = source.usable_anchor_displays().to_vec();
        let mut engine = PipelineEngine::new(
            model.config(),
            model.nns(),
            seg_task(&model, &seq, &info),
            ConcealingPolicy::new(&opts),
        );
        engine.prime(&info, &prepopulate);
        match crash_at {
            None => {
                while let Some(unit) = source.next_unit() {
                    engine.step(unit.unwrap()).unwrap();
                }
                engine
                    .finish(source.totals(), source.peak_live_frames())
                    .unwrap()
            }
            Some((k, m)) => {
                let mut ckpt = None;
                for i in 0.. {
                    let Some(unit) = source.next_unit() else {
                        break;
                    };
                    engine.step(unit.unwrap()).unwrap();
                    if i + 1 == k {
                        ckpt = Some(engine.checkpoint().unwrap());
                    }
                    if i + 1 == m {
                        break;
                    }
                }
                engine.restore(&ckpt.unwrap()).unwrap();
                let mut source = ResilientFrameSource::new(&damaged).unwrap();
                for _ in 0..k {
                    source.next_unit().unwrap().unwrap();
                }
                while let Some(unit) = source.next_unit() {
                    engine.step(unit.unwrap()).unwrap();
                }
                engine
                    .finish(source.totals(), source.peak_live_frames())
                    .unwrap()
            }
        }
    };

    let straight = run(None);
    assert!(
        !straight.concealment.is_clean(),
        "injected stream concealed nothing"
    );
    let replayed = run(Some((4, 10)));
    assert_eq!(replayed.outputs, straight.outputs);
    assert_eq!(replayed.trace, straight.trace);
    assert_eq!(replayed.concealment, straight.concealment);
}

#[test]
fn checkpoint_and_restore_guard_their_preconditions() {
    let (model, cfg) = tiny_model();
    let seq = davis_sequence("cows", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
    let info = source.info();

    // Unprimed engines have no stream state to snapshot or restore.
    let unprimed = PipelineEngine::new(
        model.config(),
        model.nns(),
        seg_task(&model, &seq, &info),
        StrictPolicy::default(),
    );
    assert!(unprimed.checkpoint().is_err());

    // A checkpoint taken ahead of an engine's own trace is rejected.
    let mut engine = PipelineEngine::new(
        model.config(),
        model.nns(),
        seg_task(&model, &seq, &info),
        StrictPolicy::default(),
    );
    engine.prime(&info, &[]);
    for _ in 0..4 {
        engine.step(source.next_unit().unwrap().unwrap()).unwrap();
    }
    let ahead = engine.checkpoint().unwrap();
    let mut fresh = PipelineEngine::new(
        model.config(),
        model.nns(),
        seg_task(&model, &seq, &info),
        StrictPolicy::default(),
    );
    fresh.prime(&info, &[]);
    assert!(fresh.restore(&ahead).is_err());
    // Restoring within the same engine's past is fine.
    assert!(engine.restore(&ahead).is_ok());
}
