//! Degradation-ladder tests for the resilient pipeline entry points.
//!
//! One test per concealment tier: clean streams must be bit-identical to the
//! strict pipeline, lost B-frame MV payloads copy the nearest reference's
//! result, a lost anchor triggers reference substitution plus an NN-L
//! re-inference, and NN-S faults fall back to the raw reconstruction —
//! each verified through the run's `ConcealmentStats`.

use vr_dann::{ResilienceOptions, TrainTask, VrDann, VrDannConfig};
use vrd_codec::faults::{inject, packetize, FaultConfig, FaultKind};
use vrd_codec::{BFrameMode, CodecConfig};
use vrd_metrics::score_sequence;
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};
use vrd_video::Sequence;

fn tiny_model(task: TrainTask) -> (VrDann, SuiteConfig) {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let vr_cfg = VrDannConfig {
        nns_hidden: 4,
        codec: CodecConfig {
            b_frames: BFrameMode::Fixed(3),
            ..CodecConfig::default()
        },
        ..VrDannConfig::default()
    };
    (VrDann::train(&train, task, vr_cfg).unwrap(), cfg)
}

fn encode_and_packetize(model: &VrDann, seq: &Sequence) -> vrd_codec::faults::PacketStream {
    let encoded = model.encode(seq).unwrap();
    packetize(&encoded.bitstream).unwrap()
}

#[test]
fn clean_stream_is_bit_identical_to_strict_segmentation() {
    let (model, cfg) = tiny_model(TrainTask::Segmentation);
    let seq = davis_sequence("cows", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let strict = model.run_segmentation(&seq, &encoded).unwrap();
    let ps = packetize(&encoded.bitstream).unwrap();
    let resilient = model
        .run_segmentation_resilient(&seq, &ps, &ResilienceOptions::default())
        .unwrap();
    assert!(
        resilient.concealment.is_clean(),
        "{}",
        resilient.concealment
    );
    assert_eq!(resilient.masks, strict.masks);
    assert_eq!(resilient.trace, strict.trace);
}

#[test]
fn clean_stream_is_bit_identical_with_fallback_enabled() {
    let (mut model, cfg) = tiny_model(TrainTask::Segmentation);
    let seq = davis_sequence("parkour", &cfg).unwrap();
    // Route fast B-frames through NN-L in both paths; the resilient walk
    // must replicate the mid-walk ref_segs insertions exactly.
    let mut fb_cfg = *model.config();
    fb_cfg.fallback_mv_threshold = Some(1.5);
    model = VrDann::from_parts(fb_cfg, &model.export_nns()).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let strict = model.run_segmentation(&seq, &encoded).unwrap();
    let ps = packetize(&encoded.bitstream).unwrap();
    let resilient = model
        .run_segmentation_resilient(&seq, &ps, &ResilienceOptions::default())
        .unwrap();
    assert!(resilient.concealment.is_clean());
    assert_eq!(resilient.masks, strict.masks);
    assert_eq!(resilient.trace, strict.trace);
}

#[test]
fn lost_b_mvs_are_concealed_and_counted() {
    let (model, cfg) = tiny_model(TrainTask::Segmentation);
    let seq = davis_sequence("dog", &cfg).unwrap();
    let ps = encode_and_packetize(&model, &seq);
    let (damaged, log) = inject(&ps, &FaultConfig::b_mv_loss(0.5, 17));
    assert!(!log.events.is_empty(), "rate 0.5 planted nothing");
    let run = model
        .run_segmentation_resilient(&seq, &damaged, &ResilienceOptions::default())
        .unwrap();
    assert_eq!(run.masks.len(), seq.len());
    // Every faulted B-frame lands in exactly one concealment bucket: copied
    // (payload unusable) or salvaged (partial/suspect records).
    let c = run.concealment;
    assert_eq!(c.b_copied + c.b_salvaged, log.events.len(), "{c}");
    assert_eq!(c.anchors_lost, 0);
    assert_eq!(c.nns_failures, 0);
    // Concealment holds accuracy above a trivial all-background predictor.
    let scores = score_sequence(&run.masks, &seq.gt_masks);
    assert!(scores.iou > 0.3, "IoU collapsed to {:.3}", scores.iou);
}

#[test]
fn lost_anchor_triggers_substitution_and_nnl_reinference() {
    let (model, cfg) = tiny_model(TrainTask::Segmentation);
    let seq = davis_sequence("goat", &cfg).unwrap();
    let mut ps = encode_and_packetize(&model, &seq);
    let victim = ps
        .packets
        .iter()
        .position(|p| p.ftype.is_anchor() && p.decode_idx > 0)
        .expect("stream has a second anchor");
    ps.packets[victim].lost = true;
    ps.packets[victim].payload = ps.packets[victim].payload.slice(0..0);
    let run = model
        .run_segmentation_resilient(&seq, &ps, &ResilienceOptions::default())
        .unwrap();
    assert_eq!(run.masks.len(), seq.len());
    let c = run.concealment;
    assert_eq!(c.anchors_lost, 1, "{c}");
    assert_eq!(c.nnl_reinferences, 1, "{c}");
    assert!(c.anchors_substituted > 0, "{c}");
    // The re-inference shows up in the trace as an NN-L B-frame.
    let nnl_b = run
        .trace
        .frames
        .iter()
        .filter(|f| {
            f.ftype == vrd_codec::FrameType::B && matches!(f.kind, vr_dann::ComputeKind::NnL { .. })
        })
        .count();
    assert_eq!(nnl_b, 1);
}

#[test]
fn nns_faults_fall_back_to_raw_reconstruction() {
    let (model, cfg) = tiny_model(TrainTask::Segmentation);
    let seq = davis_sequence("camel", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let ps = packetize(&encoded.bitstream).unwrap();
    // Fault every NN-S inference: the run must match the refine=false
    // ablation exactly — same masks, zero NN-S ops on B-frames.
    let all_faults = ResilienceOptions {
        nns_failure_rate: 1.0,
        seed: 1,
    };
    let run = model
        .run_segmentation_resilient(&seq, &ps, &all_faults)
        .unwrap();
    let raw = {
        let mut cfg_raw = *model.config();
        cfg_raw.refine = false;
        VrDann::from_parts(cfg_raw, &model.export_nns())
            .unwrap()
            .run_segmentation(&seq, &encoded)
            .unwrap()
    };
    assert_eq!(run.masks, raw.masks);
    assert_eq!(run.concealment.nns_failures, encoded.stats.b_frames);
    // A zero rate with the same seed conceals nothing.
    let none = ResilienceOptions {
        nns_failure_rate: 0.0,
        seed: 1,
    };
    let clean = model.run_segmentation_resilient(&seq, &ps, &none).unwrap();
    assert!(clean.concealment.is_clean());
}

#[test]
fn detection_clean_stream_is_bit_identical_and_loss_degrades_gracefully() {
    let (model, cfg) = tiny_model(TrainTask::Detection);
    let seq = davis_sequence("drift-straight", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let strict = model.run_detection(&seq, &encoded).unwrap();
    let ps = packetize(&encoded.bitstream).unwrap();
    let clean = model
        .run_detection_resilient(&seq, &ps, &ResilienceOptions::default())
        .unwrap();
    assert!(clean.concealment.is_clean());
    assert_eq!(clean.detections, strict.detections);
    assert_eq!(clean.trace, strict.trace);

    let (damaged, log) = inject(&ps, &FaultConfig::uniform(0.3, 23));
    assert!(!log.events.is_empty());
    let run = model
        .run_detection_resilient(&seq, &damaged, &ResilienceOptions::default())
        .unwrap();
    assert_eq!(run.detections.len(), seq.len());
    assert!(run.concealment.total() > 0);
    // Most frames still carry detections after concealment.
    let with_dets = run.detections.iter().filter(|d| !d.is_empty()).count();
    assert!(with_dets > seq.len() / 2, "{with_dets}/{}", seq.len());
}

#[test]
fn every_sequence_survives_heavy_mixed_damage() {
    let (model, cfg) = tiny_model(TrainTask::Segmentation);
    for name in ["cows", "dog", "parkour"] {
        let seq = davis_sequence(name, &cfg).unwrap();
        let ps = encode_and_packetize(&model, &seq);
        for seed in 0..4u64 {
            let fault_cfg = FaultConfig {
                seed,
                rate: 0.35,
                kinds: vec![
                    FaultKind::BitFlip,
                    FaultKind::Truncate,
                    FaultKind::DropBMvs,
                    FaultKind::DropFrame,
                ],
                b_frames_only: false,
                protect_first_i: true,
            };
            let (damaged, _) = inject(&ps, &fault_cfg);
            let run = model
                .run_segmentation_resilient(&seq, &damaged, &ResilienceOptions::default())
                .unwrap();
            assert_eq!(run.masks.len(), seq.len(), "{name} seed {seed}");
        }
    }
}
