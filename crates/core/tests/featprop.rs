//! End-to-end feature-space propagation (the Jain & Gonzalez baseline):
//! staged NN-L on I/P anchors, warped backbone features + head-only
//! inference on B-frames, all through the shared streaming engine.

use vr_dann::{ComputeKind, SchemeKind, TrainTask, VrDann, VrDannConfig};
use vrd_codec::FrameType;
use vrd_metrics::score_sequence;
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn tiny_model() -> VrDann {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn feature_propagation_runs_end_to_end() {
    let model = tiny_model();
    let seq = davis_sequence("cows", &SuiteConfig::tiny()).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let run = model.run_feature_propagation(&seq, &encoded).unwrap();

    assert_eq!(run.masks.len(), seq.len());
    assert_eq!(run.trace.scheme, SchemeKind::FeatProp);
    assert_eq!(run.trace.frames.len(), seq.len());

    // Every B-frame is billed as head-only inference on warped features;
    // anchors are full NN-L passes. No NN-S, no flow, no model switches.
    let nnl_ops = run
        .trace
        .frames
        .iter()
        .find_map(|f| match f.kind {
            ComputeKind::NnL { ops } => Some(ops),
            _ => None,
        })
        .expect("no anchor NN-L pass in the trace");
    let mut b_frames = 0;
    for f in &run.trace.frames {
        match (&f.ftype, &f.kind) {
            (FrameType::B, ComputeKind::FeatHead { ops, .. }) => {
                b_frames += 1;
                assert!(
                    *ops < nnl_ops / 2,
                    "head-only pass ({ops} ops) should be a fraction of NN-L ({nnl_ops})"
                );
                assert!(!f.full_decode, "propagation must not decode B-frame pixels");
            }
            (FrameType::B, k) => panic!("B-frame billed as {k:?}, expected FeatHead"),
            (_, ComputeKind::NnL { .. }) => {}
            (t, k) => panic!("anchor {t:?} billed as {k:?}"),
        }
    }
    assert!(b_frames > 0, "sequence produced no B-frames");

    // Warped-feature masks track the ground truth well enough to sit in
    // the published baseline band (well below FAVOS, well above garbage).
    let s = score_sequence(&run.masks, &seq.gt_masks);
    assert!(s.iou > 0.5, "feature propagation IoU collapsed: {}", s.iou);
}

#[test]
fn featprop_anchors_match_vrdann_bit_exactly() {
    // Same seed lanes + staged forward == fused segment means the anchor
    // masks are bit-identical to VR-DANN's: the baseline comparison then
    // isolates the propagation method, not anchor noise.
    let model = tiny_model();
    let seq = davis_sequence("camel", &SuiteConfig::tiny()).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let fp = model.run_feature_propagation(&seq, &encoded).unwrap();
    let vr = model.run_segmentation(&seq, &encoded).unwrap();

    let mut anchors = 0;
    for (i, f) in fp.trace.frames.iter().enumerate() {
        if matches!(f.kind, ComputeKind::NnL { .. }) {
            anchors += 1;
            let d = f.display as usize;
            assert_eq!(
                fp.masks[d].words(),
                vr.masks[d].words(),
                "anchor {i} (display {d}) diverged from VR-DANN"
            );
        }
    }
    assert!(anchors > 1, "trace had fewer than two anchors");
}

#[test]
fn from_parts_model_stages_and_propagates() {
    // Satellite check: the serialized model format is unchanged — NN-S
    // bytes written before the staged-forward refactor still load, and the
    // redeployed model drives feature propagation identically.
    let model = tiny_model();
    let bytes = model.export_nns();
    let restored = VrDann::from_parts(*model.config(), &bytes).unwrap();

    let seq = davis_sequence("cows", &SuiteConfig::tiny()).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let a = model.run_feature_propagation(&seq, &encoded).unwrap();
    let b = restored.run_feature_propagation(&seq, &encoded).unwrap();
    assert_eq!(a.masks.len(), b.masks.len());
    for (x, y) in a.masks.iter().zip(&b.masks) {
        assert_eq!(x.words(), y.words());
    }
}
