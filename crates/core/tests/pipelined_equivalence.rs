//! Property tests pinning the two-lane pipelined executor
//! (`run_*_pipelined`) bit-identical to the sequential engine: same masks,
//! detections, traces, concealment counters and live-frame accounting over
//! random GOP shapes × thread counts (1, 2, 4, 8) × strict/concealing
//! policies. The wave-front fan-out and the decode-lane thread must be
//! invisible in every output.

use proptest::prelude::*;
use std::sync::OnceLock;
use vr_dann::{
    DetectionRun, PipelineOptions, ResilienceOptions, SegmentationRun, TrainTask, VrDann,
    VrDannConfig,
};
use vrd_codec::{inject, BFrameMode, CodecConfig, FaultConfig, FaultKind};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};
use vrd_video::Sequence;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEQ_NAMES: [&str; 4] = ["cows", "dog", "goat", "parkour"];

fn seg_model() -> &'static VrDann {
    static MODEL: OnceLock<VrDann> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        VrDann::train(
            &train,
            TrainTask::Segmentation,
            VrDannConfig {
                nns_hidden: 4,
                ..VrDannConfig::default()
            },
        )
        .unwrap()
    })
}

/// The same trained NN-S redeployed under a different codec configuration
/// (GOP shape randomisation without retraining per case).
fn with_codec(model: &VrDann, codec: CodecConfig) -> VrDann {
    let cfg = VrDannConfig {
        codec,
        ..*model.config()
    };
    VrDann::from_parts(cfg, &model.export_nns()).unwrap()
}

fn assert_seg_identical(seq_run: &SegmentationRun, pipe_run: &SegmentationRun, label: &str) {
    assert_eq!(seq_run.masks, pipe_run.masks, "masks diverged: {label}");
    assert_eq!(seq_run.trace, pipe_run.trace, "trace diverged: {label}");
    assert_eq!(
        seq_run.concealment, pipe_run.concealment,
        "concealment diverged: {label}"
    );
    assert_eq!(
        seq_run.peak_live_frames, pipe_run.peak_live_frames,
        "live-frame accounting diverged: {label}"
    );
    assert_eq!(
        seq_run.peak_live_features, pipe_run.peak_live_features,
        "feature accounting diverged: {label}"
    );
}

fn assert_det_identical(seq_run: &DetectionRun, pipe_run: &DetectionRun, label: &str) {
    assert_eq!(
        seq_run.detections, pipe_run.detections,
        "detections diverged: {label}"
    );
    assert_eq!(seq_run.trace, pipe_run.trace, "trace diverged: {label}");
    assert_eq!(
        seq_run.concealment, pipe_run.concealment,
        "concealment diverged: {label}"
    );
}

fn random_codec(gop_sel: usize, bmode_sel: usize) -> CodecConfig {
    let gop_len = [4, 8, 16][gop_sel % 3];
    CodecConfig {
        gop_len,
        b_frames: match bmode_sel % 9 {
            0 => BFrameMode::Auto,
            // A fixed B run must be shorter than the GOP.
            n => BFrameMode::Fixed(((n - 1) as u8).min(gop_len as u8 - 1)),
        },
        ..CodecConfig::default()
    }
}

fn pick_sequence(seq_sel: usize, frames: usize) -> Sequence {
    let cfg = SuiteConfig {
        frames,
        ..SuiteConfig::tiny()
    };
    davis_sequence(SEQ_NAMES[seq_sel % SEQ_NAMES.len()], &cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn strict_pipelined_matches_sequential(
        gop_sel in 0usize..3,
        bmode_sel in 0usize..9,
        seq_sel in 0usize..4,
        frames in 24usize..56,
        cap in 1usize..9,
    ) {
        let model = with_codec(seg_model(), random_codec(gop_sel, bmode_sel));
        let seq = pick_sequence(seq_sel, frames);
        let encoded = model.encode(&seq).unwrap();
        let baseline = model.run_segmentation(&seq, &encoded).unwrap();
        for threads in THREADS {
            let opts = PipelineOptions {
                threads: Some(threads),
                channel_capacity: Some(cap),
            };
            let piped = model.run_segmentation_pipelined(&seq, &encoded, &opts).unwrap();
            assert_seg_identical(
                &baseline,
                &piped,
                &format!("strict seg, {threads} threads, cap {cap}"),
            );
            prop_assert_eq!(piped.peak_inflight_units <= cap, true);
        }
    }

    #[test]
    fn concealing_pipelined_matches_sequential(
        gop_sel in 0usize..3,
        bmode_sel in 0usize..9,
        seq_sel in 0usize..4,
        fault_seed in 0u64..1_000_000,
        rate_pct in 5u64..35,
        nns_fail_pct in 0u64..30,
    ) {
        let model = with_codec(seg_model(), random_codec(gop_sel, bmode_sel));
        let seq = pick_sequence(seq_sel, 48);
        let encoded = model.encode(&seq).unwrap();
        let stream = vrd_codec::packetize(&encoded.bitstream).unwrap();
        let faults = FaultConfig {
            seed: fault_seed,
            rate: rate_pct as f64 / 100.0,
            kinds: vec![
                FaultKind::DropFrame,
                FaultKind::DropBMvs,
                FaultKind::Truncate,
            ],
            b_frames_only: false,
            protect_first_i: true,
        };
        let (damaged, _log) = inject(&stream, &faults);
        let res = ResilienceOptions {
            nns_failure_rate: nns_fail_pct as f64 / 100.0,
            seed: fault_seed ^ 0x5eed,
        };
        let baseline = model.run_segmentation_resilient(&seq, &damaged, &res).unwrap();
        for threads in THREADS {
            let opts = PipelineOptions {
                threads: Some(threads),
                channel_capacity: None,
            };
            let piped = model
                .run_segmentation_resilient_pipelined(&seq, &damaged, &res, &opts)
                .unwrap();
            assert_seg_identical(
                &baseline,
                &piped,
                &format!("concealing seg, {threads} threads, rate {rate_pct}%"),
            );
        }
    }
}

#[test]
fn detection_pipelined_matches_sequential_strict_and_resilient() {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Detection,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();
    let seq = davis_sequence("camel", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();

    let baseline = model.run_detection(&seq, &encoded).unwrap();
    for threads in THREADS {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: Some(4),
        };
        let piped = model
            .run_detection_pipelined(&seq, &encoded, &opts)
            .unwrap();
        assert_det_identical(&baseline, &piped, &format!("strict det, {threads} threads"));
    }

    let stream = vrd_codec::packetize(&encoded.bitstream).unwrap();
    let faults = FaultConfig {
        seed: 0xdec0de,
        rate: 0.25,
        kinds: vec![FaultKind::DropFrame, FaultKind::DropBMvs],
        b_frames_only: false,
        protect_first_i: true,
    };
    let (damaged, _log) = inject(&stream, &faults);
    let res = ResilienceOptions {
        nns_failure_rate: 0.1,
        seed: 0xfa17,
    };
    let baseline = model.run_detection_resilient(&seq, &damaged, &res).unwrap();
    for threads in THREADS {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: Some(4),
        };
        let piped = model
            .run_detection_resilient_pipelined(&seq, &damaged, &res, &opts)
            .unwrap();
        assert_det_identical(
            &baseline,
            &piped,
            &format!("resilient det, {threads} threads"),
        );
    }
}

#[test]
fn featprop_pipelined_matches_sequential() {
    let model = seg_model();
    let seq = pick_sequence(0, 48);
    let encoded = model.encode(&seq).unwrap();
    let baseline = model.run_feature_propagation(&seq, &encoded).unwrap();
    for threads in THREADS {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: Some(4),
        };
        let piped = model
            .run_feature_propagation_pipelined(&seq, &encoded, &opts)
            .unwrap();
        assert_seg_identical(&baseline, &piped, &format!("featprop, {threads} threads"));
    }
}

#[test]
fn adaptive_fallback_pipelined_matches_sequential() {
    // The fallback reroutes fast B-frames through NN-L mid-GOP, mutating
    // the reference window — the pipelined executor must flush its wave at
    // exactly that point to keep earlier B-frames' sandwiches identical.
    let base = seg_model();
    let cfg = VrDannConfig {
        fallback_mv_threshold: Some(1.5),
        ..*base.config()
    };
    let model = VrDann::from_parts(cfg, &base.export_nns()).unwrap();
    let seq = pick_sequence(3, 48); // parkour: fast motion
    let encoded = model.encode(&seq).unwrap();
    let baseline = model.run_segmentation(&seq, &encoded).unwrap();
    assert!(
        baseline
            .trace
            .frames
            .iter()
            .filter(|f| f.ftype == vrd_codec::FrameType::B)
            .any(|f| f.kind.uses_large_model()),
        "fallback rerouted nothing; the barrier under test never fired"
    );
    for threads in THREADS {
        let opts = PipelineOptions {
            threads: Some(threads),
            channel_capacity: Some(2),
        };
        let piped = model
            .run_segmentation_pipelined(&seq, &encoded, &opts)
            .unwrap();
        assert_seg_identical(&baseline, &piped, &format!("fallback, {threads} threads"));
    }
}
