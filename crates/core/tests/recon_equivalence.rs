//! Property tests pinning the word-parallel B-frame reconstruction and the
//! fused sandwich assembly to their retained per-pixel references
//! (`vr_dann::recon::reference`, `vr_dann::sandwich::reference`) across
//! random masks and motion-vector patterns, including unaligned block
//! offsets at word boundaries and out-of-range (edge-replicated) sources.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vr_dann::{build_sandwich, recon, reconstruct_b_frame, sandwich, ReconConfig};
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::{MvRecord, RefMv};
use vrd_video::SegMask;

const W: usize = 192; // three words per row
const H: usize = 48;
const MB: usize = 16;

fn mask_from_seed(seed: u64) -> SegMask {
    SegMask::from_bits(
        W,
        H,
        (0..W * H).map(|i| vrd_video::texture::hash2(i as i64, 29, seed) & 1 == 1),
    )
}

fn anchors(seed: u64) -> BTreeMap<u32, SegMask> {
    let mut refs = BTreeMap::new();
    refs.insert(0u32, mask_from_seed(seed));
    refs.insert(4u32, mask_from_seed(seed ^ 0xdead));
    refs
}

/// A full-coverage MV grid whose sources are a deterministic function of the
/// seed: arbitrary pixel offsets (word-straddling), including out-of-range
/// coordinates that exercise edge replication, plus a sprinkling of
/// bi-predicted and intra blocks.
fn random_info(seed: u64, bi_frac: u64, intra_frac: u64) -> BFrameInfo {
    let mut mvs = Vec::new();
    let mut intra_blocks = Vec::new();
    for by in 0..(H / MB) {
        for bx in 0..(W / MB) {
            let s = vrd_video::texture::hash2(bx as i64, by as i64, seed);
            if s % 100 < intra_frac {
                intra_blocks.push((bx as u32 * MB as u32, by as u32 * MB as u32));
                continue;
            }
            let ref0 = RefMv {
                frame: if s & 4 == 0 { 0 } else { 4 },
                // Offsets in [-24, W+8): unaligned, word-straddling, and
                // sometimes fully or partially outside the frame.
                src_x: (s % (W as u64 + 32)) as i32 - 24,
                src_y: ((s >> 8) % (H as u64 + 16)) as i32 - 8,
            };
            let ref1 = (s % 100 < 50 + bi_frac).then(|| RefMv {
                frame: if s & 8 == 0 { 0 } else { 4 },
                src_x: ((s >> 16) % (W as u64 + 32)) as i32 - 24,
                src_y: ((s >> 24) % (H as u64 + 16)) as i32 - 8,
            });
            mvs.push(MvRecord {
                dst_x: bx as u32 * MB as u32,
                dst_y: by as u32 * MB as u32,
                ref0,
                ref1,
            });
        }
    }
    BFrameInfo {
        display_idx: 2,
        mvs,
        intra_blocks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_reconstruction_matches_reference(
        seed in 0u64..1_000_000,
        bi_frac in 0u64..50,
        intra_frac in 0u64..20,
        mean_filter in 0u8..2,
    ) {
        let refs = anchors(seed);
        let info = random_info(seed, bi_frac, intra_frac);
        let cfg = ReconConfig { mean_filter: mean_filter == 1, ..ReconConfig::default() };
        let packed = reconstruct_b_frame(&info, &refs, W, H, MB, &cfg).unwrap();
        let scalar = recon::reference::reconstruct_b_frame(&info, &refs, W, H, MB, &cfg).unwrap();
        prop_assert_eq!(&packed, &scalar);

        for gray_is_foreground in [false, true] {
            let cfg = ReconConfig { gray_is_foreground, ..cfg };
            prop_assert_eq!(
                recon::plane_to_mask(&packed, &cfg),
                recon::reference::plane_to_mask(&scalar, &cfg)
            );
        }
    }

    #[test]
    fn fused_sandwich_matches_reference(seed in 0u64..1_000_000) {
        let refs = anchors(seed);
        let info = random_info(seed, 25, 5);
        let plane = reconstruct_b_frame(&info, &refs, W, H, MB, &ReconConfig::default()).unwrap();
        let fused = build_sandwich(info.display_idx, &plane, &refs).unwrap();
        let scalar = sandwich::reference::build_sandwich(info.display_idx, &plane, &refs).unwrap();
        prop_assert_eq!(fused.as_slice(), scalar.as_slice());
    }

    #[test]
    fn packed_reconstruction_matches_reference_h265_blocks(seed in 0u64..1_000_000) {
        // H.265 uses 8-px blocks — off-word-multiple destinations every
        // other block column.
        let refs = anchors(seed);
        let mut info = random_info(seed, 25, 5);
        // Re-grid the same sources onto 8-px destinations.
        info.mvs = info
            .mvs
            .iter()
            .enumerate()
            .map(|(i, mv)| MvRecord {
                dst_x: (i as u32 * 8) % (W as u32),
                dst_y: ((i as u32 * 8) / (W as u32)) * 8,
                ..*mv
            })
            .collect();
        info.intra_blocks.clear();
        let cfg = ReconConfig::default();
        let packed = reconstruct_b_frame(&info, &refs, W, H, 8, &cfg).unwrap();
        let scalar = recon::reference::reconstruct_b_frame(&info, &refs, W, H, 8, &cfg).unwrap();
        prop_assert_eq!(packed, scalar);
    }
}
