//! Dense flow estimation: coarse block matching + bilinear densification.
//!
//! This is the FlowNet stand-in used by the DFF baseline. It computes a
//! backward flow (current → reference) by exhaustively matching overlapping
//! blocks with a motion-cost penalty, then bilinearly interpolating the block
//! motions into a per-pixel field. The estimator's accuracy/failure profile
//! matches what DFF needs: accurate for translational motion, drifting for
//! deformation — which is exactly the trade-off the paper measures against.

use crate::field::FlowField;
use vrd_video::Frame;

/// Configuration of the block-matching flow estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Matching block size in pixels.
    pub block: usize,
    /// Block grid stride (smaller = denser, slower).
    pub stride: usize,
    /// Exhaustive search range in pixels.
    pub range: i32,
    /// Motion-cost penalty per offset pixel (anti-aliasing on periodic
    /// textures).
    pub lambda: u32,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            block: 8,
            stride: 8,
            range: 10,
            lambda: 24,
        }
    }
}

/// Sum of absolute differences between a block of `cur` and `reference`,
/// `u32::MAX` when out of bounds.
fn sad(cur: &Frame, cx: usize, cy: usize, reference: &Frame, rx: i32, ry: i32, size: usize) -> u32 {
    if rx < 0
        || ry < 0
        || rx as usize + size > reference.width()
        || ry as usize + size > reference.height()
    {
        return u32::MAX;
    }
    let (rx, ry) = (rx as usize, ry as usize);
    let mut total = 0u32;
    for row in 0..size {
        for col in 0..size {
            let a = cur.get(cx + col, cy + row) as i32;
            let b = reference.get(rx + col, ry + row) as i32;
            total += (a - b).unsigned_abs();
        }
    }
    total
}

/// Estimates the dense backward flow from `cur` to `reference`.
///
/// # Panics
/// Panics if the frames differ in size or are smaller than one block.
pub fn estimate(cur: &Frame, reference: &Frame, cfg: &FlowConfig) -> FlowField {
    assert_eq!(cur.width(), reference.width(), "frame width mismatch");
    assert_eq!(cur.height(), reference.height(), "frame height mismatch");
    let (w, h) = (cur.width(), cur.height());
    assert!(
        w >= cfg.block && h >= cfg.block,
        "frame smaller than one flow block"
    );

    // Block-grid motion estimation.
    let gx = (w - cfg.block) / cfg.stride + 1;
    let gy = (h - cfg.block) / cfg.stride + 1;
    let mut grid_dx = vec![0.0f32; gx * gy];
    let mut grid_dy = vec![0.0f32; gx * gy];
    for by in 0..gy {
        for bx in 0..gx {
            let px = bx * cfg.stride;
            let py = by * cfg.stride;
            let mut best = (0i32, 0i32, u32::MAX);
            for dy in -cfg.range..=cfg.range {
                for dx in -cfg.range..=cfg.range {
                    let s = sad(
                        cur,
                        px,
                        py,
                        reference,
                        px as i32 + dx,
                        py as i32 + dy,
                        cfg.block,
                    );
                    if s == u32::MAX {
                        continue;
                    }
                    let cost = s + cfg.lambda * (dx.unsigned_abs() + dy.unsigned_abs());
                    if cost < best.2 {
                        best = (dx, dy, cost);
                    }
                }
            }
            grid_dx[by * gx + bx] = best.0 as f32;
            grid_dy[by * gx + bx] = best.1 as f32;
        }
    }

    // Bilinear densification from block centres to pixels.
    let mut field = FlowField::zeros(w, h);
    let centre = (cfg.block / 2) as f32;
    for y in 0..h {
        for x in 0..w {
            // Position in grid coordinates.
            let gxf = ((x as f32 - centre) / cfg.stride as f32).clamp(0.0, (gx - 1) as f32);
            let gyf = ((y as f32 - centre) / cfg.stride as f32).clamp(0.0, (gy - 1) as f32);
            let x0 = gxf.floor() as usize;
            let y0 = gyf.floor() as usize;
            let x1 = (x0 + 1).min(gx - 1);
            let y1 = (y0 + 1).min(gy - 1);
            let fx = gxf - x0 as f32;
            let fy = gyf - y0 as f32;
            let lerp = |g: &[f32]| {
                let top = g[y0 * gx + x0] + (g[y0 * gx + x1] - g[y0 * gx + x0]) * fx;
                let bot = g[y1 * gx + x0] + (g[y1 * gx + x1] - g[y1 * gx + x0]) * fx;
                top + (bot - top) * fy
            };
            field.set(x, y, lerp(&grid_dx), lerp(&grid_dy));
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::davis::{davis_sequence, SuiteConfig};

    #[test]
    fn recovers_global_translation() {
        // Take a rendered frame and its 3-pixel-right shift; the estimated
        // backward flow should be about (-3, 0) everywhere.
        let seq = davis_sequence("cows", &SuiteConfig::tiny()).unwrap();
        let base = &seq.frames[0];
        let (w, h) = (base.width(), base.height());
        let mut shifted = base.clone();
        for y in 0..h {
            for x in 0..w {
                shifted.set(x, y, base.get_clamped(x as i32 - 3, y as i32));
            }
        }
        let flow = estimate(&shifted, base, &FlowConfig::default());
        // Ignore a border band where clamping distorts the content.
        let mut ok = 0;
        let mut total = 0;
        for y in 8..h - 8 {
            for x in 8..w - 8 {
                let (dx, dy) = flow.get(x, y);
                total += 1;
                if (dx + 3.0).abs() < 1.0 && dy.abs() < 1.0 {
                    ok += 1;
                }
            }
        }
        // Flat background patches are ambiguous under SAD (any offset
        // matches), and the motion-cost penalty keeps them at zero flow, so
        // full recovery is not expected — 70% covers all textured content.
        assert!(
            ok as f64 / total as f64 > 0.70,
            "only {ok}/{total} pixels recovered the shift"
        );
    }

    #[test]
    fn identical_frames_give_zero_flow() {
        let seq = davis_sequence("cows", &SuiteConfig::tiny()).unwrap();
        let flow = estimate(&seq.frames[0], &seq.frames[0], &FlowConfig::default());
        assert!(flow.mean_magnitude() < 0.05, "{}", flow.mean_magnitude());
    }

    #[test]
    fn tracks_a_moving_object_better_than_identity() {
        let seq = davis_sequence("drift-straight", &SuiteConfig::tiny()).unwrap();
        let (a, b) = (&seq.frames[4], &seq.frames[0]);
        let flow = estimate(a, b, &FlowConfig::default());
        // Warping frame 0 toward frame 4 must be closer to frame 4 than
        // frame 0 itself is.
        let warped = flow.warp_frame(b);
        assert!(warped.mean_abs_diff(a) < b.mean_abs_diff(a));
    }

    #[test]
    fn denser_stride_does_not_hurt_warping() {
        let seq = davis_sequence("libby", &SuiteConfig::tiny()).unwrap();
        let (cur, reference) = (&seq.frames[2], &seq.frames[0]);
        let coarse = estimate(cur, reference, &FlowConfig::default());
        let dense = estimate(
            cur,
            reference,
            &FlowConfig {
                stride: 4,
                ..FlowConfig::default()
            },
        );
        let err = |f: &crate::FlowField| f.warp_frame(reference).mean_abs_diff(cur);
        assert!(
            err(&dense) <= err(&coarse) * 1.1,
            "dense {:.2} much worse than coarse {:.2}",
            err(&dense),
            err(&coarse)
        );
    }

    #[test]
    fn camera_pan_is_recovered_as_uniform_flow() {
        use vrd_video::{Scene, Sequence, Texture, Vec2};
        let scene = Scene::new(
            64,
            48,
            Texture::Blobs {
                lo: 50,
                hi: 200,
                scale: 7.0,
            },
            3,
        )
        .with_camera_pan(Vec2::new(2.0, 0.0));
        let seq = Sequence::from_scene("pan", &scene, 4);
        let flow = estimate(&seq.frames[1], &seq.frames[0], &FlowConfig::default());
        // A camera pan of +2 samples the background at x + 2t, so screen
        // content slides *left* by 2 px/frame: the backward flow is (+2, 0).
        let (mut ok, mut total) = (0, 0);
        for y in 8..40 {
            for x in 8..56 {
                let (dx, dy) = flow.get(x, y);
                total += 1;
                if (dx - 2.0).abs() < 1.0 && dy.abs() < 1.0 {
                    ok += 1;
                }
            }
        }
        assert!(ok * 10 > total * 7, "pan recovered on {ok}/{total} pixels");
    }

    #[test]
    #[should_panic(expected = "frame smaller than one flow block")]
    fn rejects_undersized_frames() {
        let f = Frame::new(4, 4);
        let _ = estimate(&f, &f, &FlowConfig::default());
    }
}
