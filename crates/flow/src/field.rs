//! Dense optical-flow fields and warping.

use vrd_video::{Frame, SegMask};

/// A dense backward flow field: for every pixel of the *current* frame,
/// the displacement to its source position in the *reference* frame.
///
/// Backward orientation makes warping trivial and hole-free:
/// `out(x, y) = ref(x + dx(x, y), y + dy(x, y))`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowField {
    width: usize,
    height: usize,
    dx: Vec<f32>,
    dy: Vec<f32>,
}

impl FlowField {
    /// Creates a zero (identity) flow field.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "flow dimensions must be non-zero");
        Self {
            width,
            height,
            dx: vec![0.0; width * height],
            dy: vec![0.0; width * height],
        }
    }

    /// Field width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Displacement at `(x, y)`.
    ///
    /// # Panics
    /// Panics if coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> (f32, f32) {
        let i = y * self.width + x;
        (self.dx[i], self.dy[i])
    }

    /// Sets the displacement at `(x, y)`.
    ///
    /// # Panics
    /// Panics if coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, dx: f32, dy: f32) {
        let i = y * self.width + x;
        self.dx[i] = dx;
        self.dy[i] = dy;
    }

    /// Mean flow magnitude in pixels.
    pub fn mean_magnitude(&self) -> f64 {
        let sum: f64 = self
            .dx
            .iter()
            .zip(&self.dy)
            .map(|(&dx, &dy)| ((dx * dx + dy * dy) as f64).sqrt())
            .sum();
        sum / self.dx.len() as f64
    }

    /// Warps a reference segmentation mask into the current frame:
    /// each output pixel samples the mask at its flow source
    /// (nearest-neighbour, clamped at the borders).
    ///
    /// This is DFF's propagation step, applied to masks rather than deep
    /// feature maps (see `DESIGN.md` §2).
    ///
    /// # Panics
    /// Panics if the mask dimensions differ from the field's.
    pub fn warp_mask(&self, reference: &SegMask) -> SegMask {
        assert_eq!(reference.width(), self.width, "mask width mismatch");
        assert_eq!(reference.height(), self.height, "mask height mismatch");
        let mut out = SegMask::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let (dx, dy) = self.get(x, y);
                let sx = (x as f32 + dx).round() as i32;
                let sy = (y as f32 + dy).round() as i32;
                out.set(x, y, reference.get_clamped(sx, sy));
            }
        }
        out
    }

    /// Warps a reference luma frame into the current frame (bilinear).
    ///
    /// # Panics
    /// Panics if the frame dimensions differ from the field's.
    pub fn warp_frame(&self, reference: &Frame) -> Frame {
        assert_eq!(reference.width(), self.width, "frame width mismatch");
        assert_eq!(reference.height(), self.height, "frame height mismatch");
        let mut out = Frame::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let (dx, dy) = self.get(x, y);
                let sx = x as f32 + dx;
                let sy = y as f32 + dy;
                let x0 = sx.floor() as i32;
                let y0 = sy.floor() as i32;
                let fx = sx - x0 as f32;
                let fy = sy - y0 as f32;
                let p00 = reference.get_clamped(x0, y0) as f32;
                let p10 = reference.get_clamped(x0 + 1, y0) as f32;
                let p01 = reference.get_clamped(x0, y0 + 1) as f32;
                let p11 = reference.get_clamped(x0 + 1, y0 + 1) as f32;
                let top = p00 + (p10 - p00) * fx;
                let bot = p01 + (p11 - p01) * fx;
                out.set(
                    x,
                    y,
                    (top + (bot - top) * fy).round().clamp(0.0, 255.0) as u8,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::Rect;

    #[test]
    fn identity_flow_is_a_noop() {
        let mut mask = SegMask::new(16, 12);
        mask.fill_rect(Rect::new(4, 4, 8, 8));
        let flow = FlowField::zeros(16, 12);
        assert_eq!(flow.warp_mask(&mask), mask);
        assert_eq!(flow.mean_magnitude(), 0.0);
    }

    #[test]
    fn constant_flow_translates_mask() {
        let mut mask = SegMask::new(16, 12);
        mask.fill_rect(Rect::new(4, 4, 8, 8));
        let mut flow = FlowField::zeros(16, 12);
        for y in 0..12 {
            for x in 0..16 {
                // Backward flow of (-2, -1): content moves by (+2, +1).
                flow.set(x, y, -2.0, -1.0);
            }
        }
        let warped = flow.warp_mask(&mask);
        assert_eq!(warped.bounding_box(), Some(Rect::new(6, 5, 10, 9)));
        assert!((flow.mean_magnitude() - (5.0f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn warp_frame_is_bilinear_for_halfpixel() {
        let f = Frame::from_vec(4, 1, vec![0, 100, 200, 200]);
        let mut flow = FlowField::zeros(4, 1);
        flow.set(0, 0, 0.5, 0.0);
        let out = flow.warp_frame(&f);
        assert_eq!(out.get(0, 0), 50);
    }

    #[test]
    #[should_panic(expected = "mask width mismatch")]
    fn warp_rejects_mismatched_mask() {
        let flow = FlowField::zeros(8, 8);
        let mask = SegMask::new(4, 8);
        let _ = flow.warp_mask(&mask);
    }
}
