//! # vrd-flow — dense optical flow (FlowNet stand-in)
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020). The DFF baseline
//! (Zhu et al., CVPR 2017) propagates key-frame results to non-key frames by
//! warping them along FlowNet's optical flow; this crate supplies the flow
//! ([`estimate`]) and the warping ([`FlowField::warp_mask`],
//! [`FlowField::warp_frame`]). See `DESIGN.md` §2 for why a classical
//! block-matching flow preserves the paper's DFF comparison.
//!
//! ## Example
//!
//! ```
//! use vrd_flow::{estimate, FlowConfig};
//! use vrd_video::davis::{davis_sequence, SuiteConfig};
//!
//! # fn main() -> Result<(), String> {
//! let seq = davis_sequence("dog", &SuiteConfig::tiny())?;
//! let flow = estimate(&seq.frames[1], &seq.frames[0], &FlowConfig::default());
//! // Propagate frame 0's ground-truth mask to frame 1.
//! let propagated = flow.warp_mask(&seq.gt_masks[0]);
//! assert_eq!(propagated.width(), seq.width());
//! # Ok(())
//! # }
//! ```

pub mod estimator;
pub mod field;

pub use estimator::{estimate, FlowConfig};
pub use field::FlowField;
