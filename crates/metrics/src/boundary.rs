//! Contour (boundary) F-measure — the DAVIS `F` metric proper.
//!
//! The paper's F-score is pixel-level; DAVIS additionally evaluates contour
//! quality: precision/recall of the predicted boundary against the
//! ground-truth boundary within a small tolerance. Reconstruction noise is
//! concentrated at macro-block edges, so this metric is the most sensitive
//! probe of what NN-S refinement fixes.

use vrd_video::SegMask;

/// Extracts boundary pixels: foreground pixels with at least one
/// 4-neighbour of background (or the frame edge does not count).
fn boundary_pixels(mask: &SegMask) -> Vec<(usize, usize)> {
    let (w, h) = (mask.width(), mask.height());
    let mut out = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if mask.get(x, y) == 0 {
                continue;
            }
            let edge = (x > 0 && mask.get(x - 1, y) == 0)
                || (x + 1 < w && mask.get(x + 1, y) == 0)
                || (y > 0 && mask.get(x, y - 1) == 0)
                || (y + 1 < h && mask.get(x, y + 1) == 0);
            if edge {
                out.push((x, y));
            }
        }
    }
    out
}

/// Binary map of all pixels within `tolerance` (Chebyshev) of any point.
fn dilate(points: &[(usize, usize)], w: usize, h: usize, tolerance: usize) -> Vec<bool> {
    let mut map = vec![false; w * h];
    let t = tolerance as i64;
    for &(x, y) in points {
        for dy in -t..=t {
            for dx in -t..=t {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    map[ny as usize * w + nx as usize] = true;
                }
            }
        }
    }
    map
}

/// Contour F-measure of `pred` against `gt` with the given pixel tolerance.
///
/// Precision = fraction of predicted boundary pixels within `tolerance` of
/// the ground-truth boundary; recall symmetric; F = harmonic mean. Both
/// masks empty scores 1.0, only one empty scores 0.0.
///
/// # Panics
/// Panics if the masks differ in size.
///
/// # Example
/// ```
/// use vrd_metrics::boundary_f_score;
/// use vrd_video::{Rect, SegMask};
///
/// let mut gt = SegMask::new(32, 32);
/// gt.fill_rect(Rect::new(8, 8, 24, 24));
/// // A one-pixel dilation is a perfect contour at tolerance 1...
/// let mut pred = SegMask::new(32, 32);
/// pred.fill_rect(Rect::new(7, 7, 25, 25));
/// assert_eq!(boundary_f_score(&pred, &gt, 1), 1.0);
/// // ...but not at tolerance 0.
/// assert!(boundary_f_score(&pred, &gt, 0) < 1.0);
/// ```
pub fn boundary_f_score(pred: &SegMask, gt: &SegMask, tolerance: usize) -> f64 {
    assert_eq!(pred.width(), gt.width(), "mask width mismatch");
    assert_eq!(pred.height(), gt.height(), "mask height mismatch");
    let (w, h) = (pred.width(), pred.height());
    let bp = boundary_pixels(pred);
    let bg = boundary_pixels(gt);
    match (bp.is_empty(), bg.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let near_gt = dilate(&bg, w, h, tolerance);
    let near_pred = dilate(&bp, w, h, tolerance);
    let precision =
        bp.iter().filter(|&&(x, y)| near_gt[y * w + x]).count() as f64 / bp.len() as f64;
    let recall = bg.iter().filter(|&&(x, y)| near_pred[y * w + x]).count() as f64 / bg.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Mean contour F over a mask sequence.
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn boundary_f_sequence(preds: &[SegMask], gts: &[SegMask], tolerance: usize) -> f64 {
    assert_eq!(preds.len(), gts.len(), "sequence length mismatch");
    assert!(!preds.is_empty(), "cannot score an empty sequence");
    preds
        .iter()
        .zip(gts)
        .map(|(p, g)| boundary_f_score(p, g, tolerance))
        .sum::<f64>()
        / preds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::Rect;

    fn mask(r: Rect) -> SegMask {
        let mut m = SegMask::new(32, 32);
        m.fill_rect(r);
        m
    }

    #[test]
    fn identical_masks_score_one() {
        let m = mask(Rect::new(8, 8, 24, 24));
        assert_eq!(boundary_f_score(&m, &m, 1), 1.0);
    }

    #[test]
    fn one_pixel_shift_within_tolerance_still_scores_one() {
        let a = mask(Rect::new(8, 8, 24, 24));
        let b = mask(Rect::new(9, 8, 25, 24));
        assert_eq!(boundary_f_score(&b, &a, 1), 1.0);
        // Zero tolerance punishes the same shift.
        assert!(boundary_f_score(&b, &a, 0) < 0.8);
    }

    #[test]
    fn far_shift_scores_low() {
        let a = mask(Rect::new(2, 2, 12, 12));
        let b = mask(Rect::new(18, 18, 28, 28));
        assert!(boundary_f_score(&b, &a, 2) < 0.05);
    }

    #[test]
    fn empty_cases() {
        let empty = SegMask::new(32, 32);
        let full = mask(Rect::new(2, 2, 10, 10));
        assert_eq!(boundary_f_score(&empty, &empty, 1), 1.0);
        assert_eq!(boundary_f_score(&empty, &full, 1), 0.0);
        assert_eq!(boundary_f_score(&full, &empty, 1), 0.0);
    }

    #[test]
    fn blocky_boundary_scores_below_smooth() {
        // Ground truth: a rectangle. Prediction A: same rectangle. B: the
        // rectangle with a blocky 4-pixel notch (macro-block noise).
        let gt = mask(Rect::new(8, 8, 24, 24));
        let mut blocky = gt.clone();
        for y in 8..12 {
            for x in 8..12 {
                blocky.set(x, y, 0);
            }
        }
        let smooth = boundary_f_score(&gt, &gt, 1);
        let noisy = boundary_f_score(&blocky, &gt, 1);
        assert!(noisy < smooth, "{noisy} vs {smooth}");
        assert!(noisy > 0.5, "notch should not collapse the score");
    }

    #[test]
    fn sequence_averaging() {
        let gt = mask(Rect::new(8, 8, 24, 24));
        let far = mask(Rect::new(1, 1, 4, 4));
        let f = boundary_f_sequence(&[gt.clone(), far.clone()], &[gt.clone(), gt], 1);
        assert!(f > 0.4 && f < 0.6, "mean of 1.0 and ~0.0: {f}");
    }
}
