//! Detection accuracy: VOC-style average precision (§V-A of the paper).
//!
//! "AP score is to take the average value of the precision across all recall
//! values and mAP is the average of AP scores across all categories." Our
//! synthetic suites are single-category, so mAP here is the AP over the
//! whole suite (computed per sequence and averaged, mirroring the paper's
//! per-group reporting).

use vrd_video::{Detection, Rect};

/// The IoU threshold above which a detection counts as a true positive
/// (the ImageNet-VID convention).
pub const MATCH_IOU: f64 = 0.5;

/// One frame's detections and ground truth.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameDetections {
    /// Predicted, scored boxes.
    pub detections: Vec<Detection>,
    /// Ground-truth boxes.
    pub ground_truth: Vec<Rect>,
}

/// Computes average precision over a set of frames at [`MATCH_IOU`].
///
/// Standard VOC continuous AP: detections are globally sorted by descending
/// score, greedily matched (each ground-truth box at most once, per frame),
/// and AP is the area under the interpolated precision-recall curve.
/// Returns 1.0 when there is no ground truth and no detections.
pub fn average_precision(frames: &[FrameDetections]) -> f64 {
    let total_gt: usize = frames.iter().map(|f| f.ground_truth.len()).sum();
    let total_det: usize = frames.iter().map(|f| f.detections.len()).sum();
    if total_gt == 0 {
        return if total_det == 0 { 1.0 } else { 0.0 };
    }

    // (score, frame index, detection index), globally sorted.
    let mut ranked: Vec<(f32, usize, usize)> = frames
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            f.detections
                .iter()
                .enumerate()
                .map(move |(di, d)| (d.score, fi, di))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));

    let mut matched: Vec<Vec<bool>> = frames
        .iter()
        .map(|f| vec![false; f.ground_truth.len()])
        .collect();
    let mut tp_flags = Vec::with_capacity(ranked.len());
    for &(_, fi, di) in &ranked {
        let det = &frames[fi].detections[di];
        // Best unmatched ground-truth box in the same frame.
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in frames[fi].ground_truth.iter().enumerate() {
            if matched[fi][gi] {
                continue;
            }
            let iou = det.rect.iou(gt);
            if iou >= MATCH_IOU && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        if let Some((gi, _)) = best {
            matched[fi][gi] = true;
            tp_flags.push(true);
        } else {
            tp_flags.push(false);
        }
    }

    // Precision-recall curve and its interpolated area.
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(tp_flags.len());
    for &is_tp in &tp_flags {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        curve.push((tp as f64 / total_gt as f64, tp as f64 / (tp + fp) as f64));
    }
    // Monotone-decreasing interpolation of precision from the right.
    let mut max_prec = 0.0;
    for i in (0..curve.len()).rev() {
        max_prec = curve[i].1.max(max_prec);
        curve[i].1 = max_prec;
    }
    // Area under the curve over recall.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for &(r, p) in &curve {
        ap += (r - prev_recall) * p;
        prev_recall = r;
    }
    ap
}

/// Mean AP over several sequences (each a slice of frames).
pub fn mean_average_precision(sequences: &[Vec<FrameDetections>]) -> f64 {
    if sequences.is_empty() {
        return 0.0;
    }
    sequences.iter().map(|s| average_precision(s)).sum::<f64>() / sequences.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dets: Vec<Detection>, gts: Vec<Rect>) -> FrameDetections {
        FrameDetections {
            detections: dets,
            ground_truth: gts,
        }
    }

    #[test]
    fn perfect_detections_score_one() {
        let gt = Rect::new(10, 10, 30, 30);
        let frames = vec![frame(vec![Detection::new(gt, 0.9)], vec![gt])];
        assert!((average_precision(&frames) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missed_ground_truth_lowers_ap() {
        let gt1 = Rect::new(0, 0, 10, 10);
        let gt2 = Rect::new(40, 40, 60, 60);
        let frames = vec![frame(vec![Detection::new(gt1, 0.9)], vec![gt1, gt2])];
        let ap = average_precision(&frames);
        assert!((ap - 0.5).abs() < 1e-9, "ap = {ap}");
    }

    #[test]
    fn false_positive_after_tp_keeps_half_then_full_precision() {
        let gt = Rect::new(0, 0, 10, 10);
        let far = Rect::new(50, 50, 60, 60);
        // High-scored correct, low-scored false positive.
        let frames = vec![frame(
            vec![Detection::new(gt, 0.9), Detection::new(far, 0.1)],
            vec![gt],
        )];
        assert!((average_precision(&frames) - 1.0).abs() < 1e-9);
        // Reversed scores: the FP comes first, pulling AP down.
        let frames = vec![frame(
            vec![Detection::new(gt, 0.1), Detection::new(far, 0.9)],
            vec![gt],
        )];
        assert!((average_precision(&frames) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gt = Rect::new(0, 0, 10, 10);
        let frames = vec![frame(
            vec![Detection::new(gt, 0.9), Detection::new(gt, 0.8)],
            vec![gt],
        )];
        // Second duplicate is a false positive; AP stays 1.0 because recall
        // is already complete at the first detection.
        assert!((average_precision(&frames) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loose_boxes_below_threshold_do_not_match() {
        let gt = Rect::new(0, 0, 10, 10);
        let loose = Rect::new(6, 6, 16, 16); // IoU ~ 0.09
        let frames = vec![frame(vec![Detection::new(loose, 0.9)], vec![gt])];
        assert_eq!(average_precision(&frames), 0.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(average_precision(&[frame(vec![], vec![])]), 1.0);
        let spurious = vec![frame(
            vec![Detection::new(Rect::new(0, 0, 5, 5), 0.5)],
            vec![],
        )];
        assert_eq!(average_precision(&spurious), 0.0);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn map_averages_sequences() {
        let gt = Rect::new(0, 0, 10, 10);
        let perfect = vec![frame(vec![Detection::new(gt, 0.9)], vec![gt])];
        let blind = vec![frame(vec![], vec![gt])];
        let map = mean_average_precision(&[perfect, blind]);
        assert!((map - 0.5).abs() < 1e-9);
    }
}
