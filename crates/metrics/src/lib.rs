//! # vrd-metrics — accuracy metrics for the VR-DANN evaluation
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020), implementing
//! exactly the metrics of the paper's §V-A:
//!
//! * segmentation — pixel-level **F-score** and **IoU** ([`PixelCounts`],
//!   [`score_sequence`]), averaged per frame then per sequence as DAVIS
//!   does;
//! * detection — VOC-style **average precision** at IoU 0.5
//!   ([`average_precision`], [`mean_average_precision`]), the ImageNet-VID
//!   convention.
//!
//! ## Example
//!
//! ```
//! use vrd_metrics::PixelCounts;
//! use vrd_video::{Rect, SegMask};
//!
//! let mut gt = SegMask::new(16, 16);
//! gt.fill_rect(Rect::new(4, 4, 12, 12));
//! let counts = PixelCounts::tally(&gt, &gt);
//! assert_eq!(counts.iou(), 1.0);
//! ```

pub mod boundary;
pub mod detection;
pub mod segmentation;

pub use boundary::{boundary_f_score, boundary_f_sequence};
pub use detection::{average_precision, mean_average_precision, FrameDetections, MATCH_IOU};
pub use segmentation::{mean_scores, score_sequence, PixelCounts, SegScores};
