//! Segmentation accuracy: IoU and F-score (§V-A of the paper).
//!
//! "F-Score is defined as the weighted harmonic mean of the test precision
//! and recall on a pixel level, while IoU measures the overlap rate of the
//! segmentation result and the ground truth."

use vrd_video::SegMask;

/// Pixel-level confusion counts of one mask against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PixelCounts {
    /// Foreground predicted, foreground true.
    pub tp: u64,
    /// Foreground predicted, background true.
    pub fp: u64,
    /// Background predicted, foreground true.
    pub fn_: u64,
}

impl PixelCounts {
    /// Tallies a prediction against ground truth.
    ///
    /// Word-parallel over the packed bitplanes: each 64-pixel word pair
    /// contributes three popcounts (`tp = p AND g`, `fp = p AND NOT g`,
    /// `fn = NOT p AND g`). The tail bits past each row's width are zero in
    /// both masks, so the complemented terms cannot miscount them.
    ///
    /// # Panics
    /// Panics if the masks differ in size.
    pub fn tally(pred: &SegMask, gt: &SegMask) -> Self {
        assert_eq!(pred.width(), gt.width(), "mask width mismatch");
        assert_eq!(pred.height(), gt.height(), "mask height mismatch");
        let mut c = PixelCounts::default();
        for (&p, &g) in pred.words().iter().zip(gt.words()) {
            c.tp += u64::from((p & g).count_ones());
            c.fp += u64::from((p & !g).count_ones());
            c.fn_ += u64::from((!p & g).count_ones());
        }
        c
    }

    /// Accumulates another tally (for per-sequence aggregation).
    pub fn merge(&mut self, other: &PixelCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Pixel precision; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Pixel recall; 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F-score: harmonic mean of precision and recall.
    pub fn f_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Intersection-over-union. An empty prediction of an empty ground truth
    /// scores 1.0.
    pub fn iou(&self) -> f64 {
        let union = self.tp + self.fp + self.fn_;
        if union == 0 {
            1.0
        } else {
            self.tp as f64 / union as f64
        }
    }
}

/// Per-sequence segmentation scores: frame-mean IoU and F-score.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegScores {
    /// Mean per-frame F-score.
    pub f_score: f64,
    /// Mean per-frame IoU.
    pub iou: f64,
}

/// Scores a predicted mask sequence against ground truth, averaging
/// per-frame metrics (the DAVIS convention).
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn score_sequence(preds: &[SegMask], gts: &[SegMask]) -> SegScores {
    assert_eq!(preds.len(), gts.len(), "sequence length mismatch");
    assert!(!preds.is_empty(), "cannot score an empty sequence");
    let mut f = 0.0;
    let mut i = 0.0;
    for (p, g) in preds.iter().zip(gts) {
        let c = PixelCounts::tally(p, g);
        f += c.f_score();
        i += c.iou();
    }
    SegScores {
        f_score: f / preds.len() as f64,
        iou: i / preds.len() as f64,
    }
}

/// Retained byte-per-pixel kernels (the pre-packing semantics), kept as the
/// ground truth the word-parallel tally is property-tested and benchmarked
/// against — the same pattern as `vrd_nn::conv::reference`.
pub mod reference {
    use super::PixelCounts;
    use vrd_video::SegMask;

    /// Byte-wise confusion tally over row-major 0/1 buffers — the scalar
    /// ground truth of [`PixelCounts::tally`].
    ///
    /// # Panics
    /// Panics if the buffers differ in length.
    pub fn tally_bytes(pred: &[u8], gt: &[u8]) -> PixelCounts {
        assert_eq!(pred.len(), gt.len(), "mask buffer length mismatch");
        let mut c = PixelCounts::default();
        for (&p, &g) in pred.iter().zip(gt) {
            match (p, g) {
                (1, 1) => c.tp += 1,
                (1, 0) => c.fp += 1,
                (0, 1) => c.fn_ += 1,
                _ => {}
            }
        }
        c
    }

    /// Byte-wise tally of packed masks (expands, then counts per pixel).
    ///
    /// # Panics
    /// Panics if the masks differ in size.
    pub fn tally(pred: &SegMask, gt: &SegMask) -> PixelCounts {
        assert_eq!(pred.width(), gt.width(), "mask width mismatch");
        assert_eq!(pred.height(), gt.height(), "mask height mismatch");
        tally_bytes(&pred.to_byte_vec(), &gt.to_byte_vec())
    }
}

/// Mean of per-sequence scores (the suite averages in Fig. 10).
pub fn mean_scores(scores: &[SegScores]) -> SegScores {
    if scores.is_empty() {
        return SegScores::default();
    }
    SegScores {
        f_score: scores.iter().map(|s| s.f_score).sum::<f64>() / scores.len() as f64,
        iou: scores.iter().map(|s| s.iou).sum::<f64>() / scores.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::Rect;

    fn mask(r: Rect) -> SegMask {
        let mut m = SegMask::new(16, 16);
        m.fill_rect(r);
        m
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let gt = mask(Rect::new(2, 2, 10, 10));
        let c = PixelCounts::tally(&gt, &gt);
        assert_eq!(c.iou(), 1.0);
        assert_eq!(c.f_score(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn disjoint_prediction_scores_zero() {
        let gt = mask(Rect::new(0, 0, 4, 4));
        let pred = mask(Rect::new(8, 8, 12, 12));
        let c = PixelCounts::tally(&pred, &gt);
        assert_eq!(c.iou(), 0.0);
        assert_eq!(c.f_score(), 0.0);
    }

    #[test]
    fn half_overlap_scores_half_iou() {
        let gt = mask(Rect::new(0, 0, 4, 4)); // 16 px
        let pred = mask(Rect::new(2, 0, 6, 4)); // 16 px, 8 shared
        let c = PixelCounts::tally(&pred, &gt);
        assert!((c.iou() - 8.0 / 24.0).abs() < 1e-9);
        assert!((c.f_score() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_on_empty_is_perfect() {
        let empty = SegMask::new(8, 8);
        let c = PixelCounts::tally(&empty, &empty);
        assert_eq!(c.iou(), 1.0);
        assert_eq!(c.f_score(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let gt = mask(Rect::new(0, 0, 4, 4));
        let mut total = PixelCounts::tally(&gt, &gt);
        total.merge(&PixelCounts::tally(&SegMask::new(16, 16), &gt));
        assert_eq!(total.tp, 16);
        assert_eq!(total.fn_, 16);
        assert!((total.recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sequence_scoring_averages_frames() {
        let gt = mask(Rect::new(0, 0, 4, 4));
        let preds = vec![gt.clone(), SegMask::new(16, 16)];
        let gts = vec![gt.clone(), gt];
        let s = score_sequence(&preds, &gts);
        assert!((s.iou - 0.5).abs() < 1e-9);
        let m = mean_scores(&[
            s,
            SegScores {
                f_score: 1.0,
                iou: 1.0,
            },
        ]);
        assert!((m.iou - 0.75).abs() < 1e-9);
        assert_eq!(mean_scores(&[]), SegScores::default());
    }
}
