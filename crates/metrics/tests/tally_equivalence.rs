//! Property tests pinning the word-parallel popcount tally to the retained
//! byte-wise reference across random masks and widths that straddle word
//! boundaries.

use proptest::prelude::*;
use vrd_metrics::segmentation::{reference, PixelCounts};
use vrd_video::SegMask;

fn mask_from_seed(w: usize, h: usize, seed: u64) -> SegMask {
    SegMask::from_bits(
        w,
        h,
        (0..w * h).map(|i| vrd_video::texture::hash2(i as i64, 31, seed) & 1 == 1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_tally_matches_byte_reference(
        w in 1usize..200,
        h in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let pred = mask_from_seed(w, h, seed);
        let gt = mask_from_seed(w, h, seed ^ 0xfeed);
        let packed = PixelCounts::tally(&pred, &gt);
        prop_assert_eq!(packed, reference::tally(&pred, &gt));
        prop_assert_eq!(
            packed,
            reference::tally_bytes(&pred.to_byte_vec(), &gt.to_byte_vec())
        );
        // The three counters partition the foreground pixels.
        let ones_pred = pred.count_ones() as u64;
        let ones_gt = gt.count_ones() as u64;
        prop_assert_eq!(packed.tp + packed.fp, ones_pred);
        prop_assert_eq!(packed.tp + packed.fn_, ones_gt);
    }
}
