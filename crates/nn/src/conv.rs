//! 2D convolution with backpropagation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A stride-1, same-padded `k × k` convolution layer with bias, plus the
/// plumbing needed to train it (gradient buffers, SGD-momentum state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    cin: usize,
    cout: usize,
    k: usize,
    /// Weights laid out `[cout][cin][k][k]`.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    /// Second-moment accumulators (Adam only).
    sw: Vec<f32>,
    sb: Vec<f32>,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform initialised weights.
    ///
    /// # Panics
    /// Panics if any dimension is zero or `k` is even (same-padding needs an
    /// odd kernel).
    pub fn new(cin: usize, cout: usize, k: usize, seed: u64) -> Self {
        assert!(cin > 0 && cout > 0 && k > 0, "conv dims must be non-zero");
        assert!(k % 2 == 1, "same-padded convolution needs an odd kernel");
        let fan_in = (cin * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (0..cout * cin * k * k)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        let n = cout * cin * k * k;
        Self {
            cin,
            cout,
            k,
            w,
            b: vec![0.0; cout],
            gw: vec![0.0; n],
            gb: vec![0.0; cout],
            vw: vec![0.0; n],
            vb: vec![0.0; cout],
            sw: vec![0.0; n],
            sb: vec![0.0; cout],
            cache: None,
        }
    }

    /// Number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Copies out the weights and biases (for serialisation).
    pub fn export_params(&self) -> (Vec<f32>, Vec<f32>) {
        (self.w.clone(), self.b.clone())
    }

    /// Replaces the weights and biases (for deserialisation); resets the
    /// optimiser state.
    ///
    /// # Errors
    /// Returns a message if the lengths do not match this layer's shape.
    pub fn import_params(&mut self, w: &[f32], b: &[f32]) -> Result<(), String> {
        if w.len() != self.w.len() {
            return Err(format!(
                "expected {} weights, got {}",
                self.w.len(),
                w.len()
            ));
        }
        if b.len() != self.b.len() {
            return Err(format!("expected {} biases, got {}", self.b.len(), b.len()));
        }
        self.w.copy_from_slice(w);
        self.b.copy_from_slice(b);
        self.vw.fill(0.0);
        self.vb.fill(0.0);
        self.sw.fill(0.0);
        self.sb.fill(0.0);
        self.zero_grad();
        Ok(())
    }

    /// Multiply-accumulate operations for one forward pass over `h × w`.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.cin * self.cout * self.k * self.k * h * w) as u64
    }

    /// Forward pass; caches the input for the backward pass.
    ///
    /// # Panics
    /// Panics if the input channel count differs from `cin`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.channels(), self.cin, "conv input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let pad = (self.k / 2) as i32;
        let mut out = Tensor::zeros(self.cout, h, w);
        for co in 0..self.cout {
            for y in 0..h {
                for xp in 0..w {
                    let mut acc = self.b[co];
                    for ci in 0..self.cin {
                        for ky in 0..self.k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xp as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                let wi = ((co * self.cin + ci) * self.k + ky) * self.k + kx;
                                acc += self.w[wi] * x.get(ci, sy as usize, sx as usize);
                            }
                        }
                    }
                    out.set(co, y, xp, acc);
                }
            }
        }
        self.cache = Some(x.clone());
        out
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    /// Panics if called before [`Conv2d::forward`] or with a gradient whose
    /// shape does not match the forward output.
    pub fn backward(&mut self, gout: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("forward must run before backward");
        assert_eq!(gout.channels(), self.cout, "grad channel mismatch");
        assert_eq!(
            (gout.height(), gout.width()),
            (x.height(), x.width()),
            "grad spatial mismatch"
        );
        let (h, w) = (x.height(), x.width());
        let pad = (self.k / 2) as i32;
        let mut gin = Tensor::zeros(self.cin, h, w);
        for co in 0..self.cout {
            for y in 0..h {
                for xp in 0..w {
                    let g = gout.get(co, y, xp);
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[co] += g;
                    for ci in 0..self.cin {
                        for ky in 0..self.k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xp as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                let wi = ((co * self.cin + ci) * self.k + ky) * self.k + kx;
                                self.gw[wi] += g * x.get(ci, sy as usize, sx as usize);
                                let cur = gin.get(ci, sy as usize, sx as usize);
                                gin.set(ci, sy as usize, sx as usize, cur + g * self.w[wi]);
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    /// SGD-with-momentum update using the accumulated gradients, scaled by
    /// `1 / batch` (pass the minibatch size).
    pub fn apply_grads(&mut self, lr: f32, momentum: f32, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for i in 0..self.w.len() {
            self.vw[i] = momentum * self.vw[i] - lr * self.gw[i] * scale;
            self.w[i] += self.vw[i];
        }
        for i in 0..self.b.len() {
            self.vb[i] = momentum * self.vb[i] - lr * self.gb[i] * scale;
            self.b[i] += self.vb[i];
        }
    }

    /// Adam update (Kingma & Ba) with bias correction; `step` is the
    /// 1-based optimisation step and `batch` the minibatch size.
    pub fn apply_grads_adam(
        &mut self,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        step: usize,
        batch: usize,
    ) {
        let scale = 1.0 / batch.max(1) as f32;
        let t = step.max(1) as i32;
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        let update = |w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
            for i in 0..w.len() {
                let grad = g[i] * scale;
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        };
        update(&mut self.w, &self.gw, &mut self.vw, &mut self.sw);
        update(&mut self.b, &self.gb, &mut self.vb, &mut self.sb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.w.fill(0.0);
        conv.w[4] = 1.0; // centre tap
        let x = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn macs_and_params_counts() {
        let conv = Conv2d::new(3, 8, 3, 0);
        assert_eq!(conv.n_params(), 3 * 8 * 9 + 8);
        assert_eq!(conv.macs(10, 10), 3 * 8 * 9 * 100);
    }

    #[test]
    fn gradient_check_single_weight() {
        // Numerical vs analytical gradient for one weight and one input.
        let mut conv = Conv2d::new(1, 1, 3, 42);
        let x = Tensor::from_vec(1, 3, 3, (1..=9).map(|v| v as f32 / 9.0).collect());
        let wi = 2; // an arbitrary weight index

        let loss = |conv: &mut Conv2d, x: &Tensor| -> f32 {
            let y = conv.forward(x);
            // Loss = sum of squares / 2, dL/dy = y.
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Analytical.
        let y = conv.forward(&x);
        conv.zero_grad();
        let _ = conv.backward(&y);
        let analytic = conv.gw[wi];

        // Numerical.
        let eps = 1e-3;
        conv.w[wi] += eps;
        let lp = loss(&mut conv, &x);
        conv.w[wi] -= 2.0 * eps;
        let lm = loss(&mut conv, &x);
        conv.w[wi] += eps;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        let mut x = Tensor::from_vec(2, 3, 3, (0..18).map(|v| (v as f32) / 18.0).collect());
        let y = conv.forward(&x);
        let gin = {
            conv.zero_grad();
            conv.backward(&y)
        };
        // Numerical gradient for input element (1, 1, 1).
        let eps = 1e-3;
        let idx = (1usize, 1usize, 1usize);
        let orig = x.get(idx.0, idx.1, idx.2);
        x.set(idx.0, idx.1, idx.2, orig + eps);
        let lp: f32 = conv.forward(&x).as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0;
        x.set(idx.0, idx.1, idx.2, orig - eps);
        let lm: f32 = conv.forward(&x).as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = gin.get(idx.0, idx.1, idx.2);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn adam_reduces_simple_loss() {
        let mut conv = Conv2d::new(1, 1, 3, 3);
        let x = Tensor::from_vec(1, 4, 4, (0..16).map(|v| v as f32 / 16.0).collect());
        let target: Vec<f32> = x.as_slice().iter().map(|v| 2.0 * v).collect();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 1..=200 {
            let y = conv.forward(&x);
            let diff: Vec<f32> = y
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(a, b)| a - b)
                .collect();
            last_loss = diff.iter().map(|d| d * d).sum::<f32>();
            first_loss.get_or_insert(last_loss);
            let g = Tensor::from_vec(1, 4, 4, diff);
            conv.zero_grad();
            let _ = conv.backward(&g);
            conv.apply_grads_adam(0.02, 0.9, 0.999, 1e-8, step, 1);
        }
        assert!(
            last_loss < first_loss.unwrap() / 10.0,
            "Adam loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn sgd_reduces_simple_loss() {
        // Train a 1x1-ish task: map input to 2*input via a 3x3 conv.
        let mut conv = Conv2d::new(1, 1, 3, 3);
        let x = Tensor::from_vec(1, 4, 4, (0..16).map(|v| v as f32 / 16.0).collect());
        let target: Vec<f32> = x.as_slice().iter().map(|v| 2.0 * v).collect();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let y = conv.forward(&x);
            let diff: Vec<f32> = y
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(a, b)| a - b)
                .collect();
            last_loss = diff.iter().map(|d| d * d).sum::<f32>();
            first_loss.get_or_insert(last_loss);
            let g = Tensor::from_vec(1, 4, 4, diff);
            conv.zero_grad();
            let _ = conv.backward(&g);
            conv.apply_grads(0.05, 0.9, 1);
        }
        assert!(
            last_loss < first_loss.unwrap() / 10.0,
            "loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }
}
