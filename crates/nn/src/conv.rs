//! 2D convolution with backpropagation.
//!
//! The compute kernels are row-sliced: instead of a bounds-checked
//! `get()`/`set()` per multiply-accumulate, each kernel tap is applied as a
//! slice AXPY over a whole output row, which the compiler auto-vectorises.
//! Tap application order per output element is kept identical to the naive
//! triple loop (see [`reference`]), so the optimised kernels are **bit-exact**
//! with the reference — the equivalence is pinned by property tests in
//! `tests/conv_equivalence.rs`.
//!
//! Work above [`PAR_MIN_MACS`] is split across cores via `vrd-runtime`
//! (forward: per output channel; backward: per output channel for weight
//! gradients, per input channel for the input gradient). The partitions
//! write disjoint buffers in unchanged per-element order, so results are
//! independent of the thread count.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Minimum multiply-accumulate count before a convolution pass fans out
/// across threads; below this the scoped-thread setup costs more than it
/// saves.
const PAR_MIN_MACS: u64 = 8_000_000;

/// A stride-1, same-padded `k × k` convolution layer with bias, plus the
/// plumbing needed to train it (gradient buffers, SGD-momentum state).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    cin: usize,
    cout: usize,
    k: usize,
    /// Weights laid out `[cout][cin][k][k]`.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    /// Second-moment accumulators (Adam only).
    sw: Vec<f32>,
    sb: Vec<f32>,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform initialised weights.
    ///
    /// # Panics
    /// Panics if any dimension is zero or `k` is even (same-padding needs an
    /// odd kernel).
    pub fn new(cin: usize, cout: usize, k: usize, seed: u64) -> Self {
        assert!(cin > 0 && cout > 0 && k > 0, "conv dims must be non-zero");
        assert!(k % 2 == 1, "same-padded convolution needs an odd kernel");
        let fan_in = (cin * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (0..cout * cin * k * k)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        let n = cout * cin * k * k;
        Self {
            cin,
            cout,
            k,
            w,
            b: vec![0.0; cout],
            gw: vec![0.0; n],
            gb: vec![0.0; cout],
            vw: vec![0.0; n],
            vb: vec![0.0; cout],
            sw: vec![0.0; n],
            sb: vec![0.0; cout],
            cache: None,
        }
    }

    /// Number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Input channel count.
    pub fn cin(&self) -> usize {
        self.cin
    }

    /// Output channel count.
    pub fn cout(&self) -> usize {
        self.cout
    }

    /// Kernel size (odd; the layer is same-padded).
    pub fn kernel_size(&self) -> usize {
        self.k
    }

    /// Accumulated weight and bias gradients (for tests and reductions).
    pub fn grads(&self) -> (&[f32], &[f32]) {
        (&self.gw, &self.gb)
    }

    /// Adds another layer's accumulated gradients into this one's buffers
    /// (per-sample gradient reduction in the trainer).
    ///
    /// # Panics
    /// Panics if the layer shapes differ.
    pub fn accumulate_grads_from(&mut self, other: &Conv2d) {
        assert_eq!(
            self.gw.len(),
            other.gw.len(),
            "grad reduction shape mismatch"
        );
        for (a, &g) in self.gw.iter_mut().zip(&other.gw) {
            *a += g;
        }
        for (a, &g) in self.gb.iter_mut().zip(&other.gb) {
            *a += g;
        }
    }

    /// Copies out the weights and biases (for serialisation).
    pub fn export_params(&self) -> (Vec<f32>, Vec<f32>) {
        (self.w.clone(), self.b.clone())
    }

    /// Replaces the weights and biases (for deserialisation); resets the
    /// optimiser state.
    ///
    /// # Errors
    /// Returns a message if the lengths do not match this layer's shape.
    pub fn import_params(&mut self, w: &[f32], b: &[f32]) -> Result<(), String> {
        if w.len() != self.w.len() {
            return Err(format!(
                "expected {} weights, got {}",
                self.w.len(),
                w.len()
            ));
        }
        if b.len() != self.b.len() {
            return Err(format!("expected {} biases, got {}", self.b.len(), b.len()));
        }
        self.w.copy_from_slice(w);
        self.b.copy_from_slice(b);
        self.vw.fill(0.0);
        self.vb.fill(0.0);
        self.sw.fill(0.0);
        self.sb.fill(0.0);
        self.zero_grad();
        Ok(())
    }

    /// Multiply-accumulate operations for one forward pass over `h × w`.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.cin * self.cout * self.k * self.k * h * w) as u64
    }

    fn check_input(&self, x: &Tensor) {
        assert_eq!(x.channels(), self.cin, "conv input channel mismatch");
    }

    /// Computes one output-channel plane of the forward pass.
    ///
    /// Bias first, then one slice AXPY per `(ci, ky, kx)` tap — the same
    /// per-element accumulation order as the naive loop in [`reference`].
    fn forward_plane(&self, co: usize, xdata: &[f32], h: usize, w: usize, plane: &mut [f32]) {
        let (k, pad) = (self.k, (self.k / 2) as isize);
        plane.fill(self.b[co]);
        for ci in 0..self.cin {
            let xplane = &xdata[ci * h * w..][..h * w];
            for ky in 0..k {
                let dy = ky as isize - pad;
                let y0 = (-dy).max(0) as usize;
                let y1 = (h as isize - dy).min(h as isize).max(0) as usize;
                for kx in 0..k {
                    let dx = kx as isize - pad;
                    let x0 = (-dx).max(0) as usize;
                    let x1 = (w as isize - dx).min(w as isize).max(0) as usize;
                    if x0 >= x1 {
                        continue;
                    }
                    let wv = self.w[((co * self.cin + ci) * k + ky) * k + kx];
                    for y in y0..y1 {
                        let sy = (y as isize + dy) as usize;
                        let sx = (x0 as isize + dx) as usize;
                        let orow = &mut plane[y * w + x0..y * w + x1];
                        let xrow = &xplane[sy * w + sx..][..x1 - x0];
                        for (o, &xv) in orow.iter_mut().zip(xrow) {
                            *o += wv * xv;
                        }
                    }
                }
            }
        }
    }

    /// Slice-level forward kernel: reads a `cin × h × w` input, writes a
    /// `cout × h × w` output. Used by both the tensor API and the pooled
    /// scratch-buffer inference path in `NnS`.
    pub(crate) fn forward_into(&self, xdata: &[f32], h: usize, w: usize, out: &mut [f32]) {
        assert_eq!(xdata.len(), self.cin * h * w, "conv input length mismatch");
        assert_eq!(out.len(), self.cout * h * w, "conv output length mismatch");
        if self.macs(h, w) >= PAR_MIN_MACS && vrd_runtime::max_threads() > 1 {
            let planes: Vec<(usize, &mut [f32])> = out.chunks_mut(h * w).enumerate().collect();
            vrd_runtime::parallel_for_each(planes, |(co, plane)| {
                self.forward_plane(co, xdata, h, w, plane);
            });
        } else {
            for (co, plane) in out.chunks_mut(h * w).enumerate() {
                self.forward_plane(co, xdata, h, w, plane);
            }
        }
    }

    /// Forward pass without gradient bookkeeping: no input clone is cached,
    /// so per-frame pipelines do not pay training costs.
    ///
    /// # Panics
    /// Panics if the input channel count differs from `cin`.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.check_input(x);
        let (h, w) = (x.height(), x.width());
        let mut out = Tensor::zeros(self.cout, h, w);
        self.forward_into(x.as_slice(), h, w, out.as_mut_slice());
        out
    }

    /// Forward pass; caches the input for the backward pass.
    ///
    /// # Panics
    /// Panics if the input channel count differs from `cin`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let out = self.forward_inference(x);
        self.cache = Some(x.clone());
        out
    }

    /// Weight/bias gradient accumulation for one output channel.
    fn backward_wb_plane(
        &self,
        co: usize,
        x: &Tensor,
        gout: &Tensor,
        row_nz: &[bool],
        gw_co: &mut [f32],
        gb_co: &mut f32,
    ) {
        let (h, w) = (x.height(), x.width());
        let (k, pad) = (self.k, (self.k / 2) as isize);
        let gplane = &gout.as_slice()[co * h * w..][..h * w];
        let nz = &row_nz[co * h..][..h];
        // dL/db: plain sum of the output gradient, in (y, x) order. Rows
        // that are entirely zero are skipped — the sparse fast path for
        // ReLU-masked gradients — which cannot change the result.
        let mut acc = *gb_co;
        for y in 0..h {
            if !nz[y] {
                continue;
            }
            for &g in &gplane[y * w..][..w] {
                acc += g;
            }
        }
        *gb_co = acc;
        // dL/dw: per tap, a scalar running sum over (y, x) — kept scalar so
        // the accumulation order matches the reference exactly.
        for ci in 0..self.cin {
            let xplane = &x.as_slice()[ci * h * w..][..h * w];
            for ky in 0..k {
                let dy = ky as isize - pad;
                let y0 = (-dy).max(0) as usize;
                let y1 = (h as isize - dy).min(h as isize).max(0) as usize;
                for kx in 0..k {
                    let dx = kx as isize - pad;
                    let x0 = (-dx).max(0) as usize;
                    let x1 = (w as isize - dx).min(w as isize).max(0) as usize;
                    if x0 >= x1 {
                        continue;
                    }
                    let wi = (ci * k + ky) * k + kx;
                    let mut acc = gw_co[wi];
                    for y in y0..y1 {
                        if !nz[y] {
                            continue;
                        }
                        let sy = (y as isize + dy) as usize;
                        let sx = (x0 as isize + dx) as usize;
                        let grow = &gplane[y * w + x0..y * w + x1];
                        let xrow = &xplane[sy * w + sx..][..x1 - x0];
                        for (&g, &xv) in grow.iter().zip(xrow) {
                            acc += g * xv;
                        }
                    }
                    gw_co[wi] = acc;
                }
            }
        }
    }

    /// Input-gradient accumulation for one input channel.
    ///
    /// The naive loop delivers contributions to a fixed input element in
    /// ascending `(co, y, x)` order of the output elements; iterating the
    /// kernel taps in *descending* `(ky, kx)` order reproduces exactly that,
    /// so this scatter is bit-exact with the reference.
    fn backward_gin_plane(&self, ci: usize, gout: &Tensor, row_nz: &[bool], gplane_in: &mut [f32]) {
        let (h, w) = (gout.height(), gout.width());
        let (k, pad) = (self.k, (self.k / 2) as isize);
        for co in 0..self.cout {
            let gplane = &gout.as_slice()[co * h * w..][..h * w];
            let nz = &row_nz[co * h..][..h];
            for ky in (0..k).rev() {
                let dy = ky as isize - pad;
                let y0 = (-dy).max(0) as usize;
                let y1 = (h as isize - dy).min(h as isize).max(0) as usize;
                for kx in (0..k).rev() {
                    let dx = kx as isize - pad;
                    let x0 = (-dx).max(0) as usize;
                    let x1 = (w as isize - dx).min(w as isize).max(0) as usize;
                    if x0 >= x1 {
                        continue;
                    }
                    let wv = self.w[((co * self.cin + ci) * k + ky) * k + kx];
                    for y in y0..y1 {
                        if !nz[y] {
                            continue;
                        }
                        let sy = (y as isize + dy) as usize;
                        let sx = (x0 as isize + dx) as usize;
                        let grow = &gplane[y * w + x0..y * w + x1];
                        let irow = &mut gplane_in[sy * w + sx..][..x1 - x0];
                        for (i, &g) in irow.iter_mut().zip(grow) {
                            *i += wv * g;
                        }
                    }
                }
            }
        }
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    /// Panics if called before [`Conv2d::forward`] or with a gradient whose
    /// shape does not match the forward output.
    pub fn backward(&mut self, gout: &Tensor) -> Tensor {
        let x = self.cache.take().expect("forward must run before backward");
        assert_eq!(gout.channels(), self.cout, "grad channel mismatch");
        assert_eq!(
            (gout.height(), gout.width()),
            (x.height(), x.width()),
            "grad spatial mismatch"
        );
        let (h, w) = (x.height(), x.width());
        // Row-granular zero map: gradients arriving through ReLU masks are
        // often zero-heavy, and whole-zero rows contribute nothing to any
        // gradient, so each pass skips them up front.
        let row_nz: Vec<bool> = gout
            .as_slice()
            .chunks(w)
            .map(|row| row.iter().any(|&g| g != 0.0))
            .collect();
        let parallel = self.macs(h, w) >= PAR_MIN_MACS && vrd_runtime::max_threads() > 1;

        // Pass A — weight and bias gradients, partitioned by output channel
        // (each owns a disjoint `gw` block and `gb` element).
        let wb_len = self.cin * self.k * self.k;
        let mut gw = std::mem::take(&mut self.gw);
        let mut gb = std::mem::take(&mut self.gb);
        {
            let items: Vec<(usize, (&mut [f32], &mut f32))> = gw
                .chunks_mut(wb_len)
                .zip(gb.iter_mut())
                .enumerate()
                .collect();
            let run = |(co, (gw_co, gb_co)): (usize, (&mut [f32], &mut f32))| {
                self.backward_wb_plane(co, &x, gout, &row_nz, gw_co, gb_co);
            };
            if parallel {
                vrd_runtime::parallel_for_each(items, run);
            } else {
                for item in items {
                    run(item);
                }
            }
        }
        self.gw = gw;
        self.gb = gb;

        // Pass B — input gradient, partitioned by input channel.
        let mut gin = Tensor::zeros(self.cin, h, w);
        {
            let items: Vec<(usize, &mut [f32])> =
                gin.as_mut_slice().chunks_mut(h * w).enumerate().collect();
            let run = |(ci, plane): (usize, &mut [f32])| {
                self.backward_gin_plane(ci, gout, &row_nz, plane);
            };
            if parallel {
                vrd_runtime::parallel_for_each(items, run);
            } else {
                for item in items {
                    run(item);
                }
            }
        }
        self.cache = Some(x);
        gin
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    /// SGD-with-momentum update using the accumulated gradients, scaled by
    /// `1 / batch` (pass the minibatch size).
    pub fn apply_grads(&mut self, lr: f32, momentum: f32, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        for i in 0..self.w.len() {
            self.vw[i] = momentum * self.vw[i] - lr * self.gw[i] * scale;
            self.w[i] += self.vw[i];
        }
        for i in 0..self.b.len() {
            self.vb[i] = momentum * self.vb[i] - lr * self.gb[i] * scale;
            self.b[i] += self.vb[i];
        }
    }

    /// Adam update (Kingma & Ba) with bias correction; `step` is the
    /// 1-based optimisation step and `batch` the minibatch size.
    pub fn apply_grads_adam(
        &mut self,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        step: usize,
        batch: usize,
    ) {
        let scale = 1.0 / batch.max(1) as f32;
        let t = step.max(1) as i32;
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        let update = |w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
            for i in 0..w.len() {
                let grad = g[i] * scale;
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        };
        update(&mut self.w, &self.gw, &mut self.vw, &mut self.sw);
        update(&mut self.b, &self.gb, &mut self.vb, &mut self.sb);
    }

    #[cfg(test)]
    fn w_mut(&mut self) -> &mut [f32] {
        &mut self.w
    }
}

/// The naive per-element kernels the optimised paths are verified against.
///
/// These are the original triple-loop implementations, kept as the ground
/// truth for the equivalence property tests (and as the baseline in the
/// micro benchmarks). They accumulate in the same order the optimised
/// kernels do, so equality is exact, not approximate.
pub mod reference {
    use super::Conv2d;
    use crate::tensor::Tensor;

    /// Naive forward pass.
    ///
    /// # Panics
    /// Panics if the input channel count differs from the layer's.
    pub fn forward(conv: &Conv2d, x: &Tensor) -> Tensor {
        assert_eq!(x.channels(), conv.cin, "conv input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let pad = (conv.k / 2) as i32;
        let mut out = Tensor::zeros(conv.cout, h, w);
        for co in 0..conv.cout {
            for y in 0..h {
                for xp in 0..w {
                    let mut acc = conv.b[co];
                    for ci in 0..conv.cin {
                        for ky in 0..conv.k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            for kx in 0..conv.k {
                                let sx = xp as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                let wi = ((co * conv.cin + ci) * conv.k + ky) * conv.k + kx;
                                acc += conv.w[wi] * x.get(ci, sy as usize, sx as usize);
                            }
                        }
                    }
                    out.set(co, y, xp, acc);
                }
            }
        }
        out
    }

    /// Naive backward pass over an explicit input; returns
    /// `(gin, gw, gb)` without touching the layer's own gradient buffers.
    ///
    /// # Panics
    /// Panics on a gradient shape mismatch.
    #[allow(clippy::needless_range_loop)] // keep the naive loop nest verbatim
    pub fn backward(conv: &Conv2d, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<f32>, Vec<f32>) {
        assert_eq!(gout.channels(), conv.cout, "grad channel mismatch");
        assert_eq!(
            (gout.height(), gout.width()),
            (x.height(), x.width()),
            "grad spatial mismatch"
        );
        let (h, w) = (x.height(), x.width());
        let pad = (conv.k / 2) as i32;
        let mut gin = Tensor::zeros(conv.cin, h, w);
        let mut gw = vec![0.0; conv.w.len()];
        let mut gb = vec![0.0; conv.b.len()];
        for co in 0..conv.cout {
            for y in 0..h {
                for xp in 0..w {
                    let g = gout.get(co, y, xp);
                    if g == 0.0 {
                        continue;
                    }
                    gb[co] += g;
                    for ci in 0..conv.cin {
                        for ky in 0..conv.k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            for kx in 0..conv.k {
                                let sx = xp as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                let wi = ((co * conv.cin + ci) * conv.k + ky) * conv.k + kx;
                                gw[wi] += g * x.get(ci, sy as usize, sx as usize);
                                let cur = gin.get(ci, sy as usize, sx as usize);
                                gin.set(ci, sy as usize, sx as usize, cur + g * conv.w[wi]);
                            }
                        }
                    }
                }
            }
        }
        (gin, gw, gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.w_mut().fill(0.0);
        conv.w_mut()[4] = 1.0; // centre tap
        let x = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut conv = Conv2d::new(3, 5, 3, 11);
        let x = Tensor::from_vec(3, 6, 7, (0..126).map(|v| (v as f32).sin()).collect());
        let trained = conv.forward(&x);
        let inferred = conv.forward_inference(&x);
        assert_eq!(trained.as_slice(), inferred.as_slice());
    }

    #[test]
    fn optimized_forward_is_bit_exact_with_reference() {
        let conv = Conv2d::new(2, 4, 5, 9);
        let x = Tensor::from_vec(
            2,
            9,
            11,
            (0..198).map(|v| (v as f32 * 0.37).cos()).collect(),
        );
        let fast = conv.forward_inference(&x);
        let naive = reference::forward(&conv, &x);
        assert_eq!(fast.as_slice(), naive.as_slice());
    }

    #[test]
    fn optimized_backward_is_bit_exact_with_reference() {
        let mut conv = Conv2d::new(2, 3, 3, 5);
        let x = Tensor::from_vec(2, 6, 8, (0..96).map(|v| (v as f32 * 0.13).sin()).collect());
        let y = conv.forward(&x);
        conv.zero_grad();
        let gin = conv.backward(&y);
        let (gin_ref, gw_ref, gb_ref) = reference::backward(&conv, &x, &y);
        assert_eq!(gin.as_slice(), gin_ref.as_slice());
        let (gw, gb) = conv.grads();
        assert_eq!(gw, &gw_ref[..]);
        assert_eq!(gb, &gb_ref[..]);
    }

    #[test]
    fn macs_and_params_counts() {
        let conv = Conv2d::new(3, 8, 3, 0);
        assert_eq!(conv.n_params(), 3 * 8 * 9 + 8);
        assert_eq!(conv.macs(10, 10), 3 * 8 * 9 * 100);
    }

    #[test]
    fn gradient_check_single_weight() {
        // Numerical vs analytical gradient for one weight and one input.
        let mut conv = Conv2d::new(1, 1, 3, 42);
        let x = Tensor::from_vec(1, 3, 3, (1..=9).map(|v| v as f32 / 9.0).collect());
        let wi = 2; // an arbitrary weight index

        let loss = |conv: &mut Conv2d, x: &Tensor| -> f32 {
            let y = conv.forward(x);
            // Loss = sum of squares / 2, dL/dy = y.
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Analytical.
        let y = conv.forward(&x);
        conv.zero_grad();
        let _ = conv.backward(&y);
        let analytic = conv.grads().0[wi];

        // Numerical.
        let eps = 1e-3;
        conv.w_mut()[wi] += eps;
        let lp = loss(&mut conv, &x);
        conv.w_mut()[wi] -= 2.0 * eps;
        let lm = loss(&mut conv, &x);
        conv.w_mut()[wi] += eps;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        let mut x = Tensor::from_vec(2, 3, 3, (0..18).map(|v| (v as f32) / 18.0).collect());
        let y = conv.forward(&x);
        let gin = {
            conv.zero_grad();
            conv.backward(&y)
        };
        // Numerical gradient for input element (1, 1, 1).
        let eps = 1e-3;
        let idx = (1usize, 1usize, 1usize);
        let orig = x.get(idx.0, idx.1, idx.2);
        x.set(idx.0, idx.1, idx.2, orig + eps);
        let lp: f32 = conv
            .forward(&x)
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            / 2.0;
        x.set(idx.0, idx.1, idx.2, orig - eps);
        let lm: f32 = conv
            .forward(&x)
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            / 2.0;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = gin.get(idx.0, idx.1, idx.2);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn adam_reduces_simple_loss() {
        let mut conv = Conv2d::new(1, 1, 3, 3);
        let x = Tensor::from_vec(1, 4, 4, (0..16).map(|v| v as f32 / 16.0).collect());
        let target: Vec<f32> = x.as_slice().iter().map(|v| 2.0 * v).collect();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 1..=200 {
            let y = conv.forward(&x);
            let diff: Vec<f32> = y
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(a, b)| a - b)
                .collect();
            last_loss = diff.iter().map(|d| d * d).sum::<f32>();
            first_loss.get_or_insert(last_loss);
            let g = Tensor::from_vec(1, 4, 4, diff);
            conv.zero_grad();
            let _ = conv.backward(&g);
            conv.apply_grads_adam(0.02, 0.9, 0.999, 1e-8, step, 1);
        }
        assert!(
            last_loss < first_loss.unwrap() / 10.0,
            "Adam loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn sgd_reduces_simple_loss() {
        // Train a 1x1-ish task: map input to 2*input via a 3x3 conv.
        let mut conv = Conv2d::new(1, 1, 3, 3);
        let x = Tensor::from_vec(1, 4, 4, (0..16).map(|v| v as f32 / 16.0).collect());
        let target: Vec<f32> = x.as_slice().iter().map(|v| 2.0 * v).collect();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let y = conv.forward(&x);
            let diff: Vec<f32> = y
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(a, b)| a - b)
                .collect();
            last_loss = diff.iter().map(|d| d * d).sum::<f32>();
            first_loss.get_or_insert(last_loss);
            let g = Tensor::from_vec(1, 4, 4, diff);
            conv.zero_grad();
            let _ = conv.backward(&g);
            conv.apply_grads(0.05, 0.9, 1);
        }
        assert!(
            last_loss < first_loss.unwrap() / 10.0,
            "loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }
}
