//! Feature-space propagation: warping CHW feature maps with block motion
//! vectors from the bitstream.
//!
//! Jain & Gonzalez ("Fast Semantic Segmentation on Video Using Block
//! Motion-Based Feature Interpolation") propagate the *penultimate feature
//! tensor* of a segmentation network from key frames to non-key frames
//! using the codec's block motion, then run only the network head — a
//! fundamentally different accuracy/compute point than VR-DANN's
//! mask-space reconstruction. This module is the warp kernel that makes
//! that baseline possible: given a destination feature map, a macro-block
//! footprint in *pixel* coordinates and one or two reference feature maps
//! with pixel-space displacements, it resamples the reference features
//! into the destination block with edge-clamped bilinear taps.
//!
//! Coordinate convention: a block MV carries a displacement in **pixels**
//! (`src − dst`). Feature maps live at a coarser grid (`stride` pixels per
//! cell), so the displacement is scaled by `1/stride` into feature-cell
//! units before sampling — fractional displacements fall between cells and
//! are bilinearly blended, exactly the "block MVs are piecewise-constant
//! flow" approximation of the paper.
//!
//! The optimized kernel hoists the per-column tap indices/weights out of
//! the channel and row loops and samples whole rows through precomputed
//! slices; [`reference`] retains the naive per-cell implementation with the
//! identical floating-point expression, and the proptest suite
//! (`tests/featwarp_equivalence.rs`) pins the two bit-exact.

use crate::tensor::Tensor;

/// Downsampling factor between pixels and feature cells for the staged
/// [`LargeNet`](crate::LargeNet): one feature cell summarises a
/// `FEATURE_STRIDE × FEATURE_STRIDE` pixel block.
pub const FEATURE_STRIDE: usize = 4;

/// Channel count of the staged backbone's output: one block-mean channel
/// plus one residual channel per in-block pixel offset.
pub const FEATURE_CHANNELS: usize = 1 + FEATURE_STRIDE * FEATURE_STRIDE;

/// A CHW feature tensor tied to the pixel frame it summarises.
///
/// `tensor` holds `channels × feat_h × feat_w` values where
/// `feat_w = ceil(frame_w / stride)` (same for height). Keeping the frame
/// geometry alongside the tensor lets the warp kernel scale pixel-space
/// motion vectors into feature-cell units without external bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    stride: usize,
    frame_w: usize,
    frame_h: usize,
    tensor: Tensor,
}

impl FeatureMap {
    /// Creates an all-zero feature map for a `frame_w × frame_h` frame.
    ///
    /// # Panics
    /// Panics if `stride` is zero or any dimension is zero.
    pub fn zeros(frame_w: usize, frame_h: usize, stride: usize, channels: usize) -> Self {
        assert!(stride > 0, "feature stride must be non-zero");
        let (fw, fh) = (frame_w.div_ceil(stride), frame_h.div_ceil(stride));
        Self {
            stride,
            frame_w,
            frame_h,
            tensor: Tensor::zeros(channels, fh, fw),
        }
    }

    /// Wraps an existing tensor whose spatial dims must match the frame
    /// geometry at the given stride.
    ///
    /// # Panics
    /// Panics if the tensor's height/width disagree with
    /// `ceil(frame / stride)`.
    pub fn from_tensor(frame_w: usize, frame_h: usize, stride: usize, tensor: Tensor) -> Self {
        assert!(stride > 0, "feature stride must be non-zero");
        assert_eq!(
            (tensor.width(), tensor.height()),
            (frame_w.div_ceil(stride), frame_h.div_ceil(stride)),
            "feature tensor does not match frame {frame_w}x{frame_h} at stride {stride}"
        );
        Self {
            stride,
            frame_w,
            frame_h,
            tensor,
        }
    }

    /// Pixels per feature cell.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Width of the underlying pixel frame.
    pub fn frame_w(&self) -> usize {
        self.frame_w
    }

    /// Height of the underlying pixel frame.
    pub fn frame_h(&self) -> usize {
        self.frame_h
    }

    /// Feature-grid width (`ceil(frame_w / stride)`).
    pub fn feat_w(&self) -> usize {
        self.tensor.width()
    }

    /// Feature-grid height (`ceil(frame_h / stride)`).
    pub fn feat_h(&self) -> usize {
        self.tensor.height()
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.tensor.channels()
    }

    /// The feature tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Mutable access to the feature tensor.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        &mut self.tensor
    }

    /// Size of the feature payload in bytes (f32 storage) — what a real
    /// accelerator would move per map when warping in feature space.
    pub fn bytes(&self) -> usize {
        self.tensor.len() * core::mem::size_of::<f32>()
    }
}

/// One reference of a block warp: a source feature map plus the
/// pixel-space displacement (`src − dst`) the bitstream MV encodes.
#[derive(Debug, Clone, Copy)]
pub struct WarpSource<'a> {
    /// Reference-frame features (same geometry as the destination map).
    pub feat: &'a FeatureMap,
    /// Horizontal displacement to the source patch, in pixels.
    pub dx: i32,
    /// Vertical displacement to the source patch, in pixels.
    pub dy: i32,
}

/// Feature cells whose pixel origin falls inside `[start, start+block)`.
#[inline]
fn cell_range(start: usize, block: usize, stride: usize, limit: usize) -> (usize, usize) {
    let lo = start.div_ceil(stride).min(limit);
    let hi = (start + block).div_ceil(stride).min(limit);
    (lo, hi)
}

/// One tap column/row: clamped indices of the two neighbours and their
/// bilinear weights. Computed identically by both kernel variants.
#[inline]
fn tap(cell: usize, disp_px: i32, stride: usize, limit: usize) -> (usize, usize, f32, f32) {
    let pos = cell as f32 + disp_px as f32 / stride as f32;
    let floor = pos.floor();
    let t = pos - floor;
    let i0 = (floor as i64).clamp(0, limit as i64 - 1) as usize;
    let i1 = (floor as i64 + 1).clamp(0, limit as i64 - 1) as usize;
    (i0, i1, 1.0 - t, t)
}

/// Warps one macro-block of features from up to two references into `out`.
///
/// `dst_x`/`dst_y` are the block's pixel-space origin and `block` its
/// pixel-space edge length; every feature cell whose origin pixel falls in
/// the block is overwritten. Each reference is sampled with edge-clamped
/// bilinear taps at the MV-displaced position; with two references the two
/// samples are averaged (the bi-prediction analogue of the codec).
///
/// Optimized layout: tap indices and weights are hoisted per block (the
/// displacement is constant across the block), and the inner loop walks
/// contiguous source rows through slices. Bit-exact against
/// [`reference::warp_block`].
///
/// # Panics
/// Panics if the reference maps' geometry differs from `out`'s.
pub fn warp_block(
    out: &mut FeatureMap,
    dst_x: usize,
    dst_y: usize,
    block: usize,
    first: WarpSource<'_>,
    second: Option<WarpSource<'_>>,
) {
    let (fw, fh, ch, stride) = (out.feat_w(), out.feat_h(), out.channels(), out.stride());
    check_geometry(out, &first);
    if let Some(s) = &second {
        check_geometry(out, s);
    }
    let (x_lo, x_hi) = cell_range(dst_x, block, stride, fw);
    let (y_lo, y_hi) = cell_range(dst_y, block, stride, fh);
    if x_lo >= x_hi || y_lo >= y_hi {
        return;
    }

    // Hoisted column taps: one entry per destination column in the block.
    // The displacement is constant across the block, so these are shared by
    // every channel and every row.
    let mut cols1: Vec<(usize, usize, f32, f32)> = Vec::with_capacity(x_hi - x_lo);
    for fx in x_lo..x_hi {
        cols1.push(tap(fx, first.dx, stride, fw));
    }
    let cols2: Vec<(usize, usize, f32, f32)> = second
        .as_ref()
        .map(|s| (x_lo..x_hi).map(|fx| tap(fx, s.dx, stride, fw)).collect())
        .unwrap_or_default();

    let dst = out.tensor.as_mut_slice();
    let plane = fw * fh;
    for c in 0..ch {
        let src1 = &first.feat.tensor.as_slice()[c * plane..(c + 1) * plane];
        for fy in y_lo..y_hi {
            let (y0, y1, wy0, wy1) = tap(fy, first.dy, stride, fh);
            let row0 = &src1[y0 * fw..y0 * fw + fw];
            let row1 = &src1[y1 * fw..y1 * fw + fw];
            let out_row = &mut dst[c * plane + fy * fw + x_lo..c * plane + fy * fw + x_hi];
            for (o, &(x0, x1, wx0, wx1)) in out_row.iter_mut().zip(&cols1) {
                let top = row0[x0] * wx0 + row0[x1] * wx1;
                let bot = row1[x0] * wx0 + row1[x1] * wx1;
                *o = top * wy0 + bot * wy1;
            }
        }
    }
    if let Some(s) = second {
        for c in 0..ch {
            let src2 = &s.feat.tensor.as_slice()[c * plane..(c + 1) * plane];
            for fy in y_lo..y_hi {
                let (y0, y1, wy0, wy1) = tap(fy, s.dy, stride, fh);
                let row0 = &src2[y0 * fw..y0 * fw + fw];
                let row1 = &src2[y1 * fw..y1 * fw + fw];
                let out_row = &mut dst[c * plane + fy * fw + x_lo..c * plane + fy * fw + x_hi];
                for (o, &(x0, x1, wx0, wx1)) in out_row.iter_mut().zip(&cols2) {
                    let top = row0[x0] * wx0 + row0[x1] * wx1;
                    let bot = row1[x0] * wx0 + row1[x1] * wx1;
                    *o = 0.5 * (*o + (top * wy0 + bot * wy1));
                }
            }
        }
    }
}

fn check_geometry(out: &FeatureMap, src: &WarpSource<'_>) {
    assert_eq!(
        (
            src.feat.feat_w(),
            src.feat.feat_h(),
            src.feat.channels(),
            src.feat.stride()
        ),
        (out.feat_w(), out.feat_h(), out.channels(), out.stride()),
        "warp reference geometry mismatch"
    );
}

/// Naive per-cell warp, retained as the equivalence oracle for
/// [`warp_block`](super::warp_block). Every floating-point expression is
/// spelled the same way as the optimized kernel so the pair stays
/// bit-exact; only the loop structure (per-cell tap recomputation, checked
/// `get`/`set` indexing) differs.
pub mod reference {
    use super::{cell_range, check_geometry, tap, FeatureMap, WarpSource};

    /// See [`super::warp_block`]; same contract, naive implementation.
    pub fn warp_block(
        out: &mut FeatureMap,
        dst_x: usize,
        dst_y: usize,
        block: usize,
        first: WarpSource<'_>,
        second: Option<WarpSource<'_>>,
    ) {
        let (fw, fh, ch, stride) = (out.feat_w(), out.feat_h(), out.channels(), out.stride());
        check_geometry(out, &first);
        if let Some(s) = &second {
            check_geometry(out, s);
        }
        let (x_lo, x_hi) = cell_range(dst_x, block, stride, fw);
        let (y_lo, y_hi) = cell_range(dst_y, block, stride, fh);
        for c in 0..ch {
            for fy in y_lo..y_hi {
                for fx in x_lo..x_hi {
                    let v1 = sample(first.feat, c, fx, fy, first.dx, first.dy, stride, fw, fh);
                    let v = match &second {
                        None => v1,
                        Some(s) => {
                            let v2 = sample(s.feat, c, fx, fy, s.dx, s.dy, stride, fw, fh);
                            0.5 * (v1 + v2)
                        }
                    };
                    out.tensor_mut().set(c, fy, fx, v);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sample(
        src: &FeatureMap,
        c: usize,
        fx: usize,
        fy: usize,
        dx: i32,
        dy: i32,
        stride: usize,
        fw: usize,
        fh: usize,
    ) -> f32 {
        let (x0, x1, wx0, wx1) = tap(fx, dx, stride, fw);
        let (y0, y1, wy0, wy1) = tap(fy, dy, stride, fh);
        let t = src.tensor();
        let top = t.get(c, y0, x0) * wx0 + t.get(c, y0, x1) * wx1;
        let bot = t.get(c, y1, x0) * wx0 + t.get(c, y1, x1) * wx1;
        top * wy0 + bot * wy1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_map(w: usize, h: usize, stride: usize, ch: usize, salt: f32) -> FeatureMap {
        let mut m = FeatureMap::zeros(w, h, stride, ch);
        let (fw, fh) = (m.feat_w(), m.feat_h());
        for c in 0..ch {
            for y in 0..fh {
                for x in 0..fw {
                    let v = salt + c as f32 * 0.37 + y as f32 * 0.11 - x as f32 * 0.05;
                    m.tensor_mut().set(c, y, x, v);
                }
            }
        }
        m
    }

    #[test]
    fn geometry_follows_frame() {
        let m = FeatureMap::zeros(854, 480, 4, FEATURE_CHANNELS);
        assert_eq!((m.feat_w(), m.feat_h()), (214, 120));
        assert_eq!(m.channels(), FEATURE_CHANNELS);
        assert_eq!(m.bytes(), 214 * 120 * FEATURE_CHANNELS * 4);
    }

    #[test]
    fn zero_mv_copies_block() {
        let src = ramp_map(64, 32, 4, 3, 1.0);
        let mut out = FeatureMap::zeros(64, 32, 4, 3);
        let s = WarpSource {
            feat: &src,
            dx: 0,
            dy: 0,
        };
        warp_block(&mut out, 16, 16, 16, s, None);
        // Inside the block: identical features. Outside: untouched zeros.
        for c in 0..3 {
            assert_eq!(out.tensor().get(c, 4, 4), src.tensor().get(c, 4, 4));
            assert_eq!(out.tensor().get(c, 0, 0), 0.0);
        }
    }

    #[test]
    fn integer_mv_shifts_cells() {
        let src = ramp_map(64, 64, 4, 2, 0.5);
        let mut out = FeatureMap::zeros(64, 64, 4, 2);
        // -8 px at stride 4 = exactly 2 cells left.
        let s = WarpSource {
            feat: &src,
            dx: -8,
            dy: 0,
        };
        warp_block(&mut out, 32, 32, 16, s, None);
        assert_eq!(out.tensor().get(1, 9, 9), src.tensor().get(1, 9, 7));
    }

    #[test]
    fn out_of_range_mv_clamps_to_edge() {
        let src = ramp_map(32, 32, 4, 1, 2.0);
        let mut out = FeatureMap::zeros(32, 32, 4, 1);
        let s = WarpSource {
            feat: &src,
            dx: -10_000,
            dy: -10_000,
        };
        warp_block(&mut out, 0, 0, 16, s, None);
        // Everything samples the clamped top-left source cell.
        let corner = src.tensor().get(0, 0, 0);
        for y in 0..4 {
            for x in 0..4 {
                let v = out.tensor().get(0, y, x);
                assert!((v - corner).abs() < 1e-4, "({x},{y}) = {v} vs {corner}");
            }
        }
    }

    #[test]
    fn two_references_average() {
        let a = ramp_map(16, 16, 4, 1, 0.0);
        let b = ramp_map(16, 16, 4, 1, 10.0);
        let mut out = FeatureMap::zeros(16, 16, 4, 1);
        warp_block(
            &mut out,
            0,
            0,
            16,
            WarpSource {
                feat: &a,
                dx: 0,
                dy: 0,
            },
            Some(WarpSource {
                feat: &b,
                dx: 0,
                dy: 0,
            }),
        );
        let want = 0.5 * (a.tensor().get(0, 2, 2) + b.tensor().get(0, 2, 2));
        assert_eq!(out.tensor().get(0, 2, 2), want);
    }
}
