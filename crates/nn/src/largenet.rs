//! NN-L: the large per-frame recognition networks, modelled as calibrated
//! oracles.
//!
//! The paper runs ROI-SegNet (FAVOS), the OSVOS two-stream FCN and SELSA —
//! trained CNNs in the hundreds of megaFLOPs per frame. Training those is
//! outside this reproduction's scope (see `DESIGN.md` §2); what VR-DANN
//! needs from them is (a) their **compute cost**, charged by the simulator,
//! and (b) the **quality of the masks/boxes** they produce, because VR-DANN
//! reconstructs B-frames *from those imperfect outputs*.
//!
//! The error model matters: a real network's segmentation errors are
//! *structured* — the predicted boundary is a smooth, plausible contour
//! displaced from the true one — not white noise (which a refinement
//! network could trivially learn to remove). A [`LargeNet`] therefore warps
//! the ground-truth mask with a smooth random displacement field (plus a
//! sprinkle of boundary speckle), with the displacement amplitude
//! calibrated per scheme to that scheme's published accuracy. B-frame
//! accuracy in the experiments is then a genuine measurement of
//! reconstruction + refinement running on realistic reference masks.

use crate::featwarp::{FeatureMap, FEATURE_CHANNELS, FEATURE_STRIDE};
use crate::tensor::Tensor;
use vrd_video::texture::{hash2, value_noise};
use vrd_video::{Detection, Rect, SegMask};

/// Operations per pixel of one NN-L segmentation inference.
///
/// Derived from the paper's §VI-B: "the raw TOPS of a frame is 0.5 TOPS"
/// at 854×480 → 0.5e12 / (854·480) ≈ 1.22e6 ops/pixel.
pub const NNL_OPS_PER_PIXEL: f64 = 1.22e6;

/// Fraction of an NN-L inference spent in the head (the layers after the
/// staged cut point — see [`LargeNet::forward_backbone`]).
///
/// Jain & Gonzalez cut ResNet-101-DeepLab after `res4`, leaving roughly a
/// quarter of the network's FLOPs (the `res5` block + ASPP head) to run
/// per propagated frame. Feature propagation therefore bills
/// `NNL_HEAD_FRACTION × ops` on B-frames versus the full cost on anchors.
pub const NNL_HEAD_FRACTION: f64 = 0.25;

/// Operations per pixel of one FlowNet optical-flow inference (DFF's
/// per-non-key-frame cost). FlowNet-S costs the same order of magnitude as
/// the segmentation backbone — this is why the paper finds DFF only ~1.3×
/// faster than FAVOS ("DFF spends lots of energy on searching the optical
/// flow", §VI-B) and why VR-DANN beats it by 2.2×.
pub const FLOWNET_OPS_PER_PIXEL: f64 = 8.5e5;

/// Noise/cost profile of a large network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeNetProfile {
    /// Human-readable scheme name.
    pub name: &'static str,
    /// Amplitude of the smooth boundary-displacement field, in pixels.
    pub warp_amp: f32,
    /// Spatial scale of the displacement field, in pixels.
    pub warp_scale: f32,
    /// Probability of flipping a pixel adjacent to the (warped) boundary
    /// (residual speckle).
    pub speckle: f32,
    /// Detection box jitter amplitude, in pixels.
    pub box_jitter: f32,
    /// Probability of missing a ground-truth object entirely (occlusion,
    /// blur — the dominant error mode behind sub-100% mAP on VID).
    pub miss_prob: f32,
    /// Segmentation ops per pixel (relative cost of the scheme's network).
    pub ops_per_pixel: f64,
}

impl LargeNetProfile {
    /// ROI-SegNet as used by FAVOS — the accuracy reference (paper Fig. 10:
    /// best IoU/F-score of all schemes). Also the NN-L VR-DANN borrows for
    /// its I/P frames (§V-A).
    pub fn favos() -> Self {
        Self {
            name: "favos",
            warp_amp: 1.7,
            warp_scale: 9.0,
            speckle: 0.06,
            box_jitter: 1.2,
            miss_prob: 0.0,
            ops_per_pixel: NNL_OPS_PER_PIXEL,
        }
    }

    /// The OSVOS two-stream FCN: two large networks per frame, noticeably
    /// noisier masks (paper: VR-DANN beats it by 7.6% IoU).
    pub fn osvos() -> Self {
        Self {
            name: "osvos",
            warp_amp: 4.4,
            warp_scale: 7.0,
            speckle: 0.12,
            box_jitter: 2.5,
            miss_prob: 0.0,
            ops_per_pixel: 2.0 * NNL_OPS_PER_PIXEL,
        }
    }

    /// The large network DFF runs on key frames (same family as FAVOS's).
    pub fn dff_key() -> Self {
        Self {
            name: "dff-key",
            ..Self::favos()
        }
    }

    /// SELSA's detection backbone (sequence-level aggregation: accurate).
    pub fn selsa() -> Self {
        Self {
            name: "selsa",
            warp_amp: 1.5,
            warp_scale: 9.0,
            speckle: 0.05,
            box_jitter: 2.4,
            miss_prob: 0.0,
            ops_per_pixel: 1.5 * NNL_OPS_PER_PIXEL,
        }
    }
}

/// A calibrated large-network oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeNet {
    profile: LargeNetProfile,
}

impl LargeNet {
    /// Creates an oracle with the given profile.
    pub fn new(profile: LargeNetProfile) -> Self {
        Self { profile }
    }

    /// The oracle's profile.
    pub fn profile(&self) -> &LargeNetProfile {
        &self.profile
    }

    /// Total operations of one inference over a `w`×`h` frame.
    pub fn ops(&self, w: usize, h: usize) -> u64 {
        (self.profile.ops_per_pixel * (w * h) as f64) as u64
    }

    /// Operations of the head alone (the layers after the staged cut) —
    /// what feature propagation pays per B-frame.
    pub fn head_ops(&self, w: usize, h: usize) -> u64 {
        (self.profile.ops_per_pixel * NNL_HEAD_FRACTION * (w * h) as f64) as u64
    }

    /// Operations of the backbone up to the staged cut point.
    pub fn backbone_ops(&self, w: usize, h: usize) -> u64 {
        self.ops(w, h) - self.head_ops(w, h)
    }

    /// Segments a frame: the ground truth resampled through a smooth random
    /// displacement field plus boundary speckle. Deterministic in
    /// `(gt, seed)`.
    pub fn segment(&self, gt: &SegMask, seed: u64) -> SegMask {
        let (w, h) = (gt.width(), gt.height());
        SegMask::from_vec(w, h, self.raster(gt, seed))
    }

    /// Full staged inference: [`Self::forward_backbone`] composed with
    /// [`Self::forward_head`]. Pinned bit-identical to [`Self::segment`]
    /// (the staged-forward regression test) — the staging is a pure
    /// refactor of the same oracle.
    pub fn forward(&self, gt: &SegMask, seed: u64) -> SegMask {
        self.forward_head(&self.forward_backbone(gt, seed))
    }

    /// Runs the backbone up to the staged cut point and returns the
    /// penultimate feature tensor.
    ///
    /// The cut sits where a real encoder–decoder segmentation network is
    /// cheapest to snapshot: a stride-[`FEATURE_STRIDE`] grid whose cell
    /// carries the block-mean foreground evidence (channel 0) plus one
    /// residual channel per in-block pixel offset. The head reassembles a
    /// per-pixel score as `mean + residual`, which reproduces the fused
    /// oracle bit-exactly on unwarped features while degrading softly
    /// (bilinear blends of means and residuals) on warped ones.
    pub fn forward_backbone(&self, gt: &SegMask, seed: u64) -> FeatureMap {
        let (w, h) = (gt.width(), gt.height());
        let raster = self.raster(gt, seed);
        let s = FEATURE_STRIDE;
        let (fw, fh) = (w.div_ceil(s), h.div_ceil(s));
        let mut t = Tensor::zeros(FEATURE_CHANNELS, fh, fw);
        for fy in 0..fh {
            for fx in 0..fw {
                let (x0, y0) = (fx * s, fy * s);
                let (x1, y1) = ((x0 + s).min(w), (y0 + s).min(h));
                let mut sum = 0u32;
                for y in y0..y1 {
                    for x in x0..x1 {
                        sum += u32::from(raster[y * w + x]);
                    }
                }
                let mean = sum as f32 / ((x1 - x0) * (y1 - y0)) as f32;
                t.set(0, fy, fx, mean);
                for y in y0..y1 {
                    for x in x0..x1 {
                        let c = 1 + (y - y0) * s + (x - x0);
                        t.set(c, fy, fx, f32::from(raster[y * w + x]) - mean);
                    }
                }
            }
        }
        FeatureMap::from_tensor(w, h, s, t)
    }

    /// Runs the head on a (possibly warped) feature map: per-pixel score
    /// `mean + residual`, thresholded at 0.5 into a mask.
    ///
    /// # Panics
    /// Panics if the map's channel count does not match the staged layout
    /// (`1 + stride²`).
    pub fn forward_head(&self, feat: &FeatureMap) -> SegMask {
        let s = feat.stride();
        assert_eq!(
            feat.channels(),
            1 + s * s,
            "feature map does not match the staged head layout"
        );
        let (w, h) = (feat.frame_w(), feat.frame_h());
        let t = feat.tensor();
        SegMask::from_bits(
            w,
            h,
            (0..w * h).map(|i| {
                let (x, y) = (i % w, i / w);
                let (fx, fy) = (x / s, y / s);
                let c = 1 + (y % s) * s + (x % s);
                t.get(0, fy, fx) + t.get(c, fy, fx) > 0.5
            }),
        )
    }

    /// The shared oracle raster both [`Self::segment`] and
    /// [`Self::forward_backbone`] consume: ground truth resampled through
    /// the displacement field plus boundary speckle, one byte per pixel.
    fn raster(&self, gt: &SegMask, seed: u64) -> Vec<u8> {
        let (w, h) = (gt.width(), gt.height());
        let p = &self.profile;
        // The noise passes are inherently per-pixel, so they run over a byte
        // scratch raster and pack into the bitplane once at the end.
        let mut out = vec![0u8; w * h];
        // Every output pixel is independent, so both passes split by row
        // across cores on large frames — same bits at any thread count.
        let parallel = w * h >= 1 << 16 && vrd_runtime::max_threads() > 1;
        let warp_row = |y: usize, row: &mut [u8]| {
            for (x, o) in row.iter_mut().enumerate() {
                let nx = value_noise(x as f32, y as f32, p.warp_scale, seed ^ 0x11) - 0.5;
                let ny = value_noise(x as f32, y as f32, p.warp_scale, seed ^ 0x22) - 0.5;
                let sx = (x as f32 + nx * 2.0 * p.warp_amp).round() as i32;
                let sy = (y as f32 + ny * 2.0 * p.warp_amp).round() as i32;
                *o = gt.get_clamped(sx, sy);
            }
        };
        if parallel {
            let rows: Vec<(usize, &mut [u8])> = out.chunks_mut(w).enumerate().collect();
            vrd_runtime::parallel_for_each(rows, |(y, row)| warp_row(y, row));
        } else {
            for (y, row) in out.chunks_mut(w).enumerate() {
                warp_row(y, row);
            }
        }
        if p.speckle > 0.0 {
            // Flip a fraction of the pixels adjacent to the warped boundary.
            let snapshot = out.clone();
            let speckle_row = |y: usize, row: &mut [u8]| {
                for (x, o) in row.iter_mut().enumerate() {
                    let v = snapshot[y * w + x];
                    let near_boundary = (x + 1 < w && snapshot[y * w + x + 1] != v)
                        || (x > 0 && snapshot[y * w + x - 1] != v)
                        || (y + 1 < h && snapshot[(y + 1) * w + x] != v)
                        || (y > 0 && snapshot[(y - 1) * w + x] != v);
                    if !near_boundary {
                        continue;
                    }
                    let r =
                        (hash2(x as i64, y as i64, seed ^ 0x33) >> 40) as f32 / (1u64 << 24) as f32;
                    if r < p.speckle {
                        *o = 1 - v;
                    }
                }
            };
            if parallel {
                let rows: Vec<(usize, &mut [u8])> = out.chunks_mut(w).enumerate().collect();
                vrd_runtime::parallel_for_each(rows, |(y, row)| speckle_row(y, row));
            } else {
                for (y, row) in out.chunks_mut(w).enumerate() {
                    speckle_row(y, row);
                }
            }
        }
        out
    }

    /// Detects objects: ground-truth boxes jittered by the profile's
    /// `box_jitter`, each with a confidence score. Deterministic in
    /// `(gt_boxes, seed)`.
    pub fn detect(
        &self,
        gt_boxes: &[Rect],
        frame_w: usize,
        frame_h: usize,
        seed: u64,
    ) -> Vec<Detection> {
        let jitter_amp = self.profile.box_jitter;
        gt_boxes
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let r = (hash2(*i as i64, 6, seed) >> 40) as f32 / (1u64 << 24) as f32;
                r >= self.profile.miss_prob
            })
            .map(|(i, b)| {
                let jitter = |salt: i64| -> i32 {
                    let r = (hash2(i as i64, salt, seed) >> 40) as f32 / (1u64 << 24) as f32;
                    ((r - 0.5) * 2.0 * jitter_amp).round() as i32
                };
                let rect = Rect::new(
                    b.x0 + jitter(1),
                    b.y0 + jitter(2),
                    b.x1 + jitter(3),
                    b.y1 + jitter(4),
                )
                .clamped(frame_w, frame_h);
                let score_r = (hash2(i as i64, 5, seed) >> 40) as f32 / (1u64 << 24) as f32;
                let score = (1.0 - 0.1 * jitter_amp * score_r).clamp(0.05, 1.0);
                Detection::new(rect, score)
            })
            .filter(|d| !d.rect.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_mask(w: usize, h: usize, r: Rect) -> SegMask {
        let mut m = SegMask::new(w, h);
        m.fill_rect(r);
        m
    }

    fn iou(a: &SegMask, b: &SegMask) -> f64 {
        let mut inter = 0u64;
        let mut uni = 0u64;
        for (&x, &y) in a.words().iter().zip(b.words()) {
            inter += u64::from((x & y).count_ones());
            uni += u64::from((x | y).count_ones());
        }
        inter as f64 / uni.max(1) as f64
    }

    #[test]
    fn noise_stays_near_the_boundary() {
        let gt = square_mask(64, 64, Rect::new(16, 16, 48, 48));
        let net = LargeNet::new(LargeNetProfile::favos());
        let seg = net.segment(&gt, 42);
        // Interior deep inside the object must be untouched (warp amplitude
        // is a couple of pixels).
        for y in 26..38 {
            for x in 26..38 {
                assert_eq!(seg.get(x, y), 1, "interior flipped at ({x},{y})");
            }
        }
        // But something near the boundary must differ.
        assert_ne!(seg, gt);
    }

    #[test]
    fn errors_are_structured_not_speckle() {
        // The warped mask must stay a mostly-connected blob: its foreground
        // count should be close to the truth even though the boundary moved.
        let gt = square_mask(96, 96, Rect::new(24, 24, 72, 72));
        let net = LargeNet::new(LargeNetProfile::favos());
        let seg = net.segment(&gt, 9);
        let ratio = seg.count_ones() as f64 / gt.count_ones() as f64;
        assert!((0.9..1.1).contains(&ratio), "area drifted: {ratio:.3}");
    }

    #[test]
    fn favos_quality_beats_osvos() {
        let gt = square_mask(96, 96, Rect::new(20, 20, 76, 76));
        let favos = LargeNet::new(LargeNetProfile::favos());
        let osvos = LargeNet::new(LargeNetProfile::osvos());
        let iou_f = iou(&favos.segment(&gt, 1), &gt);
        let iou_o = iou(&osvos.segment(&gt, 1), &gt);
        assert!(iou_f > iou_o, "favos {iou_f:.3} <= osvos {iou_o:.3}");
        assert!(iou_f > 0.85, "favos too noisy: {iou_f:.3}");
    }

    #[test]
    fn segmentation_is_deterministic_per_seed() {
        let gt = square_mask(32, 32, Rect::new(8, 8, 24, 24));
        let net = LargeNet::new(LargeNetProfile::favos());
        assert_eq!(net.segment(&gt, 7), net.segment(&gt, 7));
        assert_ne!(net.segment(&gt, 7), net.segment(&gt, 8));
    }

    #[test]
    fn staged_forward_matches_segment_bit_exactly() {
        // The Stages API is a pure refactor: head ∘ backbone must equal the
        // fused oracle bit for bit, across profiles, seeds and ragged
        // (non-stride-multiple) frame sizes.
        let gt = square_mask(97, 61, Rect::new(20, 10, 70, 50));
        for profile in [
            LargeNetProfile::favos(),
            LargeNetProfile::osvos(),
            LargeNetProfile::selsa(),
        ] {
            let net = LargeNet::new(profile);
            for seed in [0, 7, 1234] {
                assert_eq!(
                    net.forward(&gt, seed),
                    net.segment(&gt, seed),
                    "staged forward diverged for {} seed {seed}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn backbone_features_have_staged_layout() {
        let gt = square_mask(64, 48, Rect::new(8, 8, 40, 40));
        let net = LargeNet::new(LargeNetProfile::favos());
        let feat = net.forward_backbone(&gt, 3);
        assert_eq!(feat.stride(), crate::featwarp::FEATURE_STRIDE);
        assert_eq!(feat.channels(), crate::featwarp::FEATURE_CHANNELS);
        assert_eq!((feat.frame_w(), feat.frame_h()), (64, 48));
        // Channel 0 is a block mean: bounded to [0, 1].
        for &v in feat.tensor().channel(0) {
            assert!((0.0..=1.0).contains(&v), "mean out of range: {v}");
        }
    }

    #[test]
    fn head_ops_are_a_quarter_of_full_inference() {
        let net = LargeNet::new(LargeNetProfile::favos());
        let (w, h) = (854, 480);
        let full = net.ops(w, h);
        let head = net.head_ops(w, h);
        assert_eq!(head, (full as f64 * NNL_HEAD_FRACTION) as u64);
        assert_eq!(net.backbone_ops(w, h) + head, full);
        assert!(head < full / 3);
    }

    #[test]
    fn ops_follow_paper_scale() {
        let net = LargeNet::new(LargeNetProfile::favos());
        // 854x480 ≈ 0.5 TOPS per the paper.
        let ops = net.ops(854, 480) as f64;
        assert!((ops - 0.5e12).abs() / 0.5e12 < 0.01, "{ops:e}");
        let osvos = LargeNet::new(LargeNetProfile::osvos());
        assert_eq!(osvos.ops(854, 480), 2 * net.ops(854, 480));
    }

    #[test]
    fn detection_jitters_but_overlaps() {
        let boxes = vec![Rect::new(10, 10, 40, 34), Rect::new(50, 5, 70, 25)];
        let net = LargeNet::new(LargeNetProfile::favos()); // miss-free profile
        let dets = net.detect(&boxes, 96, 64, 3);
        assert_eq!(dets.len(), 2);
        for (d, gt) in dets.iter().zip(&boxes) {
            assert!(d.rect.iou(gt) > 0.6, "detection drifted: {:?}", d.rect);
            assert!((0.0..=1.0).contains(&d.score));
        }
    }

    #[test]
    fn selsa_profile_misses_a_calibrated_fraction() {
        let boxes = vec![Rect::new(10, 10, 30, 30)];
        let net = LargeNet::new(LargeNetProfile::selsa());
        let detected = (0..400)
            .filter(|&seed| !net.detect(&boxes, 96, 64, seed).is_empty())
            .count();
        let rate = detected as f64 / 400.0;
        // SELSA aggregates over the whole sequence, so its per-frame miss
        // rate is 0 in this model (difficulty shows up as box jitter).
        assert!(rate > 0.99, "detection rate {rate:.2} should be ~1");
    }
}
