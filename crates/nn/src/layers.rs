//! Parameter-free layers: pooling, upsampling, activation, concatenation.

use crate::tensor::Tensor;

/// 2×2 max pooling (the NN-S "downsampling" layer).
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: (usize, usize, usize),
}

impl MaxPool2 {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; input height/width must be even.
    ///
    /// # Panics
    /// Panics on odd input dimensions.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (c, h, w) = (x.channels(), x.height(), x.width());
        assert!(h % 2 == 0 && w % 2 == 0, "max-pool needs even dimensions");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(c, oh, ow);
        self.argmax = vec![0; c * oh * ow];
        self.in_shape = (c, h, w);
        for ci in 0..c {
            for y in 0..oh {
                for xp in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (sy, sx) = (2 * y + dy, 2 * xp + dx);
                            let v = x.get(ci, sy, sx);
                            if v > best {
                                best = v;
                                best_idx = (ci * h + sy) * w + sx;
                            }
                        }
                    }
                    out.set(ci, y, xp, best);
                    self.argmax[(ci * oh + y) * ow + xp] = best_idx;
                }
            }
        }
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&self, gout: &Tensor) -> Tensor {
        let (c, h, w) = self.in_shape;
        assert!(c > 0, "forward must run before backward");
        let mut gin = Tensor::zeros(c, h, w);
        for (i, &src) in self.argmax.iter().enumerate() {
            gin.as_mut_slice()[src] += gout.as_slice()[i];
        }
        gin
    }
}

/// Nearest-neighbour 2× upsampling (the NN-S "upsampling" layer).
#[derive(Debug, Clone, Copy, Default)]
pub struct Upsample2;

impl Upsample2 {
    /// Forward pass: each input pixel becomes a 2×2 block.
    pub fn forward(x: &Tensor) -> Tensor {
        let (c, h, w) = (x.channels(), x.height(), x.width());
        let mut out = Tensor::zeros(c, h * 2, w * 2);
        for ci in 0..c {
            for y in 0..h * 2 {
                for xp in 0..w * 2 {
                    out.set(ci, y, xp, x.get(ci, y / 2, xp / 2));
                }
            }
        }
        out
    }

    /// Backward pass: sums the 2×2 block gradients back to the source pixel.
    ///
    /// # Panics
    /// Panics on odd gradient dimensions.
    pub fn backward(gout: &Tensor) -> Tensor {
        let (c, h, w) = (gout.channels(), gout.height(), gout.width());
        assert!(h % 2 == 0 && w % 2 == 0, "upsample grad needs even dims");
        let mut gin = Tensor::zeros(c, h / 2, w / 2);
        for ci in 0..c {
            for y in 0..h {
                for xp in 0..w {
                    let cur = gin.get(ci, y / 2, xp / 2);
                    gin.set(ci, y / 2, xp / 2, cur + gout.get(ci, y, xp));
                }
            }
        }
        gin
    }
}

/// ReLU activation with cached mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
        let data = x.as_slice().iter().map(|&v| v.max(0.0)).collect();
        Tensor::from_vec(x.channels(), x.height(), x.width(), data)
    }

    /// Backward pass.
    ///
    /// # Panics
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&self, gout: &Tensor) -> Tensor {
        assert_eq!(self.mask.len(), gout.len(), "relu shape mismatch");
        let data = gout
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(gout.channels(), gout.height(), gout.width(), data)
    }
}

/// Channel-wise concatenation of two tensors, with a matching split for the
/// backward pass.
pub fn concat(a: &Tensor, b: &Tensor) -> Tensor {
    Tensor::stack(&[a.clone(), b.clone()])
}

/// Splits a gradient back into the two concatenated parts.
///
/// # Panics
/// Panics if `c_first` is not smaller than the gradient's channel count.
pub fn split(g: &Tensor, c_first: usize) -> (Tensor, Tensor) {
    let (c, h, w) = (g.channels(), g.height(), g.width());
    assert!(c_first < c, "split point must leave both halves non-empty");
    let plane = h * w;
    let first = Tensor::from_vec(c_first, h, w, g.as_slice()[..c_first * plane].to_vec());
    let second = Tensor::from_vec(c - c_first, h, w, g.as_slice()[c_first * plane..].to_vec());
    (first, second)
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let data = x
        .as_slice()
        .iter()
        .map(|&v| 1.0 / (1.0 + (-v).exp()))
        .collect();
    Tensor::from_vec(x.channels(), x.height(), x.width(), data)
}

// --- Slice-level inference kernels ------------------------------------
//
// Cache-free counterparts of the layers above, operating on raw CHW
// slices so the inference path can run entirely on pooled scratch
// buffers. Each computes the same values as its training twin.

/// In-place ReLU over a raw buffer.
pub fn relu_in_place(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = v.max(0.0);
    }
}

/// 2×2 max pooling from a `c × h × w` slice into a `c × h/2 × w/2` slice,
/// without recording argmax positions.
///
/// # Panics
/// Panics on odd input dimensions or mismatched buffer lengths.
pub fn maxpool2_into(src: &[f32], c: usize, h: usize, w: usize, dst: &mut [f32]) {
    assert!(
        h.is_multiple_of(2) && w.is_multiple_of(2),
        "max-pool needs even dimensions"
    );
    assert_eq!(src.len(), c * h * w, "max-pool input length mismatch");
    assert_eq!(dst.len(), c * h * w / 4, "max-pool output length mismatch");
    let (oh, ow) = (h / 2, w / 2);
    for ci in 0..c {
        let plane = &src[ci * h * w..][..h * w];
        for y in 0..oh {
            let top = &plane[2 * y * w..][..w];
            let bot = &plane[(2 * y + 1) * w..][..w];
            let orow = &mut dst[(ci * oh + y) * ow..][..ow];
            for (xp, o) in orow.iter_mut().enumerate() {
                let a = top[2 * xp].max(top[2 * xp + 1]);
                let b = bot[2 * xp].max(bot[2 * xp + 1]);
                *o = a.max(b);
            }
        }
    }
}

/// Nearest-neighbour 2× upsampling from a `c × h × w` slice into a
/// `c × 2h × 2w` slice.
///
/// # Panics
/// Panics on mismatched buffer lengths.
pub fn upsample2_into(src: &[f32], c: usize, h: usize, w: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), c * h * w, "upsample input length mismatch");
    assert_eq!(dst.len(), c * h * w * 4, "upsample output length mismatch");
    let (oh, ow) = (h * 2, w * 2);
    for ci in 0..c {
        let plane = &src[ci * h * w..][..h * w];
        for y in 0..oh {
            let srow = &plane[(y / 2) * w..][..w];
            let orow = &mut dst[(ci * oh + y) * ow..][..ow];
            for (xp, o) in orow.iter_mut().enumerate() {
                *o = srow[xp / 2];
            }
        }
    }
}

/// In-place logistic sigmoid over a raw buffer.
pub fn sigmoid_in_place(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_backward() {
        let x = Tensor::from_vec(1, 2, 4, vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 9.0]);
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x);
        assert_eq!(y.as_slice(), &[5.0, 9.0]);
        let g = Tensor::from_vec(1, 1, 2, vec![10.0, 20.0]);
        let gin = pool.backward(&g);
        // Gradient flows only to the max positions.
        assert_eq!(gin.get(0, 0, 1), 10.0);
        assert_eq!(gin.get(0, 1, 3), 20.0);
        assert_eq!(gin.as_slice().iter().sum::<f32>(), 30.0);
    }

    #[test]
    fn upsample_forward_backward_are_adjoint() {
        let x = Tensor::from_vec(1, 1, 2, vec![3.0, 7.0]);
        let y = Upsample2::forward(&x);
        assert_eq!(y.get(0, 1, 1), 3.0);
        assert_eq!(y.get(0, 0, 3), 7.0);
        let gin = Upsample2::backward(&y);
        // Each source receives 4 copies of its own value.
        assert_eq!(gin.as_slice(), &[12.0, 28.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let x = Tensor::from_vec(1, 1, 4, vec![-1.0, 2.0, 0.0, 3.0]);
        let mut relu = Relu::new();
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = Tensor::from_vec(1, 1, 4, vec![1.0; 4]);
        assert_eq!(relu.backward(&g).as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec(2, 2, 2, (0..8).map(|v| v as f32).collect());
        let b = Tensor::from_vec(1, 2, 2, vec![9.0; 4]);
        let c = concat(&a, &b);
        let (ga, gb) = split(&c, 2);
        assert_eq!(ga, a);
        assert_eq!(gb, b);
    }

    #[test]
    fn sigmoid_squashes() {
        let x = Tensor::from_vec(1, 1, 3, vec![-100.0, 0.0, 100.0]);
        let y = sigmoid(&x);
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }
}
