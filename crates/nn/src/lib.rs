//! # vrd-nn — a from-scratch CNN substrate for VR-DANN
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020). It contains:
//!
//! * a minimal trainable CNN stack — [`Tensor`], [`Conv2d`] with
//!   backpropagation, pooling/upsampling/activation layers, BCE loss and an
//!   SGD-momentum [`trainer`];
//! * [`NnS`], the paper's 3-layer refinement network (conv → downsample →
//!   conv → upsample → concat → conv on the sandwich input), actually
//!   trained for the paper's two epochs;
//! * [`LargeNet`], the calibrated oracle standing in for the trained
//!   ROI-SegNet / OSVOS / SELSA networks (quality + ops model; see
//!   `DESIGN.md` §2 for the substitution rationale).
//!
//! ## Example
//!
//! ```
//! use vrd_nn::{NnS, Tensor};
//!
//! let nns = NnS::new(8, 42);
//! // NN-S is tiny: under 1k parameters vs hundreds of millions for NN-L.
//! assert!(nns.n_params() < 1500);
//! let sandwich = Tensor::zeros(3, 16, 16);
//! let refined = nns.infer(&sandwich);
//! assert_eq!(refined.channels(), 1);
//! ```

pub mod conv;
pub mod featwarp;
pub mod largenet;
pub mod layers;
pub mod loss;
pub mod nns;
pub mod quant;
pub mod serialize;
pub mod tensor;
pub mod trainer;

pub use conv::Conv2d;
pub use featwarp::{FeatureMap, WarpSource, FEATURE_CHANNELS, FEATURE_STRIDE};
pub use largenet::{
    LargeNet, LargeNetProfile, FLOWNET_OPS_PER_PIXEL, NNL_HEAD_FRACTION, NNL_OPS_PER_PIXEL,
};
pub use layers::{concat, sigmoid, split, MaxPool2, Relu, Upsample2};
pub use loss::{bce_with_logits, mse};
pub use nns::{NnS, SANDWICH_CHANNELS};
pub use quant::{ActScales, ComputeMode, QuantConv2d, QuantNnS, Requant};
pub use serialize::{load_nns, save_nns};
pub use tensor::Tensor;
pub use trainer::{train, Optimizer, Sample, TrainConfig};
