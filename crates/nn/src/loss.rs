//! Losses for segmentation training.

use crate::tensor::Tensor;

/// Binary cross-entropy on logits, numerically stable.
///
/// Returns `(mean loss, gradient w.r.t. the logits)`. The gradient is the
/// textbook `sigmoid(z) - target`, scaled by `1 / n`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn bce_with_logits(logits: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.len(), target.len(), "loss shape mismatch");
    let n = logits.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(logits.len());
    for (&z, &t) in logits.as_slice().iter().zip(target.as_slice()) {
        // log(1 + exp(-|z|)) + max(z, 0) - z*t  (stable BCE-with-logits)
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        let p = 1.0 / (1.0 + (-z).exp());
        grad.push((p - t) / n);
    }
    (
        loss / n,
        Tensor::from_vec(logits.channels(), logits.height(), logits.width(), grad),
    )
}

/// Mean squared error; returns `(mean loss, gradient)`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.len(), target.len(), "loss shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.as_slice().iter().zip(target.as_slice()) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (
        loss / n,
        Tensor::from_vec(pred.channels(), pred.height(), pred.width(), grad),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(1, 1, 2, vec![20.0, -20.0]);
        let target = Tensor::from_vec(1, 1, 2, vec![1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &target);
        assert!(loss < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn bce_wrong_prediction_is_large_with_correcting_gradient() {
        let logits = Tensor::from_vec(1, 1, 1, vec![-10.0]);
        let target = Tensor::from_vec(1, 1, 1, vec![1.0]);
        let (loss, grad) = bce_with_logits(&logits, &target);
        assert!(loss > 5.0);
        // Gradient must push the logit upwards (negative gradient).
        assert!(grad.as_slice()[0] < 0.0);
    }

    #[test]
    fn bce_gradient_matches_numeric() {
        let z = 0.37f32;
        let t = 1.0f32;
        let logits = Tensor::from_vec(1, 1, 1, vec![z]);
        let target = Tensor::from_vec(1, 1, 1, vec![t]);
        let (_, grad) = bce_with_logits(&logits, &target);
        let eps = 1e-3;
        let l = |z: f32| -> f32 {
            let logits = Tensor::from_vec(1, 1, 1, vec![z]);
            bce_with_logits(&logits, &target).0
        };
        let numeric = (l(z + eps) - l(z - eps)) / (2.0 * eps);
        assert!((grad.as_slice()[0] - numeric).abs() < 1e-3);
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec(1, 1, 2, vec![1.0, 3.0]);
        let target = Tensor::from_vec(1, 1, 2, vec![1.0, 1.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.0).abs() < 1e-6);
        assert_eq!(grad.as_slice()[0], 0.0);
        assert!((grad.as_slice()[1] - 2.0).abs() < 1e-6);
    }
}
