//! NN-S: the paper's lightweight refinement network (§III-A2).
//!
//! "NN-S is a 3-layer convolution neural network, including convolution,
//! downsampling, convolution, upsampling, concatenate and convolution
//! layers." The input is the sandwich 3-channel image (previous reference
//! segmentation / reconstructed B-frame / next reference segmentation); the
//! output is a single-channel refined foreground probability.

use crate::conv::Conv2d;
use crate::layers::{
    concat, maxpool2_into, relu_in_place, sigmoid_in_place, split, upsample2_into, MaxPool2, Relu,
    Upsample2,
};
use crate::loss::bce_with_logits;
use crate::quant::{ActScales, QuantNnS};
use crate::tensor::Tensor;
use vrd_runtime::BufferPool;

/// Channels of the sandwich input.
pub const SANDWICH_CHANNELS: usize = 3;

/// Scratch buffers for the cache-free inference path, recycled across
/// frames so steady-state refinement does not allocate per call.
static SCRATCH: BufferPool = BufferPool::new();

/// Element-wise tensor addition.
fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.len(), b.len(), "tensor addition shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x + y)
        .collect();
    Tensor::from_vec(a.channels(), a.height(), a.width(), data)
}

/// The NN-S refinement network.
#[derive(Debug, Clone)]
pub struct NnS {
    hidden: usize,
    conv1: Conv2d,
    relu1: Relu,
    pool: MaxPool2,
    conv2: Conv2d,
    relu2: Relu,
    conv3: Conv2d,
    cache_a1: Option<Tensor>,
    act_scales: Option<ActScales>,
}

impl NnS {
    /// Builds NN-S with `hidden` feature channels and seeded initialisation.
    ///
    /// # Panics
    /// Panics if `hidden` is zero.
    pub fn new(hidden: usize, seed: u64) -> Self {
        assert!(hidden > 0, "hidden channel count must be non-zero");
        Self {
            hidden,
            conv1: Conv2d::new(SANDWICH_CHANNELS, hidden, 3, seed ^ 0x01),
            relu1: Relu::new(),
            pool: MaxPool2::new(),
            conv2: Conv2d::new(hidden, hidden, 3, seed ^ 0x02),
            relu2: Relu::new(),
            conv3: Conv2d::new(2 * hidden, 1, 3, seed ^ 0x03),
            cache_a1: None,
            act_scales: None,
        }
    }

    /// Hidden feature-channel width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The three convolution layers (for serialisation).
    pub fn convs(&self) -> (&Conv2d, &Conv2d, &Conv2d) {
        (&self.conv1, &self.conv2, &self.conv3)
    }

    /// Rebuilds a model from deserialised convolutions.
    ///
    /// # Panics
    /// Panics if `hidden` is zero (the deserialiser validates shapes).
    pub fn from_convs(hidden: usize, conv1: Conv2d, conv2: Conv2d, conv3: Conv2d) -> Self {
        assert!(hidden > 0, "hidden channel count must be non-zero");
        Self {
            hidden,
            conv1,
            relu1: Relu::new(),
            pool: MaxPool2::new(),
            conv2,
            relu2: Relu::new(),
            conv3,
            cache_a1: None,
            act_scales: None,
        }
    }

    /// Calibrated activation scales, if [`NnS::calibrate`] ran (or a
    /// deserialised model carried them).
    pub fn act_scales(&self) -> Option<ActScales> {
        self.act_scales
    }

    /// Attaches activation scales (used by the deserialiser; normal code
    /// calls [`NnS::calibrate`]).
    pub fn set_act_scales(&mut self, scales: ActScales) {
        self.act_scales = Some(scales);
    }

    /// Observes activation ranges on a calibration set and stores the
    /// resulting [`ActScales`], tightening the quantized path's resolution
    /// versus the conservative weight-norm bound. Runs the inference
    /// layers only (no gradients); inputs with odd dimensions are skipped
    /// by the same even-dimension rule as [`NnS::infer`].
    ///
    /// # Panics
    /// Panics if any input has the wrong channel count or odd dimensions.
    pub fn calibrate(&mut self, inputs: &[&Tensor]) {
        let (mut in_max, mut a1_max, mut a2_max) = (0.0f32, 0.0f32, 0.0f32);
        let abs_max = |s: &[f32]| s.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for x in inputs {
            assert_eq!(
                x.channels(),
                SANDWICH_CHANNELS,
                "NN-S expects the 3-channel sandwich input"
            );
            let (h, w) = (x.height(), x.width());
            assert!(h % 2 == 0 && w % 2 == 0, "max-pool needs even dimensions");
            let (hw, hid) = (h * w, self.hidden);
            in_max = in_max.max(abs_max(x.as_slice()));
            let mut a1 = SCRATCH.take(hid * hw);
            self.conv1.forward_into(x.as_slice(), h, w, &mut a1);
            relu_in_place(&mut a1);
            a1_max = a1_max.max(abs_max(&a1));
            let mut d = SCRATCH.take(hid * hw / 4);
            maxpool2_into(&a1, hid, h, w, &mut d);
            let mut a2 = SCRATCH.take(hid * hw / 4);
            self.conv2.forward_into(&d, h / 2, w / 2, &mut a2);
            relu_in_place(&mut a2);
            a2_max = a2_max.max(abs_max(&a2));
        }
        self.act_scales = Some(ActScales::from_maxes(in_max, a1_max, a2_max));
    }

    /// Builds the quantized twin of this model ([`QuantNnS`]), using the
    /// calibrated activation scales when present. Quantize once and reuse:
    /// the weight quantization is the expensive part.
    pub fn quantize(&self) -> QuantNnS {
        QuantNnS::from_nns(self)
    }

    /// One-shot quantized inference — [`NnS::quantize`] then
    /// [`QuantNnS::infer`]. Steady-state pipelines should hold the
    /// [`QuantNnS`] instead of re-quantizing per frame.
    ///
    /// # Panics
    /// Panics on a wrong channel count or odd spatial dimensions.
    pub fn infer_quantized(&self, x: &Tensor) -> Tensor {
        self.quantize().infer(x)
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.conv1.n_params() + self.conv2.n_params() + self.conv3.n_params()
    }

    /// Multiply-accumulate count of one inference over an `h`×`w` input.
    /// This is the number the simulator charges the NPU for a B-frame
    /// refinement.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        self.conv1.macs(h, w) + self.conv2.macs(h / 2, w / 2) + self.conv3.macs(h, w)
    }

    /// Forward pass producing logits. Input must be
    /// `SANDWICH_CHANNELS × h × w` with even `h`, `w`.
    ///
    /// # Panics
    /// Panics on a wrong channel count or odd spatial dimensions.
    pub fn forward_logits(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.channels(),
            SANDWICH_CHANNELS,
            "NN-S expects the 3-channel sandwich input"
        );
        let a1 = self.relu1.forward(&self.conv1.forward(x));
        let d = self.pool.forward(&a1);
        let a2 = self.relu2.forward(&self.conv2.forward(&d));
        let up = Upsample2::forward(&a2);
        let cat = concat(&a1, &up);
        self.cache_a1 = Some(a1);
        self.conv3.forward(&cat)
    }

    /// Inference: refined foreground probability map in `[0, 1]`.
    ///
    /// Unlike the training path this takes `&self` and skips every piece of
    /// gradient bookkeeping — no input clones, no activation masks, no
    /// argmax maps — running the whole pipeline on pooled scratch buffers.
    /// It computes exactly the same values as
    /// `sigmoid(forward_logits(x))`.
    ///
    /// # Panics
    /// Panics on a wrong channel count or odd spatial dimensions.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.channels(),
            SANDWICH_CHANNELS,
            "NN-S expects the 3-channel sandwich input"
        );
        let (h, w) = (x.height(), x.width());
        assert!(h % 2 == 0 && w % 2 == 0, "max-pool needs even dimensions");
        let (hw, hid) = (h * w, self.hidden);
        let mut a1 = SCRATCH.take(hid * hw);
        self.conv1.forward_into(x.as_slice(), h, w, &mut a1);
        relu_in_place(&mut a1);
        let mut d = SCRATCH.take(hid * hw / 4);
        maxpool2_into(&a1, hid, h, w, &mut d);
        let mut a2 = SCRATCH.take(hid * hw / 4);
        self.conv2.forward_into(&d, h / 2, w / 2, &mut a2);
        relu_in_place(&mut a2);
        let mut cat = SCRATCH.take(2 * hid * hw);
        cat[..hid * hw].copy_from_slice(&a1);
        upsample2_into(&a2, hid, h / 2, w / 2, &mut cat[hid * hw..]);
        let mut out = vec![0.0; hw];
        self.conv3.forward_into(&cat, h, w, &mut out);
        sigmoid_in_place(&mut out);
        Tensor::from_vec(1, h, w, out)
    }

    /// Adds another model's accumulated gradients into this one's buffers
    /// (per-sample gradient reduction in the trainer).
    pub fn accumulate_grads_from(&mut self, other: &NnS) {
        self.conv1.accumulate_grads_from(&other.conv1);
        self.conv2.accumulate_grads_from(&other.conv2);
        self.conv3.accumulate_grads_from(&other.conv3);
    }

    /// One training step: forward, BCE-with-logits against `target`,
    /// backward. Gradients accumulate until [`NnS::apply_grads`].
    /// Returns the loss.
    pub fn train_step(&mut self, x: &Tensor, target: &Tensor) -> f32 {
        let logits = self.forward_logits(x);
        let (loss, dlogits) = bce_with_logits(&logits, target);
        self.backward(&dlogits);
        loss
    }

    /// Backward pass from a logits gradient.
    ///
    /// # Panics
    /// Panics if called before [`NnS::forward_logits`].
    pub fn backward(&mut self, dlogits: &Tensor) {
        let g_cat = self.conv3.backward(dlogits);
        let (g_a1_direct, g_up) = split(&g_cat, self.hidden);
        let g_a2 = Upsample2::backward(&g_up);
        let g_d = self.conv2.backward(&self.relu2.backward(&g_a2));
        let g_a1_pool = self.pool.backward(&g_d);
        let g_a1 = add(&g_a1_direct, &g_a1_pool);
        let _ = self.conv1.backward(&self.relu1.backward(&g_a1));
        self.cache_a1 = None;
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
        self.conv3.zero_grad();
    }

    /// SGD-with-momentum update (gradients averaged over `batch`).
    pub fn apply_grads(&mut self, lr: f32, momentum: f32, batch: usize) {
        self.conv1.apply_grads(lr, momentum, batch);
        self.conv2.apply_grads(lr, momentum, batch);
        self.conv3.apply_grads(lr, momentum, batch);
    }

    /// Adam update (gradients averaged over `batch`; `step` is 1-based).
    pub fn apply_grads_adam(
        &mut self,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        step: usize,
        batch: usize,
    ) {
        self.conv1
            .apply_grads_adam(lr, beta1, beta2, eps, step, batch);
        self.conv2
            .apply_grads_adam(lr, beta1, beta2, eps, step, batch);
        self.conv3
            .apply_grads_adam(lr, beta1, beta2, eps, step, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_range() {
        let nns = NnS::new(4, 1);
        let x = Tensor::zeros(3, 8, 12);
        let y = nns.infer(&x);
        assert_eq!((y.channels(), y.height(), y.width()), (1, 8, 12));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn inference_matches_training_forward() {
        use crate::layers::sigmoid;
        let mut nns = NnS::new(6, 23);
        let x = Tensor::from_vec(
            3,
            10,
            14,
            (0..3 * 10 * 14).map(|v| (v as f32 * 0.11).sin()).collect(),
        );
        let logits = nns.forward_logits(&x);
        let trained = sigmoid(&logits);
        let inferred = nns.infer(&x);
        assert_eq!(trained.as_slice(), inferred.as_slice());
    }

    #[test]
    fn parameter_count_is_tiny() {
        let nns = NnS::new(8, 0);
        // conv1: 3*8*9+8, conv2: 8*8*9+8, conv3: 16*1*9+1.
        assert_eq!(nns.n_params(), 224 + 584 + 145);
        // Orders of magnitude below any "large" segmentation network.
        assert!(nns.n_params() < 1500);
    }

    #[test]
    fn macs_scale_with_resolution() {
        let nns = NnS::new(8, 0);
        assert_eq!(nns.macs(16, 16) * 4, nns.macs(32, 32));
    }

    #[test]
    fn learns_identity_refinement() {
        // Teach NN-S to output its middle channel: the degenerate task of
        // "reconstruction is already correct". Loss must fall sharply.
        let mut nns = NnS::new(4, 7);
        let mut pattern = Tensor::zeros(3, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let v = if (2..6).contains(&x) && (2..6).contains(&y) {
                    1.0
                } else {
                    0.0
                };
                for c in 0..3 {
                    pattern.set(c, y, x, v);
                }
            }
        }
        let target = Tensor::from_vec(1, 8, 8, pattern.channel(1).to_vec());
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            nns.zero_grad();
            last = nns.train_step(&pattern, &target);
            first.get_or_insert(last);
            nns.apply_grads(0.5, 0.9, 1);
        }
        assert!(
            last < first.unwrap() * 0.3,
            "loss {first:?} -> {last} did not fall"
        );
    }

    #[test]
    #[should_panic(expected = "sandwich")]
    fn rejects_wrong_channel_count() {
        let nns = NnS::new(4, 0);
        let _ = nns.infer(&Tensor::zeros(2, 8, 8));
    }
}
