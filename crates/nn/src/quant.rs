//! Quantized int8 inference path (ROADMAP item 2).
//!
//! The paper's NPU is a low-precision MAC array; this module mirrors that
//! with per-layer symmetric int8 quantization of the trained f32 weights:
//!
//! * **weights** — per-output-channel scales `s_w[co] = max|w[co]| / 127`,
//!   quantized to `i8` in `[-127, 127]`;
//! * **activations** — per-tensor scales from calibration
//!   ([`NnS::calibrate`](crate::NnS::calibrate) observes activation ranges
//!   on a calibration set), quantized to *7-bit unsigned* `u8` in
//!   `[0, 127]`. NN-S activations are non-negative by construction (the
//!   sandwich input lives in `[0, 1]`, the hidden layers are ReLU-gated),
//!   and capping at 127 keeps the SIMD inner loop's `i16` pair-sums exact
//!   (`2 · 127 · 127 < 2^15`);
//! * **accumulation** — exact `i32` dot products. Integer addition is
//!   associative, so the SIMD kernels are **bit-exact** with the naive
//!   [`reference`] kernel (pinned by `tests/quant_equivalence.rs`) — a
//!   stronger guarantee than the f32 path, which had to match accumulation
//!   order;
//! * **requantization** — between layers a TFLite-style fixed-point
//!   multiplier ([`Requant`]) folds `s_in · s_w[co] / s_out` and the bias
//!   into an `i32 × i32 >> shift` round-half-up, clamped to `[0, 127]` —
//!   the clamp *is* the ReLU.
//!
//! The inner loops come in two flavours: a portable tap-AXPY over `i32`
//! rows (autovectorizable tight loops), and an explicit AVX2 kernel behind
//! the `simd` cargo feature + runtime detection that widens `u8` rows to
//! `i16` lanes, multiplies two taps per step (`127·127` fits `i16`, the
//! pair-sum too), and widens to `i32` accumulators held in registers — 32
//! MACs per 9 vector ops, no loads/stores of the accumulator row. Both
//! compute identical integers.
//!
//! [`QuantNnS`] wires three [`QuantConv2d`]s into the NN-S topology.
//! The final concat feeding conv3 mixes two activation scales (`a1` and
//! upsampled `a2`), so conv3 is split into two half-convolutions whose
//! `i32` accumulators are dequantized separately and summed in f32 — dot
//! products distribute, so the split is exact. Max-pool and
//! nearest-neighbour upsampling commute with the monotone quantizer and run
//! directly on `u8` planes.

use crate::conv::Conv2d;
use crate::layers::sigmoid_in_place;
use crate::nns::{NnS, SANDWICH_CHANNELS};
use crate::tensor::Tensor;
use vrd_runtime::BufferPool;

/// Largest quantized activation value (7-bit unsigned; see module docs).
pub const QMAX: i32 = 127;

/// Minimum multiply-accumulate count before a quantized convolution fans
/// out across threads (same threshold as the f32 kernels).
const PAR_MIN_MACS: u64 = 8_000_000;

/// Scratch pools for the quantized inference path: `u8` activation planes
/// and `i32` accumulator planes, recycled across frames.
static SCRATCH_U8: BufferPool<u8> = BufferPool::new();
static SCRATCH_I32: BufferPool<i32> = BufferPool::new();

/// Which compute path the pipeline runs NN-S inference on.
///
/// Threaded from [`VrDannConfig`](../../vr_dann/struct.VrDannConfig.html)
/// through the engine, the serving layer and the bench context. `Int8` is
/// the NPU-faithful path; `F32Reference` stays the pinned reference whose
/// outputs the goldens are byte-identical against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeMode {
    /// Full-precision f32 inference (the pinned reference path).
    #[default]
    F32Reference,
    /// Symmetric int8 inference with i32 accumulation ([`QuantNnS`]).
    Int8,
}

/// Per-tensor activation scales for NN-S, observed on a calibration set
/// (or conservatively bounded from the weights when none was run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActScales {
    /// Scale of the sandwich input (values in `[0, 1]`).
    pub input: f32,
    /// Scale of the post-ReLU conv1 activation.
    pub a1: f32,
    /// Scale of the post-ReLU conv2 activation.
    pub a2: f32,
}

impl ActScales {
    /// Builds scales from observed maximum activation magnitudes
    /// (`scale = max / 127`, floored away from zero so all-zero
    /// calibration activations stay representable).
    pub fn from_maxes(input: f32, a1: f32, a2: f32) -> Self {
        let s = |m: f32| m.max(1e-6) / QMAX as f32;
        Self {
            input: s(input),
            a1: s(a1),
            a2: s(a2),
        }
    }

    /// Conservative scales derived purely from the weights: the sandwich
    /// input is bounded by 1.0, and each ReLU layer by the L1 norm of its
    /// worst output channel. Used for models deserialized without
    /// calibration metadata; calibrated scales are tighter.
    pub fn bound_from_nns(nns: &NnS) -> Self {
        let (c1, c2, _) = nns.convs();
        let layer_bound = |conv: &Conv2d, in_max: f32| -> f32 {
            let (w, b) = conv.export_params();
            let per_co = w.len() / conv.cout();
            (0..conv.cout())
                .map(|co| {
                    let l1: f32 = w[co * per_co..][..per_co].iter().map(|v| v.abs()).sum();
                    l1 * in_max + b[co].abs()
                })
                .fold(0.0, f32::max)
        };
        let a1_max = layer_bound(c1, 1.0);
        // Max-pool does not change the range.
        let a2_max = layer_bound(c2, a1_max);
        Self::from_maxes(1.0, a1_max, a2_max)
    }

    /// Checks the scales are usable (finite and strictly positive).
    ///
    /// # Errors
    /// Returns a message naming the offending scale.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("input", self.input), ("a1", self.a1), ("a2", self.a2)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("activation scale {name} = {v} is not usable"));
            }
        }
        Ok(())
    }
}

/// A fixed-point requantization: maps an `i32` accumulator to a `u8`
/// activation via `clamp(round((acc + bias) · mult / 2^shift), 0, 127)`.
///
/// `mult/2^shift` approximates the real multiplier `s_in · s_w / s_out`
/// with 31 significant bits; `bias` is the layer bias pre-scaled into
/// accumulator units. The `[0, 127]` clamp fuses the ReLU, and the
/// round-half-up is computed in `i64` (which the range analysis on
/// [`Requant::apply`] shows is exact) so saturation tests can drive the
/// accumulator to `i32` extremes without overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requant {
    /// Fixed-point mantissa in `[2^30, 2^31)`.
    pub mult: i32,
    /// Right-shift applied after the widening multiply (`1..=62`).
    pub shift: u32,
    /// Bias in accumulator units, added before scaling.
    pub bias: i32,
}

impl Requant {
    /// Decomposes a positive real multiplier into `(mult, shift)` and
    /// attaches a pre-scaled bias.
    ///
    /// # Panics
    /// Panics if `m` is not a finite positive number or is too large to
    /// represent (`m >= 2^30`, far beyond any sane scale ratio).
    pub fn from_real(m: f64, bias: i32) -> Self {
        assert!(
            m.is_finite() && m > 0.0,
            "requant multiplier must be positive, got {m}"
        );
        // Normalise m = mant · 2^exp with mant in [0.5, 1).
        let mut mant = m;
        let mut exp = 0i32;
        while mant >= 1.0 {
            mant *= 0.5;
            exp += 1;
        }
        while mant < 0.5 {
            mant *= 2.0;
            exp -= 1;
        }
        let mut mult = (mant * (1i64 << 31) as f64).round() as i64;
        let mut shift = 31 - exp as i64;
        if mult == 1 << 31 {
            // Rounding carried into the next power of two.
            mult >>= 1;
            shift -= 1;
        }
        while shift > 62 {
            // Vanishingly small multiplier: shed precision rather than
            // shift out of the i128 intermediate.
            mult >>= 1;
            shift -= 1;
            if mult == 0 {
                shift = 1;
                break;
            }
        }
        assert!(shift >= 1, "requant multiplier {m} too large");
        Self {
            mult: mult as i32,
            shift: shift as u32,
            bias,
        }
    }

    /// Applies the requantization to one accumulator value. This function
    /// *is* the definition of saturating requantization — both the SIMD and
    /// the reference kernels call it, so they cannot disagree.
    ///
    /// All-`i64` and exact: `|acc + bias| < 2^32` and `mult < 2^31`, so the
    /// product fits `i64`, and with arithmetic-shift (floor) semantics
    /// `((v >> (shift−1)) + 1) >> 1` equals the round-half-up
    /// `(v + 2^(shift−1)) >> shift` for every `v` and `shift ∈ [1, 62]`.
    #[inline]
    pub fn apply(&self, acc: i32) -> u8 {
        let v = (acc as i64 + self.bias as i64) * self.mult as i64;
        let r = ((v >> (self.shift - 1)) + 1) >> 1;
        r.clamp(0, QMAX as i64) as u8
    }

    /// Whether the vectorized requantization is exact for every
    /// accumulator with `|acc| ≤ acc_bound`: the biased sum must fit `i32`
    /// (the SIMD path adds it in 32-bit lanes) and the rounded product
    /// must fit `i32` after the shift (it truncates 64-bit lanes before
    /// the clamp). Callers fall back to the scalar [`Requant::apply`]
    /// loop otherwise.
    pub(crate) fn vector_safe(&self, acc_bound: i64) -> bool {
        let s_max = acc_bound + (self.bias as i64).abs();
        if s_max > i32::MAX as i64 {
            return false;
        }
        let v = s_max as i128 * self.mult as i128;
        let r = (v + (1i128 << (self.shift - 1))) >> self.shift;
        // Strict bound so the negative extreme (one larger in magnitude
        // after rounding) stays in range too.
        r < i32::MAX as i128
    }
}

/// A stride-1, same-padded quantized convolution: `i8` weights laid out
/// `[cout][cin][k][k]` (matching [`Conv2d`]) with per-output-channel
/// scales, accumulating `u8` activations into exact `i32` sums.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConv2d {
    cin: usize,
    cout: usize,
    k: usize,
    wq: Vec<i8>,
    w_scale: Vec<f32>,
}

impl QuantConv2d {
    /// Quantizes an f32 weight tensor (`[cout][cin][k][k]`) with symmetric
    /// per-output-channel scales.
    ///
    /// # Panics
    /// Panics on zero dimensions, an even kernel, or a length mismatch.
    pub fn from_weights(cin: usize, cout: usize, k: usize, w: &[f32]) -> Self {
        assert!(cin > 0 && cout > 0 && k > 0, "conv dims must be non-zero");
        assert!(k % 2 == 1, "same-padded convolution needs an odd kernel");
        assert_eq!(w.len(), cout * cin * k * k, "weight length mismatch");
        let per_co = cin * k * k;
        let mut wq = Vec::with_capacity(w.len());
        let mut w_scale = Vec::with_capacity(cout);
        for co in 0..cout {
            let block = &w[co * per_co..][..per_co];
            let max = block.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = (max / QMAX as f32).max(1e-12);
            w_scale.push(scale);
            wq.extend(
                block
                    .iter()
                    .map(|&v| (v / scale).round().clamp(-(QMAX as f32), QMAX as f32) as i8),
            );
        }
        Self {
            cin,
            cout,
            k,
            wq,
            w_scale,
        }
    }

    /// Quantizes a trained [`Conv2d`]'s weights (the bias stays f32 and is
    /// folded into the requantization by the caller).
    pub fn from_conv(conv: &Conv2d) -> Self {
        let (w, _) = conv.export_params();
        Self::from_weights(conv.cin(), conv.cout(), conv.kernel_size(), &w)
    }

    /// Input channel count.
    pub fn cin(&self) -> usize {
        self.cin
    }

    /// Output channel count.
    pub fn cout(&self) -> usize {
        self.cout
    }

    /// Kernel size (odd).
    pub fn kernel_size(&self) -> usize {
        self.k
    }

    /// Per-output-channel weight scales.
    pub fn w_scale(&self) -> &[f32] {
        &self.w_scale
    }

    /// The quantized weights, `[cout][cin][k][k]`.
    pub fn weights(&self) -> &[i8] {
        &self.wq
    }

    /// Multiply-accumulate operations for one forward pass over `h × w`.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.cin * self.cout * self.k * self.k * h * w) as u64
    }

    fn check_forward(&self, x: &[u8], h: usize, w: usize, out_len: usize) {
        assert_eq!(x.len(), self.cin * h * w, "conv input length mismatch");
        assert_eq!(out_len, self.cout * h * w, "conv output length mismatch");
        debug_assert!(
            x.iter().all(|&v| v as i32 <= QMAX),
            "quantized activations must be 7-bit (<= 127)"
        );
    }

    /// Accumulates one output-channel plane into `acc` (which the caller
    /// zeroed). Dispatches to the AVX2 inner loop when compiled in and
    /// detected at runtime; otherwise runs the portable tap-AXPY.
    fn accumulate_plane(&self, co: usize, x: &[u8], h: usize, w: usize, acc: &mut [i32]) {
        let (k, pad) = (self.k, self.k / 2);
        // Valid tap rows for the current output row: (source row, k taps).
        let mut entries: Vec<(&[u8], &[i8])> = Vec::with_capacity(self.cin * k);
        // Packed (w_a, w_b) weight-pair scratch for the AVX2 inner loop,
        // reused across rows.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let mut wpack: Vec<i32> = Vec::with_capacity(self.cin * k * k);
        for y in 0..h {
            entries.clear();
            for ci in 0..self.cin {
                for ky in 0..k {
                    let sy = y as isize + ky as isize - pad as isize;
                    if sy < 0 || sy >= h as isize {
                        continue;
                    }
                    let src = &x[(ci * h + sy as usize) * w..][..w];
                    let wrow = &self.wq[((co * self.cin + ci) * k + ky) * k..][..k];
                    entries.push((src, wrow));
                }
            }
            let row = &mut acc[y * w..][..w];
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if avx2_enabled() && w >= 2 * pad + 16 {
                // SAFETY: AVX2 was detected; `x86::accumulate_row` only
                // touches indices in [0, w) of each entry row and
                // [pad, interior_end) of `row` (see its contract).
                let interior_end =
                    unsafe { x86::accumulate_row(&entries, pad, w, row, &mut wpack) };
                scalar_columns(&entries, pad, w, row, 0, pad);
                scalar_columns(&entries, pad, w, row, interior_end, w);
                continue;
            }
            portable_row(&entries, pad, w, row);
        }
    }

    /// Requantizes one accumulator plane into `u8` activations.
    /// Dispatches to the AVX2 lane-parallel path when it is provably exact
    /// for this layer's accumulator range (see [`Requant::vector_safe`]);
    /// otherwise applies the scalar definition element-wise.
    fn requant_plane(&self, rq: &Requant, acc: &[i32], out: &mut [u8]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            let acc_bound = (self.cin * self.k * self.k) as i64 * (QMAX as i64) * (QMAX as i64);
            if avx2_enabled() && rq.vector_safe(acc_bound) {
                // SAFETY: AVX2 was detected and the range precondition of
                // `requant_slice` was just checked.
                unsafe { x86::requant_slice(rq, acc, out) };
                return;
            }
        }
        for (o, &a) in out.iter_mut().zip(acc) {
            *o = rq.apply(a);
        }
    }

    fn forward_planes<F>(&self, h: usize, w: usize, run: F, n_planes: usize)
    where
        F: Fn(usize) + Sync,
    {
        if self.macs(h, w) >= PAR_MIN_MACS && vrd_runtime::max_threads() > 1 {
            vrd_runtime::parallel_for_each((0..n_planes).collect(), &run);
        } else {
            for co in 0..n_planes {
                run(co);
            }
        }
    }

    /// Forward pass into raw `i32` accumulators (no bias, no
    /// requantization) — the final-layer entry point, and the object the
    /// equivalence proptests pin against [`reference::forward_i32`].
    ///
    /// # Panics
    /// Panics on length mismatches; debug builds also reject activations
    /// above 127.
    pub fn forward_i32(&self, x: &[u8], h: usize, w: usize, out: &mut [i32]) {
        self.check_forward(x, h, w, out.len());
        let planes = std::sync::Mutex::new(
            out.chunks_mut(h * w)
                .map(Some)
                .collect::<Vec<Option<&mut [i32]>>>(),
        );
        self.forward_planes(
            h,
            w,
            |co| {
                let plane = planes.lock().expect("plane handout lock")[co]
                    .take()
                    .expect("each plane is taken once");
                plane.fill(0);
                self.accumulate_plane(co, x, h, w, plane);
            },
            self.cout,
        );
    }

    /// Forward pass with fused per-channel requantization into `u8`
    /// activations (the clamp to `[0, 127]` applies the ReLU).
    ///
    /// # Panics
    /// Panics on length mismatches or `rq.len() != cout`.
    pub fn forward_requant(&self, x: &[u8], h: usize, w: usize, rq: &[Requant], out: &mut [u8]) {
        self.check_forward(x, h, w, out.len());
        assert_eq!(rq.len(), self.cout, "one requant per output channel");
        let planes = std::sync::Mutex::new(
            out.chunks_mut(h * w)
                .map(Some)
                .collect::<Vec<Option<&mut [u8]>>>(),
        );
        self.forward_planes(
            h,
            w,
            |co| {
                let plane = planes.lock().expect("plane handout lock")[co]
                    .take()
                    .expect("each plane is taken once");
                let mut acc = SCRATCH_I32.take(h * w);
                self.accumulate_plane(co, x, h, w, &mut acc);
                self.requant_plane(&rq[co], &acc, plane);
            },
            self.cout,
        );
    }
}

/// Portable accumulation of one output row: per-tap AXPY over contiguous
/// lanes (`acc[x] += w · src[x+dx]`), the autovectorizable fallback.
fn portable_row(entries: &[(&[u8], &[i8])], pad: usize, w: usize, row: &mut [i32]) {
    for (src, wrow) in entries {
        for (kx, &wv) in wrow.iter().enumerate() {
            if wv == 0 {
                continue;
            }
            let dx = kx as isize - pad as isize;
            let x0 = (-dx).max(0) as usize;
            let x1 = ((w as isize - dx).min(w as isize)).max(0) as usize;
            if x0 >= x1 {
                continue;
            }
            let s0 = (x0 as isize + dx) as usize;
            let wv = wv as i32;
            for (o, &sv) in row[x0..x1].iter_mut().zip(&src[s0..s0 + (x1 - x0)]) {
                *o += wv * sv as i32;
            }
        }
    }
}

/// Scalar per-column accumulation with bounds checks — used for the padded
/// edge columns and the vector tail of the AVX2 path.
fn scalar_columns(
    entries: &[(&[u8], &[i8])],
    pad: usize,
    w: usize,
    row: &mut [i32],
    x0: usize,
    x1: usize,
) {
    for (xp, cell) in row.iter_mut().enumerate().take(x1).skip(x0) {
        let mut acc = *cell;
        for (src, wrow) in entries {
            for (kx, &wv) in wrow.iter().enumerate() {
                let sx = xp as isize + kx as isize - pad as isize;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                acc += wv as i32 * src[sx as usize] as i32;
            }
        }
        *cell = acc;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    #[allow(clippy::wildcard_imports)] // the intrinsics namespace is the API
    use std::arch::x86_64::*;

    /// AVX2 interior accumulation for one output row. Covers the whole
    /// interior `[pad, w − pad)` in 16-pixel blocks (the last block
    /// overlaps its predecessor when the interior is not a multiple of 16)
    /// and returns the end of the covered range; only the `pad` edge
    /// columns on each side are left to the scalar kernel.
    ///
    /// Two tap rows are folded per step with `vpmaddwd`: the two `u8`
    /// source rows are byte-interleaved (`vpunpcklbw`/`vpunpckhbw`),
    /// zero-extended to `i16` lanes, and multiply-added against the
    /// matching `(w_a, w_b)` `i16` pair — each product is at most
    /// `127 · 127` so the pair-sum lands exactly in the `i32` accumulator
    /// lanes. The packed weight pairs are pre-assembled once per row into
    /// `wpack` (one `i32` per tap-row pair and kernel column, low half
    /// `w_a`, high half `w_b`), so the inner loop re-reads them with plain
    /// broadcast loads instead of re-broadcasting on the shuffle port.
    /// 32 MACs per ~9 vector ops; accumulators never leave registers
    /// within a block.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, every entry's source row and
    /// `row` have length `w`, every weight row has length `2·pad + 1` —
    /// then every 16-byte load `src[xb+kx-pad..]` stays inside the row
    /// (`xb ≥ pad`, `xb + 16 ≤ w − pad`, `kx ≤ 2·pad`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_row(
        entries: &[(&[u8], &[i8])],
        pad: usize,
        w: usize,
        row: &mut [i32],
        wpack: &mut Vec<i32>,
    ) -> usize {
        let k = 2 * pad + 1;
        wpack.clear();
        let mut wpairs = entries.chunks_exact(2);
        for pair in wpairs.by_ref() {
            let (wa, wb) = (pair[0].1, pair[1].1);
            for kx in 0..k {
                let lo = wa[kx] as i16 as u16 as u32;
                let hi = wb[kx] as i16 as u16 as u32;
                wpack.push((lo | (hi << 16)) as i32);
            }
        }
        if let [(_, wa)] = wpairs.remainder() {
            for kx in 0..k {
                wpack.push(wa[kx] as i16 as u16 as u32 as i32);
            }
        }

        let nblocks = (w - 2 * pad) / 16;
        let mut xb = pad;
        for _ in 0..nblocks {
            block16(entries, wpack, k, pad, xb, row);
            xb += 16;
        }
        // Any tail narrower than a block is covered by one overlapping
        // block ending at the last interior column: each block computes its
        // sums from scratch and plain-stores them, so recomputing columns
        // the previous block already wrote stores the same values.
        let interior_end = w - pad;
        if xb < interior_end {
            block16(entries, wpack, k, pad, interior_end - 16, row);
        }
        interior_end
    }

    /// One 16-pixel block of [`accumulate_row`]: computes the full tap sum
    /// for output columns `[xb, xb + 16)` and stores it (no read-modify).
    ///
    /// # Safety
    /// Same contract as [`accumulate_row`], plus `pad ≤ xb ≤ w − pad − 16`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn block16(
        entries: &[(&[u8], &[i8])],
        wpack: &[i32],
        k: usize,
        pad: usize,
        xb: usize,
        row: &mut [i32],
    ) {
        let mut acc_lo = _mm256_setzero_si256();
        let mut acc_hi = _mm256_setzero_si256();
        let mut wi = 0usize;
        let mut pairs = entries.chunks_exact(2);
        for pair in pairs.by_ref() {
            let (ra, rb) = (pair[0].0, pair[1].0);
            for kx in 0..k {
                let off = xb + kx - pad;
                let xa = _mm_loadu_si128(ra.as_ptr().add(off).cast());
                let xb2 = _mm_loadu_si128(rb.as_ptr().add(off).cast());
                let wv = _mm256_set1_epi32(*wpack.get_unchecked(wi));
                wi += 1;
                let lo = _mm256_cvtepu8_epi16(_mm_unpacklo_epi8(xa, xb2));
                let hi = _mm256_cvtepu8_epi16(_mm_unpackhi_epi8(xa, xb2));
                acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, wv));
                acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, wv));
            }
        }
        if let [(ra, _)] = pairs.remainder() {
            let zero = _mm_setzero_si128();
            for kx in 0..k {
                let off = xb + kx - pad;
                let xa = _mm_loadu_si128(ra.as_ptr().add(off).cast());
                let wv = _mm256_set1_epi32(*wpack.get_unchecked(wi));
                wi += 1;
                let lo = _mm256_cvtepu8_epi16(_mm_unpacklo_epi8(xa, zero));
                let hi = _mm256_cvtepu8_epi16(_mm_unpackhi_epi8(xa, zero));
                acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, wv));
                acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, wv));
            }
        }
        _mm256_storeu_si256(row.as_mut_ptr().add(xb).cast(), acc_lo);
        _mm256_storeu_si256(row.as_mut_ptr().add(xb + 8).cast(), acc_hi);
    }

    /// Lane-parallel [`Requant::apply`][super::Requant::apply] over a
    /// whole plane: 32 accumulators per iteration, packed straight to
    /// `u8`. Bit-exact to the scalar definition — the biased sum is added
    /// in `i32` lanes, widened, multiplied in 64-bit lanes
    /// (`vpmuldq`), rounded with `(v + 2^(shift−1)) ≫ shift` (the form
    /// the scalar shift-pair identity equals), arithmetically shifted via
    /// the sign-bias trick (AVX2 has no 64-bit arithmetic shift), and
    /// truncated to `i32` before the `[0, 127]` clamp.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and
    /// [`Requant::vector_safe`][super::Requant::vector_safe] holds for
    /// the accumulator range of `acc` (the `i32` additions and the
    /// 64→32-bit truncation are exact only then). `acc` and `out` must
    /// have equal lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn requant_slice(rq: &super::Requant, acc: &[i32], out: &mut [u8]) {
        debug_assert_eq!(acc.len(), out.len());
        let bias = _mm256_set1_epi32(rq.bias);
        let mult = _mm256_set1_epi64x(rq.mult as i64);
        let rnd = _mm256_set1_epi64x(1i64 << (rq.shift - 1));
        let count = _mm_cvtsi32_si128(rq.shift as i32);
        let sign = _mm256_set1_epi64x(i64::MIN);
        let sign_shifted = _mm256_srl_epi64(sign, count);
        let low_idx = _mm256_set_epi32(0, 0, 0, 0, 6, 4, 2, 0);
        let zero = _mm256_setzero_si256();
        let qmax = _mm256_set1_epi32(super::QMAX);

        // One ymm of eight clamped i32 results.
        let quant8 = |v: __m256i| -> __m256i {
            let s = _mm256_add_epi32(v, bias);
            let halves = [
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(s)),
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256(s, 1)),
            ];
            let mut packed = [_mm_setzero_si128(); 2];
            for (p, &h64) in packed.iter_mut().zip(&halves) {
                let v = _mm256_add_epi64(_mm256_mul_epi32(h64, mult), rnd);
                // Arithmetic 64-bit shift: bias the sign bit, shift
                // logically, un-bias.
                let r = _mm256_sub_epi64(
                    _mm256_srl_epi64(_mm256_xor_si256(v, sign), count),
                    sign_shifted,
                );
                *p = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(r, low_idx));
            }
            let r32 = _mm256_set_m128i(packed[1], packed[0]);
            _mm256_min_epi32(_mm256_max_epi32(r32, zero), qmax)
        };

        let n32 = acc.len() / 32 * 32;
        let mut i = 0usize;
        while i < n32 {
            let q = [
                quant8(_mm256_loadu_si256(acc.as_ptr().add(i).cast())),
                quant8(_mm256_loadu_si256(acc.as_ptr().add(i + 8).cast())),
                quant8(_mm256_loadu_si256(acc.as_ptr().add(i + 16).cast())),
                quant8(_mm256_loadu_si256(acc.as_ptr().add(i + 24).cast())),
            ];
            // packus within 128-bit lanes, then permute the 64-bit
            // quarters back into linear order ([q0 q2 q1 q3]).
            let w0 = _mm256_permute4x64_epi64(_mm256_packus_epi32(q[0], q[1]), 0b1101_1000);
            let w1 = _mm256_permute4x64_epi64(_mm256_packus_epi32(q[2], q[3]), 0b1101_1000);
            let b = _mm256_permute4x64_epi64(_mm256_packus_epi16(w0, w1), 0b1101_1000);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), b);
            i += 32;
        }
        for j in n32..acc.len() {
            *out.get_unchecked_mut(j) = rq.apply(*acc.get_unchecked(j));
        }
    }
}

/// Quantizes an f32 activation slice to 7-bit `u8`
/// (`clamp(⌊v/scale + 0.5⌋, 0, 127)`).
///
/// # Panics
/// Panics on a length mismatch.
pub fn quantize_activations(src: &[f32], scale: f32, dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "quantize length mismatch");
    let inv = 1.0 / scale;
    for (o, &v) in dst.iter_mut().zip(src) {
        // Clamping in f32 before the cast keeps the conversion in range so
        // it vectorizes; NaN still collapses to 0 exactly like the previous
        // `as i32` saturating-cast formulation did.
        *o = (v * inv + 0.5).clamp(0.0, QMAX as f32) as u8;
    }
}

/// 2×2 max pooling over `u8` planes — max-pool commutes with the monotone
/// quantizer, so the quantized pipeline pools in the integer domain.
///
/// # Panics
/// Panics on odd input dimensions or mismatched buffer lengths.
pub fn maxpool2_u8_into(src: &[u8], c: usize, h: usize, w: usize, dst: &mut [u8]) {
    assert!(
        h.is_multiple_of(2) && w.is_multiple_of(2),
        "max-pool needs even dimensions"
    );
    assert_eq!(src.len(), c * h * w, "max-pool input length mismatch");
    assert_eq!(dst.len(), c * h * w / 4, "max-pool output length mismatch");
    let (oh, ow) = (h / 2, w / 2);
    for ci in 0..c {
        let plane = &src[ci * h * w..][..h * w];
        for y in 0..oh {
            let top = &plane[2 * y * w..][..w];
            let bot = &plane[(2 * y + 1) * w..][..w];
            let orow = &mut dst[(ci * oh + y) * ow..][..ow];
            for (o, (t, b)) in orow
                .iter_mut()
                .zip(top.chunks_exact(2).zip(bot.chunks_exact(2)))
            {
                *o = t[0].max(t[1]).max(b[0]).max(b[1]);
            }
        }
    }
}

/// Nearest-neighbour 2× upsampling over `u8` planes.
///
/// # Panics
/// Panics on mismatched buffer lengths.
pub fn upsample2_u8_into(src: &[u8], c: usize, h: usize, w: usize, dst: &mut [u8]) {
    assert_eq!(src.len(), c * h * w, "upsample input length mismatch");
    assert_eq!(dst.len(), c * h * w * 4, "upsample output length mismatch");
    let (oh, ow) = (h * 2, w * 2);
    for ci in 0..c {
        let plane = &src[ci * h * w..][..h * w];
        for y in 0..h {
            let srow = &plane[y * w..][..w];
            // Double horizontally into the even output row, then duplicate
            // it into the odd one with a straight copy.
            let rows = &mut dst[(ci * oh + 2 * y) * ow..][..2 * ow];
            let (even, odd) = rows.split_at_mut(ow);
            for (pair, &s) in even.chunks_exact_mut(2).zip(srow) {
                pair[0] = s;
                pair[1] = s;
            }
            odd.copy_from_slice(even);
        }
    }
}

/// The quantized NN-S: three [`QuantConv2d`]s in the paper's topology with
/// requantization between layers and an f32 epilogue (dequantize, bias,
/// sigmoid) on the final logits.
#[derive(Debug, Clone)]
pub struct QuantNnS {
    hidden: usize,
    scales: ActScales,
    conv1: QuantConv2d,
    rq1: Vec<Requant>,
    conv2: QuantConv2d,
    rq2: Vec<Requant>,
    /// conv3 over the `a1` half of the concat.
    conv3a: QuantConv2d,
    /// conv3 over the upsampled-`a2` half of the concat.
    conv3b: QuantConv2d,
    deq3a: f32,
    deq3b: f32,
    bias3: f32,
}

impl QuantNnS {
    /// Quantizes a trained NN-S, using its calibrated activation scales
    /// when present and the conservative weight-norm bound otherwise (so
    /// models deserialized from the pre-quantization format still run).
    pub fn from_nns(nns: &NnS) -> Self {
        let scales = nns
            .act_scales()
            .unwrap_or_else(|| ActScales::bound_from_nns(nns));
        let hidden = nns.hidden();
        let (c1, c2, c3) = nns.convs();
        let conv1 = QuantConv2d::from_conv(c1);
        let conv2 = QuantConv2d::from_conv(c2);
        let (_, b1) = c1.export_params();
        let (_, b2) = c2.export_params();
        let (w3, b3) = c3.export_params();
        let requants = |conv: &QuantConv2d, b: &[f32], s_in: f32, s_out: f32| -> Vec<Requant> {
            conv.w_scale()
                .iter()
                .zip(b)
                .map(|(&sw, &bias)| {
                    let acc_scale = (s_in * sw) as f64;
                    Requant::from_real(
                        acc_scale / s_out as f64,
                        (bias as f64 / acc_scale).round() as i32,
                    )
                })
                .collect()
        };
        let rq1 = requants(&conv1, &b1, scales.input, scales.a1);
        let rq2 = requants(&conv2, &b2, scales.a1, scales.a2);
        // conv3's input concatenates a1 (scale a1) with upsampled a2
        // (scale a2): split it into two half-convolutions so each half
        // dequantizes with its own exact scale.
        let half = hidden * 9;
        let conv3a = QuantConv2d::from_weights(hidden, 1, 3, &w3[..half]);
        let conv3b = QuantConv2d::from_weights(hidden, 1, 3, &w3[half..]);
        let deq3a = scales.a1 * conv3a.w_scale()[0];
        let deq3b = scales.a2 * conv3b.w_scale()[0];
        Self {
            hidden,
            scales,
            conv1,
            rq1,
            conv2,
            rq2,
            conv3a,
            conv3b,
            deq3a,
            deq3b,
            bias3: b3[0],
        }
    }

    /// Hidden feature-channel width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The activation scales this instance quantizes with.
    pub fn scales(&self) -> ActScales {
        self.scales
    }

    /// Quantized inference: the same sandwich-in, probability-map-out
    /// contract as [`NnS::infer`], on the int8 path.
    ///
    /// # Panics
    /// Panics on a wrong channel count or odd spatial dimensions.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.channels(),
            SANDWICH_CHANNELS,
            "NN-S expects the 3-channel sandwich input"
        );
        let (h, w) = (x.height(), x.width());
        assert!(h % 2 == 0 && w % 2 == 0, "max-pool needs even dimensions");
        let (hw, hid) = (h * w, self.hidden);
        let mut xq = SCRATCH_U8.take(SANDWICH_CHANNELS * hw);
        quantize_activations(x.as_slice(), self.scales.input, &mut xq);
        let mut a1 = SCRATCH_U8.take(hid * hw);
        self.conv1.forward_requant(&xq, h, w, &self.rq1, &mut a1);
        let mut d = SCRATCH_U8.take(hid * hw / 4);
        maxpool2_u8_into(&a1, hid, h, w, &mut d);
        let mut a2 = SCRATCH_U8.take(hid * hw / 4);
        self.conv2
            .forward_requant(&d, h / 2, w / 2, &self.rq2, &mut a2);
        let mut up = SCRATCH_U8.take(hid * hw);
        upsample2_u8_into(&a2, hid, h / 2, w / 2, &mut up);
        let mut acc_a = SCRATCH_I32.take(hw);
        self.conv3a.forward_i32(&a1, h, w, &mut acc_a);
        let mut acc_b = SCRATCH_I32.take(hw);
        self.conv3b.forward_i32(&up, h, w, &mut acc_b);
        let mut out = vec![0.0f32; hw];
        for ((o, &a), &b) in out.iter_mut().zip(acc_a.iter()).zip(acc_b.iter()) {
            *o = a as f32 * self.deq3a + b as f32 * self.deq3b + self.bias3;
        }
        sigmoid_in_place(&mut out);
        Tensor::from_vec(1, h, w, out)
    }
}

/// Naive integer kernels the SIMD paths are verified against, and the
/// exported portable entry point for pinning the fallback on machines
/// where the dispatcher would pick AVX2.
pub mod reference {
    use super::{QuantConv2d, Requant};

    /// Naive triple-loop `i32` forward pass — the ground truth of
    /// [`QuantConv2d::forward_i32`].
    ///
    /// # Panics
    /// Panics on an input length mismatch.
    pub fn forward_i32(conv: &QuantConv2d, x: &[u8], h: usize, w: usize) -> Vec<i32> {
        let (cin, cout, k) = (conv.cin(), conv.cout(), conv.kernel_size());
        assert_eq!(x.len(), cin * h * w, "conv input length mismatch");
        let pad = (k / 2) as i32;
        let wq = conv.weights();
        let mut out = vec![0i32; cout * h * w];
        for co in 0..cout {
            for y in 0..h {
                for xp in 0..w {
                    let mut acc = 0i32;
                    for ci in 0..cin {
                        for ky in 0..k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            for kx in 0..k {
                                let sx = xp as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                let wi = ((co * cin + ci) * k + ky) * k + kx;
                                let sv = x[(ci * h + sy as usize) * w + sx as usize];
                                acc += wq[wi] as i32 * sv as i32;
                            }
                        }
                    }
                    out[(co * h + y) * w + xp] = acc;
                }
            }
        }
        out
    }

    /// Naive requantized forward pass — the ground truth of
    /// [`QuantConv2d::forward_requant`].
    ///
    /// # Panics
    /// Panics on a length mismatch or `rq.len() != cout`.
    pub fn forward_requant(
        conv: &QuantConv2d,
        x: &[u8],
        h: usize,
        w: usize,
        rq: &[Requant],
    ) -> Vec<u8> {
        assert_eq!(rq.len(), conv.cout(), "one requant per output channel");
        let acc = forward_i32(conv, x, h, w);
        acc.chunks(h * w)
            .zip(rq)
            .flat_map(|(plane, r)| plane.iter().map(|&a| r.apply(a)))
            .collect()
    }

    /// Portable (non-SIMD) forward pass — bit-exact with both the naive
    /// reference and the AVX2 dispatcher; exported so the equivalence
    /// tests pin the fallback even on AVX2 machines.
    ///
    /// # Panics
    /// Panics on an input length mismatch.
    pub fn forward_i32_portable(conv: &QuantConv2d, x: &[u8], h: usize, w: usize) -> Vec<i32> {
        let (cin, cout, k) = (conv.cin(), conv.cout(), conv.kernel_size());
        assert_eq!(x.len(), cin * h * w, "conv input length mismatch");
        let pad = k / 2;
        let mut out = vec![0i32; cout * h * w];
        for co in 0..cout {
            let plane = &mut out[co * h * w..][..h * w];
            for y in 0..h {
                let mut entries: Vec<(&[u8], &[i8])> = Vec::new();
                for ci in 0..cin {
                    for ky in 0..k {
                        let sy = y as isize + ky as isize - pad as isize;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        entries.push((
                            &x[(ci * h + sy as usize) * w..][..w],
                            &conv.weights()[((co * cin + ci) * k + ky) * k..][..k],
                        ));
                    }
                }
                super::portable_row(&entries, pad, w, &mut plane[y * w..][..w]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_input(cin: usize, h: usize, w: usize, seed: u64) -> Vec<u8> {
        (0..cin * h * w)
            .map(|i| (vrd_video::texture::hash2(i as i64, 7, seed) % 128) as u8)
            .collect()
    }

    #[test]
    fn forward_matches_reference_hd_width() {
        // Wide enough for the AVX2 interior path plus scalar edges/tail.
        let w: Vec<f32> = (0..8 * 3 * 9)
            .map(|i| ((i as f32 * 0.37).sin()) * 0.2)
            .collect();
        let conv = QuantConv2d::from_weights(3, 8, 3, &w);
        let x = test_input(3, 12, 61, 3);
        let mut fast = vec![0i32; 8 * 12 * 61];
        conv.forward_i32(&x, 12, 61, &mut fast);
        assert_eq!(fast, reference::forward_i32(&conv, &x, 12, 61));
        assert_eq!(fast, reference::forward_i32_portable(&conv, &x, 12, 61));
    }

    #[test]
    fn requant_rounds_and_saturates() {
        let rq = Requant::from_real(0.5, 0);
        assert_eq!(rq.apply(0), 0);
        assert_eq!(rq.apply(2), 1);
        assert_eq!(rq.apply(3), 2); // round half up
        assert_eq!(rq.apply(-5), 0); // ReLU clamp
        assert_eq!(rq.apply(1000), 127); // saturation
        assert_eq!(rq.apply(i32::MAX), 127);
        assert_eq!(rq.apply(i32::MIN), 0);
        let tiny = Requant::from_real(1e-12, 0);
        assert_eq!(tiny.apply(i32::MAX), 0);
        let biased = Requant::from_real(1.0, 10);
        assert_eq!(biased.apply(-10), 0);
        assert_eq!(biased.apply(90), 100);
    }

    #[test]
    fn requant_decomposition_is_accurate() {
        for &m in &[0.5, 0.001, 0.9999, 1.0 / 3.0, 2.5e-5, 7.3] {
            let rq = Requant::from_real(m, 0);
            for &acc in &[1, 100, 12345, 1_000_000] {
                let exact = (acc as f64 * m).round() as i64;
                let got = {
                    let v = acc as i128 * rq.mult as i128;
                    (v + (1i128 << (rq.shift - 1))) >> rq.shift
                } as i64;
                assert!(
                    (exact - got).abs() <= 1,
                    "m={m} acc={acc}: exact {exact} vs fixed-point {got}"
                );
            }
        }
    }

    #[test]
    fn quantized_pool_and_upsample_commute_with_f32() {
        use crate::layers::{maxpool2_into, upsample2_into};
        let src = test_input(2, 6, 8, 11);
        let srcf: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let mut dq = vec![0u8; 2 * 3 * 4];
        let mut df = vec![0.0f32; 2 * 3 * 4];
        maxpool2_u8_into(&src, 2, 6, 8, &mut dq);
        maxpool2_into(&srcf, 2, 6, 8, &mut df);
        assert_eq!(dq.iter().map(|&v| v as f32).collect::<Vec<_>>(), df);
        let mut uq = vec![0u8; 2 * 6 * 8];
        let mut uf = vec![0.0f32; 2 * 6 * 8];
        upsample2_u8_into(&dq, 2, 3, 4, &mut uq);
        upsample2_into(&df, 2, 3, 4, &mut uf);
        assert_eq!(uq.iter().map(|&v| v as f32).collect::<Vec<_>>(), uf);
    }

    #[test]
    fn quantized_inference_tracks_f32() {
        // A trained-ish NnS (seeded init is fine: the comparison is
        // relative) must produce probability maps close to the f32 path.
        let mut nns = NnS::new(6, 42);
        let x = Tensor::from_vec(
            3,
            16,
            24,
            (0..3 * 16 * 24)
                .map(|i| match i % 5 {
                    0 | 3 => 0.0,
                    1 => 0.5,
                    _ => 1.0,
                })
                .collect(),
        );
        nns.calibrate(&[&x]);
        let f = nns.infer(&x);
        let q = nns.infer_quantized(&x);
        let max_err = f
            .as_slice()
            .iter()
            .zip(q.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "quantized path drifted: max err {max_err}");
    }

    #[test]
    fn uncalibrated_models_fall_back_to_weight_bounds() {
        let nns = NnS::new(4, 7);
        assert!(nns.act_scales().is_none());
        let q = nns.quantize();
        let s = q.scales();
        assert!(s.input > 0.0 && s.a1 > 0.0 && s.a2 > 0.0);
        // The bound must dominate any actual activation.
        let x = Tensor::from_vec(3, 8, 8, vec![1.0; 3 * 8 * 8]);
        let y = q.infer(&x);
        assert!(y.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn weight_quantization_is_per_output_channel() {
        // Two output channels with very different ranges must not share a
        // scale: the small channel keeps its resolution.
        let mut w = vec![0.0f32; 2 * 9];
        w[0] = 10.0; // channel 0: huge
        w[9] = 0.01; // channel 1: tiny
        let conv = QuantConv2d::from_weights(1, 2, 3, &w);
        assert_eq!(conv.weights()[0], 127);
        assert_eq!(conv.weights()[9], 127);
        assert!(conv.w_scale()[0] > conv.w_scale()[1]);
    }

    #[test]
    fn quantize_activations_rounds_and_clamps() {
        let mut out = vec![0u8; 5];
        quantize_activations(&[0.0, 0.5, 1.0, 2.0, -1.0], 1.0 / 127.0, &mut out);
        assert_eq!(out, vec![0, 64, 127, 127, 0]);
    }
}
