//! Save/load trained NN-S models.
//!
//! A small, self-contained little-endian binary format (no external
//! serialisation crates): magic, version, hidden width, then each
//! convolution's weights and biases. Training NN-S takes seconds, but a
//! deployed pipeline wants the exact shipped weights — and reproducibility
//! audits want byte-stable artefacts.

use crate::conv::Conv2d;
use crate::nns::{NnS, SANDWICH_CHANNELS};
use crate::quant::ActScales;

/// Magic bytes of a serialised NN-S model.
pub const MAGIC: [u8; 4] = *b"VRNS";
/// Format version.
pub const VERSION: u8 = 1;
/// Magic bytes of the optional calibration trailer: activation scales for
/// the quantized inference path, appended after the f32 parameters so
/// pre-quantization files (which simply end after conv3) keep loading.
pub const SCALES_MAGIC: [u8; 4] = *b"QSC1";

fn put_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f32s(buf: &[u8], pos: &mut usize) -> Result<Vec<f32>, String> {
    let n = u32::from_le_bytes(
        buf.get(*pos..*pos + 4)
            .ok_or("truncated length")?
            .try_into()
            .expect("slice of 4"),
    ) as usize;
    *pos += 4;
    let end = pos
        .checked_add(n * 4)
        .filter(|&e| e <= buf.len())
        .ok_or("truncated parameter block")?;
    let vals = buf[*pos..end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect();
    *pos = end;
    Ok(vals)
}

fn put_conv(out: &mut Vec<u8>, conv: &Conv2d) {
    let (w, b) = conv.export_params();
    put_f32s(out, &w);
    put_f32s(out, &b);
}

fn get_conv(
    buf: &[u8],
    pos: &mut usize,
    cin: usize,
    cout: usize,
    k: usize,
) -> Result<Conv2d, String> {
    let w = get_f32s(buf, pos)?;
    let b = get_f32s(buf, pos)?;
    let mut conv = Conv2d::new(cin, cout, k, 0);
    conv.import_params(&w, &b)
        .map_err(|e| format!("conv {cin}x{cout}: {e}"))?;
    Ok(conv)
}

/// Serialises a trained NN-S to bytes.
///
/// # Example
/// ```
/// use vrd_nn::{load_nns, save_nns, NnS, Tensor};
///
/// # fn main() -> Result<(), String> {
/// let model = NnS::new(4, 7);
/// let bytes = save_nns(&model);
/// let restored = load_nns(&bytes)?;
/// let x = Tensor::zeros(3, 8, 8);
/// assert_eq!(model.infer(&x).as_slice(), restored.infer(&x).as_slice());
/// # Ok(())
/// # }
/// ```
pub fn save_nns(model: &NnS) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(model.hidden() as u32).to_le_bytes());
    let (c1, c2, c3) = model.convs();
    put_conv(&mut out, c1);
    put_conv(&mut out, c2);
    put_conv(&mut out, c3);
    if let Some(s) = model.act_scales() {
        out.extend_from_slice(&SCALES_MAGIC);
        out.extend_from_slice(&s.input.to_le_bytes());
        out.extend_from_slice(&s.a1.to_le_bytes());
        out.extend_from_slice(&s.a2.to_le_bytes());
    }
    out
}

/// Deserialises an NN-S from bytes produced by [`save_nns`].
///
/// # Errors
/// Returns a message on bad magic/version, truncation or shape mismatch.
pub fn load_nns(buf: &[u8]) -> Result<NnS, String> {
    if buf.len() < 9 || buf[..4] != MAGIC {
        return Err("not an NN-S model (bad magic)".into());
    }
    if buf[4] != VERSION {
        return Err(format!("unsupported model version {}", buf[4]));
    }
    let hidden = u32::from_le_bytes(buf[5..9].try_into().expect("slice of 4")) as usize;
    if hidden == 0 || hidden > 4096 {
        return Err(format!("implausible hidden width {hidden}"));
    }
    let mut pos = 9usize;
    let c1 = get_conv(buf, &mut pos, SANDWICH_CHANNELS, hidden, 3)?;
    let c2 = get_conv(buf, &mut pos, hidden, hidden, 3)?;
    let c3 = get_conv(buf, &mut pos, 2 * hidden, 1, 3)?;
    let mut model = NnS::from_convs(hidden, c1, c2, c3);
    let rest = &buf[pos..];
    if rest.is_empty() {
        // Pre-quantization file: no calibration trailer.
        return Ok(model);
    }
    if rest.len() != 16 || rest[..4] != SCALES_MAGIC {
        return Err(format!("{} trailing bytes", rest.len()));
    }
    let f = |i: usize| f32::from_le_bytes(rest[4 + 4 * i..8 + 4 * i].try_into().expect("4 bytes"));
    let scales = ActScales {
        input: f(0),
        a1: f(1),
        a2: f(2),
    };
    scales
        .validate()
        .map_err(|e| format!("calibration trailer: {e}"))?;
    model.set_act_scales(scales);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_preserves_inference() {
        let mut model = NnS::new(4, 99);
        // Nudge it away from the raw init so the test is not vacuous.
        let x = Tensor::from_vec(3, 8, 8, (0..192).map(|v| v as f32 / 192.0).collect());
        let t = Tensor::zeros(1, 8, 8);
        model.zero_grad();
        model.train_step(&x, &t);
        model.apply_grads(0.1, 0.9, 1);

        let bytes = save_nns(&model);
        let loaded = load_nns(&bytes).expect("loads");
        assert_eq!(loaded.n_params(), model.n_params());
        assert_eq!(model.infer(&x).as_slice(), loaded.infer(&x).as_slice());
    }

    #[test]
    fn save_is_deterministic() {
        let model = NnS::new(8, 7);
        assert_eq!(save_nns(&model), save_nns(&model));
    }

    #[test]
    fn roundtrips_calibration_scales() {
        let mut model = NnS::new(4, 11);
        let x = Tensor::from_vec(3, 8, 8, (0..192).map(|v| v as f32 / 192.0).collect());
        model.calibrate(&[&x]);
        let scales = model.act_scales().expect("calibrated");
        let bytes = save_nns(&model);
        let loaded = load_nns(&bytes).expect("loads");
        assert_eq!(loaded.act_scales(), Some(scales));
        // The quantized twin is byte-for-byte reproducible after reload.
        assert_eq!(
            model.quantize().infer(&x).as_slice(),
            loaded.quantize().infer(&x).as_slice()
        );
    }

    #[test]
    fn old_format_without_trailer_still_loads() {
        // A model never calibrated serialises to the original format and a
        // calibrated model's bytes are exactly that plus the 16B trailer.
        let mut model = NnS::new(4, 5);
        let plain = save_nns(&model);
        let loaded = load_nns(&plain).expect("pre-quantization format loads");
        assert!(loaded.act_scales().is_none());
        let x = Tensor::from_vec(3, 8, 8, (0..192).map(|v| v as f32 / 250.0).collect());
        model.calibrate(&[&x]);
        let with_trailer = save_nns(&model);
        assert_eq!(with_trailer.len(), plain.len() + 16);
        assert_eq!(&with_trailer[..plain.len()], &plain[..]);
    }

    #[test]
    fn rejects_corrupt_trailer() {
        let mut model = NnS::new(4, 5);
        let x = Tensor::from_vec(3, 8, 8, vec![0.5; 192]);
        model.calibrate(&[&x]);
        let good = save_nns(&model);
        let mut bad_magic = good.clone();
        let n = bad_magic.len();
        bad_magic[n - 16] = b'X';
        assert!(load_nns(&bad_magic).is_err());
        let mut short = good.clone();
        short.truncate(n - 1);
        assert!(load_nns(&short).is_err());
        let mut bad_scale = good;
        // input scale := -1.0
        bad_scale[n - 12..n - 8].copy_from_slice(&(-1.0f32).to_le_bytes());
        assert!(load_nns(&bad_scale).is_err());
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(load_nns(b"garbage").is_err());
        let mut bytes = save_nns(&NnS::new(4, 1));
        bytes[4] = 99; // bad version
        assert!(load_nns(&bytes).is_err());
        let mut truncated = save_nns(&NnS::new(4, 1));
        truncated.truncate(truncated.len() / 2);
        assert!(load_nns(&truncated).is_err());
        let mut trailing = save_nns(&NnS::new(4, 1));
        trailing.push(0);
        assert!(load_nns(&trailing).is_err());
    }
}
