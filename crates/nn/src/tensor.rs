//! A minimal CHW float tensor.

use vrd_video::{Seg2Plane, SegMask};

/// A dense `channels × height × width` tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != c * h * w` or any dimension is zero.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        assert_eq!(data.len(), c * h * w, "tensor buffer size mismatch");
        Self { c, h, w, data }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (channel-major, then row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Sets the value at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// One channel as a slice.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn channel(&self, c: usize) -> &[f32] {
        assert!(c < self.c, "channel out of range");
        &self.data[c * self.h * self.w..(c + 1) * self.h * self.w]
    }

    /// Stacks single-channel planes into a multi-channel tensor.
    ///
    /// # Panics
    /// Panics if `planes` is empty or the planes disagree in size.
    pub fn stack(planes: &[Tensor]) -> Tensor {
        assert!(!planes.is_empty(), "cannot stack zero planes");
        let (h, w) = (planes[0].h, planes[0].w);
        let c: usize = planes.iter().map(|p| p.c).sum();
        let mut data = Vec::with_capacity(c * h * w);
        for p in planes {
            assert_eq!((p.h, p.w), (h, w), "stacked planes must share size");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(c, h, w, data)
    }

    /// Converts a binary mask into a 1-channel 0.0/1.0 tensor via the
    /// packed word-at-a-time expansion.
    pub fn from_mask(mask: &SegMask) -> Tensor {
        let mut data = vec![0.0; mask.height() * mask.width()];
        mask.expand_f32_into(&mut data);
        Tensor::from_vec(1, mask.height(), mask.width(), data)
    }

    /// Converts a 2-bit reconstruction plane into a 1-channel tensor with
    /// the mean-filter values 0.0 / 0.5 / 1.0, expanding the two bitplanes
    /// word-at-a-time.
    pub fn from_seg2(plane: &Seg2Plane) -> Tensor {
        let mut data = vec![0.0; plane.height() * plane.width()];
        plane.expand_f32_into(&mut data);
        Tensor::from_vec(1, plane.height(), plane.width(), data)
    }

    /// Thresholds a 1-channel tensor of probabilities into a mask, packing
    /// bits directly without an intermediate byte buffer.
    ///
    /// # Panics
    /// Panics if the tensor has more than one channel.
    pub fn to_mask(&self, threshold: f32) -> SegMask {
        assert_eq!(self.c, 1, "to_mask needs a single-channel tensor");
        SegMask::from_bits(self.w, self.h, self.data.iter().map(|&v| v > threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_video::Rect;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), 7.5);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
        assert_eq!(t.channel(1)[2 * 4 + 3], 7.5);
    }

    #[test]
    fn stack_concatenates_channels() {
        let a = Tensor::from_vec(1, 2, 2, vec![1.0; 4]);
        let b = Tensor::from_vec(2, 2, 2, vec![2.0; 8]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.get(0, 0, 0), 1.0);
        assert_eq!(s.get(1, 1, 1), 2.0);
        assert_eq!(s.get(2, 0, 1), 2.0);
    }

    #[test]
    fn mask_conversions() {
        let mut m = SegMask::new(4, 4);
        m.fill_rect(Rect::new(1, 1, 3, 3));
        let t = Tensor::from_mask(&m);
        assert_eq!(t.get(0, 1, 1), 1.0);
        assert_eq!(t.get(0, 0, 0), 0.0);
        let back = t.to_mask(0.5);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "tensor buffer size mismatch")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(1, 2, 2, vec![0.0; 5]);
    }
}
