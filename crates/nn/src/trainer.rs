//! Minibatch SGD training loop for NN-S.
//!
//! The paper trains NN-S for **two epochs** on the training split's
//! reconstructed B-frames with ground-truth labels (§III-B); these defaults
//! reproduce that recipe.

use crate::nns::NnS;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The optimiser driving the weight updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with momentum (the calibrated default).
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// Adam (Kingma & Ba) — converges in fewer steps on the refinement
    /// task, matching the paper's Keras setup more closely.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabiliser.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the standard hyper-parameters.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// One training sample: sandwich input and ground-truth mask target.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The 3-channel sandwich input.
    pub input: Tensor,
    /// The 1-channel 0/1 target.
    pub target: Tensor,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data (paper: 2).
    pub epochs: usize,
    /// The optimiser and its hyper-parameters.
    pub optimizer: Optimizer,
    /// Minibatch size.
    pub batch: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for per-sample gradient computation; `0` means use
    /// every available core. The trained weights are identical for every
    /// setting (see [`train`]).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 2,
            optimizer: Optimizer::Sgd {
                lr: 0.4,
                momentum: 0.9,
            },
            batch: 4,
            seed: 0x7a41,
            threads: 0,
        }
    }
}

/// Trains `model` on `samples`; returns the mean loss of each epoch.
///
/// Each minibatch computes per-sample gradients independently (in parallel
/// across `cfg.threads` workers) and reduces them in sample order, so the
/// trained weights are **bit-identical for every thread count** — the
/// parallelism only changes wall-clock time, never the result.
///
/// # Panics
/// Panics if `samples` is empty or `cfg.batch == 0`.
pub fn train(model: &mut NnS, samples: &[Sample], cfg: &TrainConfig) -> Vec<f32> {
    assert!(!samples.is_empty(), "cannot train on zero samples");
    assert!(cfg.batch > 0, "batch size must be non-zero");
    let threads = if cfg.threads == 0 {
        vrd_runtime::max_threads()
    } else {
        cfg.threads
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        for chunk in order.chunks(cfg.batch) {
            model.zero_grad();
            // Per-sample gradients in parallel: each worker clones the
            // (zero-gradient) model, runs one forward/backward, and hands
            // its gradient buffers back for an in-order reduction.
            let shared: &NnS = model;
            let per_sample = vrd_runtime::parallel_map_with(chunk, threads, |&i| {
                let mut worker = shared.clone();
                let loss = worker.train_step(&samples[i].input, &samples[i].target);
                (loss, worker)
            });
            for (loss, worker) in &per_sample {
                epoch_loss += loss;
                model.accumulate_grads_from(worker);
            }
            step += 1;
            match cfg.optimizer {
                Optimizer::Sgd { lr, momentum } => model.apply_grads(lr, momentum, chunk.len()),
                Optimizer::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                } => model.apply_grads_adam(lr, beta1, beta2, eps, step, chunk.len()),
            }
        }
        history.push(epoch_loss / samples.len() as f32);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Builds a toy refinement corpus: the target is the middle channel
    /// cleaned up (a square), the input's middle channel is the square
    /// corrupted by blocky noise.
    fn toy_samples(n: usize) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n)
            .map(|_| {
                let mut input = Tensor::zeros(3, 8, 8);
                let mut target = Tensor::zeros(1, 8, 8);
                let ox = rng.random_range(0..4usize);
                let oy = rng.random_range(0..4usize);
                for y in 0..8 {
                    for x in 0..8 {
                        let inside = (ox..ox + 4).contains(&x) && (oy..oy + 4).contains(&y);
                        let v = f32::from(inside);
                        target.set(0, y, x, v);
                        input.set(0, y, x, v);
                        input.set(2, y, x, v);
                        // Corrupt the middle channel near the boundary.
                        let noisy = if rng.random_range(0.0..1.0) < 0.2 {
                            1.0 - v
                        } else {
                            v
                        };
                        input.set(1, y, x, noisy);
                    }
                }
                Sample { input, target }
            })
            .collect()
    }

    #[test]
    fn two_epochs_reduce_loss() {
        let samples = toy_samples(32);
        let mut model = NnS::new(4, 5);
        let history = train(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        assert_eq!(history.len(), 4);
        assert!(
            history.last().unwrap() < &(history[0] * 0.8),
            "loss history did not fall: {history:?}"
        );
    }

    #[test]
    fn adam_also_reduces_loss() {
        let samples = toy_samples(32);
        let mut model = NnS::new(4, 5);
        let history = train(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 4,
                optimizer: Optimizer::adam(0.05),
                ..TrainConfig::default()
            },
        );
        assert!(
            history.last().unwrap() < &(history[0] * 0.8),
            "Adam loss did not fall: {history:?}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples(8);
        let cfg = TrainConfig::default();
        let mut m1 = NnS::new(4, 5);
        let mut m2 = NnS::new(4, 5);
        let h1 = train(&mut m1, &samples, &cfg);
        let h2 = train(&mut m2, &samples, &cfg);
        assert_eq!(h1, h2);
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        let samples = toy_samples(16);
        let weight_bits = |model: &NnS| -> Vec<Vec<u32>> {
            let (c1, c2, c3) = model.convs();
            [c1, c2, c3]
                .iter()
                .flat_map(|c| {
                    let (w, b) = c.export_params();
                    [w, b]
                })
                .map(|v| v.iter().map(|f| f.to_bits()).collect())
                .collect()
        };
        let mut baseline = NnS::new(4, 5);
        let base_hist = train(
            &mut baseline,
            &samples,
            &TrainConfig {
                threads: 1,
                ..TrainConfig::default()
            },
        );
        let base_bits = weight_bits(&baseline);
        for threads in [2, 3, 8] {
            let mut model = NnS::new(4, 5);
            let hist = train(
                &mut model,
                &samples,
                &TrainConfig {
                    threads,
                    ..TrainConfig::default()
                },
            );
            assert_eq!(hist, base_hist, "loss history differs at {threads} threads");
            assert_eq!(
                weight_bits(&model),
                base_bits,
                "trained weights differ at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn rejects_empty_corpus() {
        let mut model = NnS::new(4, 0);
        let _ = train(&mut model, &[], &TrainConfig::default());
    }
}
