//! Property tests pinning the optimised convolution kernels to the naive
//! reference (`vrd_nn::conv::reference`) across random shapes, and the
//! trainer's thread-count invariance.
//!
//! The issue's acceptance bar is agreement within `1e-4`; the kernels are
//! designed to be bit-exact (identical per-element accumulation order), so
//! the assertions here are mostly exact equality — strictly stronger.

use proptest::prelude::*;
use vrd_nn::conv::{reference, Conv2d};
use vrd_nn::{train, NnS, Sample, Tensor, TrainConfig};

/// Random conv shape: (cin, cout, k, h, w).
fn arb_shape() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    (1usize..4, 1usize..5, 0usize..3, 1usize..12, 1usize..14)
        .prop_map(|(cin, cout, khalf, h, w)| (cin, cout, 2 * khalf + 1, h, w))
}

/// Pseudo-random but deterministic tensor data derived from a seed.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as f32 + 1.0) * (seed % 97 + 1) as f32;
            (x * 0.618_034).sin()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_matches_reference(shape in arb_shape(), seed in 0u64..1_000_000) {
        let (cin, cout, k, h, w) = shape;
        let conv = Conv2d::new(cin, cout, k, seed);
        let x = Tensor::from_vec(cin, h, w, fill(cin * h * w, seed));
        let fast = conv.forward_inference(&x);
        let naive = reference::forward(&conv, &x);
        prop_assert_eq!(fast.as_slice(), naive.as_slice());
    }

    #[test]
    fn backward_matches_reference(shape in arb_shape(), seed in 0u64..1_000_000) {
        let (cin, cout, k, h, w) = shape;
        let mut conv = Conv2d::new(cin, cout, k, seed);
        let x = Tensor::from_vec(cin, h, w, fill(cin * h * w, seed));
        let gout = Tensor::from_vec(cout, h, w, fill(cout * h * w, seed ^ 0xabcd));
        let _ = conv.forward(&x);
        conv.zero_grad();
        let gin = conv.backward(&gout);
        let (gin_ref, gw_ref, gb_ref) = reference::backward(&conv, &x, &gout);
        prop_assert_eq!(gin.as_slice(), gin_ref.as_slice());
        let (gw, gb) = conv.grads();
        prop_assert_eq!(gw, &gw_ref[..]);
        prop_assert_eq!(gb, &gb_ref[..]);
    }

    #[test]
    fn backward_handles_zero_heavy_gradients(
        shape in arb_shape(),
        seed in 0u64..1_000_000,
        keep_every in 2usize..8,
    ) {
        // Gradients arriving through ReLU masks are mostly zero; the
        // optimised backward keeps a row-granular sparse fast path. Pin
        // that it never changes the result — including fully-zero inputs.
        let (cin, cout, k, h, w) = shape;
        let mut conv = Conv2d::new(cin, cout, k, seed);
        let x = Tensor::from_vec(cin, h, w, fill(cin * h * w, seed));
        let mut g = fill(cout * h * w, seed ^ 0x5eed);
        for (i, v) in g.iter_mut().enumerate() {
            if i % keep_every != 0 {
                *v = 0.0;
            }
        }
        // Zero out whole rows too, so the row-skip path is exercised.
        for row in g.chunks_mut(w).step_by(2) {
            row.fill(0.0);
        }
        let gout = Tensor::from_vec(cout, h, w, g);
        let _ = conv.forward(&x);
        conv.zero_grad();
        let gin = conv.backward(&gout);
        let (gin_ref, gw_ref, gb_ref) = reference::backward(&conv, &x, &gout);
        prop_assert_eq!(gin.as_slice(), gin_ref.as_slice());
        let (gw, gb) = conv.grads();
        prop_assert_eq!(gw, &gw_ref[..]);
        prop_assert_eq!(gb, &gb_ref[..]);
    }

    #[test]
    fn inference_matches_training_forward(shape in arb_shape(), seed in 0u64..1_000_000) {
        let (cin, cout, k, h, w) = shape;
        let mut conv = Conv2d::new(cin, cout, k, seed);
        let x = Tensor::from_vec(cin, h, w, fill(cin * h * w, seed ^ 0x77));
        let trained = conv.forward(&x);
        let inferred = conv.forward_inference(&x);
        prop_assert_eq!(trained.as_slice(), inferred.as_slice());
    }
}

/// Small random training corpus for the determinism property.
fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let s = seed.wrapping_add(i as u64);
            Sample {
                input: Tensor::from_vec(3, 8, 8, fill(3 * 64, s)),
                target: Tensor::from_vec(
                    1,
                    8,
                    8,
                    fill(64, s ^ 0xf00d)
                        .iter()
                        .map(|v| f32::from(*v > 0.0))
                        .collect(),
                ),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn train_is_bit_deterministic_across_thread_counts(seed in 0u64..1_000_000) {
        let samples = toy_samples(12, seed);
        let run = |threads: usize| -> (Vec<f32>, Vec<u32>) {
            let mut model = NnS::new(4, seed ^ 0x42);
            let hist = train(
                &mut model,
                &samples,
                &TrainConfig { threads, ..TrainConfig::default() },
            );
            let (c1, c2, c3) = model.convs();
            let bits = [c1, c2, c3]
                .iter()
                .flat_map(|c| {
                    let (w, b) = c.export_params();
                    w.into_iter().chain(b)
                })
                .map(f32::to_bits)
                .collect();
            (hist, bits)
        };
        let base = run(1);
        for threads in [2, 4, 7] {
            let other = run(threads);
            prop_assert_eq!(&base.0, &other.0, "loss history differs at {} threads", threads);
            prop_assert_eq!(&base.1, &other.1, "weights differ at {} threads", threads);
        }
    }
}
