//! Property tests pinning the optimised feature-warp kernel to the naive
//! reference (`vrd_nn::featwarp::reference`) bit-exactly across random
//! frame geometries, feature strides, block placements (including
//! unaligned origins and blocks straddling the frame edge) and motion
//! vectors (including wildly out-of-range displacements that exercise the
//! edge clamp), with one and two references.

use proptest::prelude::*;
use vrd_nn::featwarp::{reference, warp_block, FeatureMap, WarpSource};
use vrd_nn::largenet::NNL_HEAD_FRACTION;
use vrd_nn::{LargeNet, LargeNetProfile, FEATURE_CHANNELS, FEATURE_STRIDE};
use vrd_video::{Rect, SegMask};

/// Deterministic pseudo-random feature values (finite, mixed sign).
fn fill_map(m: &mut FeatureMap, seed: u64) {
    for (i, v) in m.tensor_mut().as_mut_slice().iter_mut().enumerate() {
        let x = (i as f32 + 1.0) * ((seed % 89 + 1) as f32);
        *v = (x * 0.618_034).sin() * 3.0;
    }
}

/// Random geometry: (frame_w, frame_h, stride, channels).
///
/// Strides include non-powers-of-two (so the pixel→feature scaling is a
/// rounding f32 division) and frame sizes include non-stride multiples
/// (ragged last cells). Widths run past 64 so feature rows straddle the
/// word boundaries the packed masks care about downstream.
fn arb_geom() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (8usize..140, 8usize..72, 0usize..5, 1usize..6)
        .prop_map(|(w, h, si, ch)| (w, h, [2usize, 3, 4, 5, 8][si], ch))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn single_reference_matches(
        geom in arb_geom(),
        seed in 0u64..1_000_000,
        dst in (0usize..140, 0usize..72),
        block in (0usize..3).prop_map(|i| [8usize, 16, 24][i]),
        mv in (-2000i32..2000, -2000i32..2000),
    ) {
        let (w, h, stride, ch) = geom;
        let mut src = FeatureMap::zeros(w, h, stride, ch);
        fill_map(&mut src, seed);
        let mut fast = FeatureMap::zeros(w, h, stride, ch);
        let mut naive = FeatureMap::zeros(w, h, stride, ch);
        let s = WarpSource { feat: &src, dx: mv.0, dy: mv.1 };
        warp_block(&mut fast, dst.0, dst.1, block, s, None);
        reference::warp_block(&mut naive, dst.0, dst.1, block, s, None);
        prop_assert_eq!(fast.tensor().as_slice(), naive.tensor().as_slice());
    }

    #[test]
    fn two_references_match(
        geom in arb_geom(),
        seed in 0u64..1_000_000,
        dst in (0usize..140, 0usize..72),
        mv0 in (-400i32..400, -400i32..400),
        mv1 in (-400i32..400, -400i32..400),
    ) {
        let (w, h, stride, ch) = geom;
        let mut a = FeatureMap::zeros(w, h, stride, ch);
        let mut b = FeatureMap::zeros(w, h, stride, ch);
        fill_map(&mut a, seed);
        fill_map(&mut b, seed ^ 0x5a5a);
        let mut fast = FeatureMap::zeros(w, h, stride, ch);
        let mut naive = FeatureMap::zeros(w, h, stride, ch);
        let first = WarpSource { feat: &a, dx: mv0.0, dy: mv0.1 };
        let second = WarpSource { feat: &b, dx: mv1.0, dy: mv1.1 };
        warp_block(&mut fast, dst.0, dst.1, 16, first, Some(second));
        reference::warp_block(&mut naive, dst.0, dst.1, 16, first, Some(second));
        prop_assert_eq!(fast.tensor().as_slice(), naive.tensor().as_slice());
    }

    #[test]
    fn whole_frame_tiling_matches(
        seed in 0u64..1_000_000,
        mvs_seed in 0u64..1_000_000,
    ) {
        // Tile a whole (word-straddling, 130-px-wide) frame block by block
        // with per-block MVs, as FeatPropTask does, and compare the full
        // resulting maps.
        let (w, h, block) = (130usize, 52usize, 16usize);
        let mut src = FeatureMap::zeros(w, h, FEATURE_STRIDE, FEATURE_CHANNELS);
        fill_map(&mut src, seed);
        let mut fast = FeatureMap::zeros(w, h, FEATURE_STRIDE, FEATURE_CHANNELS);
        let mut naive = FeatureMap::zeros(w, h, FEATURE_STRIDE, FEATURE_CHANNELS);
        let mut rng = mvs_seed;
        for by in (0..h).step_by(block) {
            for bx in (0..w).step_by(block) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let dx = ((rng >> 33) % 61) as i32 - 30;
                let dy = ((rng >> 13) % 61) as i32 - 30;
                let s = WarpSource { feat: &src, dx, dy };
                warp_block(&mut fast, bx, by, block, s, None);
                reference::warp_block(&mut naive, bx, by, block, s, None);
            }
        }
        prop_assert_eq!(fast.tensor().as_slice(), naive.tensor().as_slice());
    }

    #[test]
    fn staged_forward_equals_fused_segment(
        dims in (24usize..120, 24usize..72),
        seed in 0u64..1_000_000,
    ) {
        // The staged-forward regression, property-tested: the Stages API
        // must reproduce the fused oracle bit for bit on arbitrary frames.
        let (w, h) = dims;
        let mut gt = SegMask::new(w, h);
        gt.fill_rect(Rect::new(
            (w / 6) as i32,
            (h / 6) as i32,
            (w - w / 4) as i32,
            (h - h / 4) as i32,
        ));
        let net = LargeNet::new(LargeNetProfile::favos());
        prop_assert_eq!(net.forward(&gt, seed), net.segment(&gt, seed));
    }
}

#[test]
fn head_fraction_is_sane() {
    // The billing split the sim relies on: the head is strictly between
    // "free" and "might as well run the whole network", and backbone +
    // head account for exactly one full pass.
    let net = LargeNet::new(LargeNetProfile::favos());
    let (w, h) = (854, 480);
    let (full, head) = (net.ops(w, h), net.head_ops(w, h));
    assert!(head > full / 20 && head < full / 2, "head {head} of {full}");
    assert_eq!(net.backbone_ops(w, h) + head, full);
    assert_eq!(head, (NNL_HEAD_FRACTION * full as f64) as u64);
}
