//! Property tests pinning the quantized conv kernels to the naive `i32`
//! reference: the dispatched path (AVX2 where detected, portable AXPY
//! otherwise) and the exported portable path must be **bit-exact** with the
//! triple-loop reference — integer accumulation makes this an equality, not
//! a tolerance. Shapes sweep odd channel counts, 1×1 and 3×3 kernels, and
//! widths straddling the 16-lane SIMD block so padding edges, the vector
//! interior and the scalar tail are all exercised.

use proptest::prelude::*;
use vrd_nn::quant::{self, QuantConv2d, Requant};

/// Deterministic f32 weights spanning both signs, derived from a seed.
fn fill_weights(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as f32 + 1.0) * (seed % 97 + 1) as f32;
            (x * 0.618_034).sin() * 4.0
        })
        .collect()
}

/// Deterministic 7-bit activations derived from a seed.
fn fill_acts(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (vrd_video::texture::hash2(i as i64, 3, seed) % 128) as u8)
        .collect()
}

/// Builds the conv + input for one generated case. `ksel` picks the kernel
/// (0 → 1×1, otherwise 3×3); `w` is rounded up to even like real frames.
fn build_case(
    cin: usize,
    cout: usize,
    ksel: usize,
    h: usize,
    w: usize,
    seed: u64,
) -> (QuantConv2d, usize, usize, Vec<u8>) {
    let k = if ksel == 0 { 1 } else { 3 };
    let w = if w.is_multiple_of(2) { w } else { w + 1 };
    let weights = fill_weights(cout * cin * k * k, seed);
    let conv = QuantConv2d::from_weights(cin, cout, k, &weights);
    let x = fill_acts(cin * h * w, seed ^ 0xace5);
    (conv, h, w, x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Dispatched forward (SIMD when available) == naive reference, bit-exact.
    #[test]
    fn dispatched_forward_matches_reference(
        cin in 1usize..9,
        cout in 1usize..5,
        ksel in 0usize..2,
        h in 1usize..12,
        w in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let (conv, h, w, x) = build_case(cin, cout, ksel, h, w, seed);
        let mut fast = vec![0i32; conv.cout() * h * w];
        conv.forward_i32(&x, h, w, &mut fast);
        let naive = quant::reference::forward_i32(&conv, &x, h, w);
        prop_assert_eq!(fast, naive);
    }

    // Portable fallback == naive reference, bit-exact — pinned explicitly
    // so AVX2 machines still cover the non-SIMD kernel.
    #[test]
    fn portable_forward_matches_reference(
        cin in 1usize..9,
        cout in 1usize..5,
        ksel in 0usize..2,
        h in 1usize..12,
        w in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let (conv, h, w, x) = build_case(cin, cout, ksel, h, w, seed);
        let portable = quant::reference::forward_i32_portable(&conv, &x, h, w);
        let naive = quant::reference::forward_i32(&conv, &x, h, w);
        prop_assert_eq!(portable, naive);
    }

    // Fused requantization == reference accumulate-then-requantize.
    #[test]
    fn requantized_forward_matches_reference(
        cin in 1usize..9,
        cout in 1usize..5,
        ksel in 0usize..2,
        h in 1usize..12,
        w in 1usize..48,
        seed in 0u64..1_000_000,
        m in 1e-6f64..1.0,
        bias in -1000i32..1000,
    ) {
        let (conv, h, w, x) = build_case(cin, cout, ksel, h, w, seed);
        let rq: Vec<Requant> = (0..conv.cout())
            .map(|co| Requant::from_real(m * (co + 1) as f64, bias + co as i32))
            .collect();
        let mut fast = vec![0u8; conv.cout() * h * w];
        conv.forward_requant(&x, h, w, &rq, &mut fast);
        let naive = quant::reference::forward_requant(&conv, &x, h, w, &rq);
        prop_assert_eq!(fast, naive);
    }

    // Requantization saturates instead of wrapping at accumulator extremes
    // and agrees with a direct f64 evaluation everywhere.
    #[test]
    fn requant_saturates_and_rounds(
        m in 1e-9f64..100.0,
        bias in (i32::MIN / 2)..(i32::MAX / 2),
        acc in i32::MIN..i32::MAX,
    ) {
        let rq = Requant::from_real(m, bias);
        let got = rq.apply(acc) as i64;
        prop_assert!((0..=127).contains(&got));
        // The fixed-point decomposition carries 31 significant bits; allow
        // one ULP of the exact real-arithmetic result.
        let exact = ((acc as f64 + bias as f64) * m).round().clamp(0.0, 127.0) as i64;
        prop_assert!(
            (got - exact).abs() <= 1,
            "m={} bias={} acc={}: fixed-point {} vs exact {}",
            m, bias, acc, got, exact
        );
    }
}

/// Deterministic edge shapes the random sweep may never land on: widths
/// exactly at/around the 16-lane block boundary with 3×3 padding.
#[test]
fn simd_block_boundary_widths() {
    let cin = 3;
    let conv = QuantConv2d::from_weights(cin, 2, 3, &fill_weights(cin * 2 * 9, 31));
    for wid in [2usize, 16, 18, 20, 34, 36, 48, 50] {
        let h = 6;
        let x = fill_acts(cin * h * wid, wid as u64);
        let mut fast = vec![0i32; 2 * h * wid];
        conv.forward_i32(&x, h, wid, &mut fast);
        assert_eq!(
            fast,
            quant::reference::forward_i32(&conv, &x, h, wid),
            "width {wid}"
        );
    }
}

/// A 1×1 kernel has no padding edges at all — the whole row is interior.
#[test]
fn one_by_one_kernel_is_interior_only() {
    let w = [0.5f32, -1.25, 2.0];
    let conv = QuantConv2d::from_weights(3, 1, 1, &w);
    let (h, wid) = (4, 33);
    let x = fill_acts(3 * h * wid, 9);
    let mut fast = vec![0i32; h * wid];
    conv.forward_i32(&x, h, wid, &mut fast);
    assert_eq!(fast, quant::reference::forward_i32(&conv, &x, h, wid));
}

/// Saturating requantization clamps extreme accumulators to the 7-bit
/// range instead of wrapping — both kernels, same values.
#[test]
fn requant_extremes_clamp_in_both_kernels() {
    // One huge positive weight and one huge negative weight per channel
    // drive accumulators far past the representable output range.
    let weights = [1000.0f32, -1000.0];
    let conv = QuantConv2d::from_weights(1, 2, 1, &weights);
    let (h, wid) = (2, 20);
    let x = vec![127u8; h * wid];
    let rq = vec![Requant::from_real(1.0, 0); 2];
    let mut fast = vec![0u8; 2 * h * wid];
    conv.forward_requant(&x, h, wid, &rq, &mut fast);
    let naive = quant::reference::forward_requant(&conv, &x, h, wid, &rq);
    assert_eq!(fast, naive);
    assert!(
        fast[..h * wid].iter().all(|&v| v == 127),
        "positive saturates"
    );
    assert!(
        fast[h * wid..].iter().all(|&v| v == 0),
        "negative clamps to 0"
    );
}
