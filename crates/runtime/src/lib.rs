//! # vrd-runtime — the workspace's shared parallel runtime
//!
//! Hosts the scoped-thread primitives that used to live privately in the
//! bench harness, so every layer (NN kernels, trainer, experiment harness)
//! schedules work the same way:
//!
//! * [`parallel_map`] — order-preserving map over a slice on all cores;
//! * [`parallel_for_each`] — consume a vec of independent work items (e.g.
//!   disjoint `&mut` output slices) across cores;
//! * [`BufferPool`] — reusable scratch buffers (`f32` by default; the
//!   quantized inference path pools `u8` activations and `i32`
//!   accumulators), so per-frame inference stops paying an allocation per
//!   intermediate tensor.
//!
//! Everything here is **deterministic by construction**: work items are
//! independent, outputs go to pre-assigned slots, and no reduction order
//! depends on the thread count. Callers that need a specific thread count
//! (tests pinning determinism, benchmarks) use the `_with` variants; the
//! plain variants use [`max_threads`], which honours the `VRD_THREADS`
//! environment variable before falling back to the hardware parallelism.

use std::cell::Cell;
use std::sync::{Mutex, Once};
use std::thread;

pub mod stage;

pub use stage::{stage_channel, StageReceiver, StageSender};

thread_local! {
    /// Per-thread cap on nested parallelism; `None` means uncapped.
    static THREAD_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread budget currently in force on this thread, if any.
///
/// Workers spawned by the `parallel_*` entry points run under a budget of
/// roughly `max_threads() / workers`, so nested parallel sections (an NN
/// kernel called from a parallel wave, say) fan out to about the machine
/// width in total instead of `workers × cores`.
pub fn thread_budget() -> Option<usize> {
    THREAD_BUDGET.with(|b| b.get())
}

/// Runs `f` with this thread's budget capped at `budget` (≥ 1), restoring
/// the previous budget afterwards. [`max_threads`] — and therefore every
/// plain `parallel_*` entry point — honours the cap for the duration.
pub fn with_thread_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    THREAD_BUDGET.with(|b| {
        let prev = b.replace(Some(budget.max(1)));
        let out = f();
        b.set(prev);
        out
    })
}

/// The per-worker budget for a section about to fan out over `workers`
/// threads: the currently effective [`max_threads`] divided evenly, never
/// below 1.
fn child_budget(workers: usize) -> usize {
    (max_threads() / workers.max(1)).max(1)
}

/// Parses a `VRD_THREADS` value: `Ok(n)` for a positive integer, `Err` with
/// the rejected text otherwise (so callers can warn and fall back).
fn parse_thread_override(v: &str) -> Result<usize, &str> {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(v),
    }
}

/// The number of worker threads the plain `parallel_*` entry points use:
/// the `VRD_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] — further capped by the
/// enclosing [`thread_budget`], if one is in force on this thread. An
/// invalid `VRD_THREADS` value (zero, non-numeric) is reported once on
/// stderr and then ignored.
pub fn max_threads() -> usize {
    static WARN_ONCE: Once = Once::new();
    let base = match std::env::var("VRD_THREADS") {
        Ok(v) => match parse_thread_override(&v) {
            Ok(n) => n,
            Err(bad) => {
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "vrd-runtime: ignoring invalid VRD_THREADS={bad:?} \
                         (expected a positive integer); using detected core count"
                    );
                });
                detected_parallelism()
            }
        },
        Err(_) => detected_parallelism(),
    };
    match thread_budget() {
        Some(cap) => base.min(cap).max(1),
        None => base,
    }
}

fn detected_parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over the items on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, max_threads(), f)
}

/// [`parallel_map`] with an explicit worker-thread count.
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    let budget = child_budget(threads);
    let f = &f;
    thread::scope(|s| {
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            s.spawn(move || {
                with_thread_budget(budget, || {
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                })
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot is filled by its worker"))
        .collect()
}

/// Order-preserving parallel map with **striped** work assignment: worker
/// `w` of `T` processes items `w, w+T, w+2T, …`.
///
/// [`parallel_map_with`] hands each worker a contiguous chunk, which is
/// ideal for uniform items but serialises the tail when costs are skewed
/// (e.g. fleet shard replay, where one hot shard can hold most of the
/// frames). Striping interleaves cheap and expensive items across workers
/// at the same deterministic output order: each worker writes results into
/// pre-assigned slots, so the output never depends on the thread count.
pub fn parallel_map_striped<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let budget = child_budget(threads);
    let f = &f;
    let mut per_worker: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    with_thread_budget(budget, || {
                        items
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(threads)
                            .map(|(i, item)| (i, f(item)))
                            .collect::<Vec<_>>()
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("striped worker never panics"))
            .collect()
    });
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for pairs in &mut per_worker {
        for (i, r) in pairs.drain(..) {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot is filled by its worker"))
        .collect()
}

/// Thread-pool sizing for a batch of `jobs` independent work items: the
/// explicit `requested` count when given, otherwise [`max_threads`], and
/// never more workers than jobs. Returns at least 1 so callers can divide
/// by it.
pub fn pool_threads(requested: Option<usize>, jobs: usize) -> usize {
    requested
        .unwrap_or_else(max_threads)
        .max(1)
        .min(jobs.max(1))
}

/// Consumes independent work items across all available cores.
///
/// Unlike [`parallel_map`] the items are moved into the workers, which lets
/// callers hand out disjoint `&mut` slices (e.g. one output plane per item)
/// without interior mutability.
pub fn parallel_for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    parallel_for_each_with(items, max_threads(), f)
}

/// [`parallel_for_each`] with an explicit worker-thread count.
pub fn parallel_for_each_with<I, F>(mut items: Vec<I>, threads: usize, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    if items.is_empty() {
        return;
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let budget = child_budget(threads);
    let f = &f;
    thread::scope(|s| {
        while !items.is_empty() {
            let take = chunk.min(items.len());
            let group: Vec<I> = items.drain(..take).collect();
            s.spawn(move || {
                with_thread_budget(budget, || {
                    for item in group {
                        f(item);
                    }
                })
            });
        }
    });
}

/// A pool of reusable scratch buffers (`f32` unless another element type is
/// named; the quantized NN path pools `u8` activations and `i32`
/// accumulators).
///
/// `take` hands out a buffer of the requested length filled with
/// `T::default()` (reusing a retired allocation when one is available);
/// dropping the returned [`PooledBuf`] recycles it. The pool holds at most
/// a fixed number of retired buffers so long-running processes do not
/// accumulate memory.
#[derive(Debug)]
pub struct BufferPool<T = f32> {
    free: Mutex<Vec<Vec<T>>>,
}

/// Retired buffers kept per pool.
const POOL_CAP: usize = 16;

impl<T> BufferPool<T> {
    /// An empty pool (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Copy + Default> BufferPool<T> {
    /// A `T::default()`-filled scratch buffer of length `len`.
    pub fn take(&self, len: usize) -> PooledBuf<'_, T> {
        let mut buf = self
            .free
            .lock()
            .expect("buffer pool lock is never poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, T::default());
        PooledBuf { buf, pool: self }
    }

    fn recycle(&self, buf: Vec<T>) {
        let mut free = self
            .free
            .lock()
            .expect("buffer pool lock is never poisoned");
        if free.len() < POOL_CAP {
            free.push(buf);
        }
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A scratch buffer borrowed from a [`BufferPool`]; recycled on drop.
#[derive(Debug)]
pub struct PooledBuf<'p, T: Copy + Default = f32> {
    buf: Vec<T>,
    pool: &'p BufferPool<T>,
}

impl<T: Copy + Default> std::ops::Deref for PooledBuf<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Copy + Default> std::ops::DerefMut for PooledBuf<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T: Copy + Default> Drop for PooledBuf<'_, T> {
    fn drop(&mut self) {
        self.pool.recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..37).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..37).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn parallel_map_is_thread_count_invariant() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(parallel_map_with(&items, threads, |&x| x * x), expect);
        }
    }

    #[test]
    fn parallel_map_striped_is_thread_count_invariant() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_map_striped(&items, threads, |&x| x * 3 + 1),
                expect
            );
        }
        let empty: Vec<u64> = vec![];
        assert!(parallel_map_striped(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn pool_threads_clamps_to_jobs() {
        assert_eq!(pool_threads(Some(8), 3), 3);
        assert_eq!(pool_threads(Some(2), 100), 2);
        assert_eq!(pool_threads(Some(0), 5), 1);
        assert_eq!(pool_threads(Some(4), 0), 1);
        assert!(pool_threads(None, 1000) >= 1);
    }

    #[test]
    fn parallel_for_each_writes_disjoint_slices() {
        let mut data = vec![0u32; 64];
        for threads in [1, 3, 7] {
            let work: Vec<(usize, &mut [u32])> = data.chunks_mut(16).enumerate().collect();
            parallel_for_each_with(work, threads, |(i, chunk)| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 100 + j) as u32;
                }
            });
            for (i, chunk) in data.chunks(16).enumerate() {
                for (j, &v) in chunk.iter().enumerate() {
                    assert_eq!(v, (i * 100 + j) as u32);
                }
            }
        }
    }

    #[test]
    fn buffer_pool_recycles_allocations() {
        let pool = BufferPool::new();
        let ptr = {
            let mut a = pool.take(1024);
            a[0] = 5.0;
            a.as_ptr()
        };
        // The recycled allocation is reused and comes back zeroed.
        let b = pool.take(1024);
        assert_eq!(b.as_ptr(), ptr);
        assert!(b.iter().all(|&v| v == 0.0));
        let c = pool.take(8);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn thread_budget_caps_and_restores() {
        assert_eq!(thread_budget(), None);
        let inside = with_thread_budget(1, || {
            assert_eq!(thread_budget(), Some(1));
            // Nested scopes re-cap and restore the outer budget.
            with_thread_budget(3, || assert_eq!(thread_budget(), Some(3)));
            assert_eq!(thread_budget(), Some(1));
            max_threads()
        });
        assert_eq!(inside, 1);
        assert_eq!(thread_budget(), None);
        // A zero budget is clamped to 1 rather than deadlocking callers.
        with_thread_budget(0, || assert_eq!(max_threads(), 1));
    }

    #[test]
    fn parallel_workers_inherit_a_divided_budget() {
        // Two workers under an outer budget of 4 should each see a nested
        // budget of at most 2, and results stay order-preserving.
        let items: Vec<u32> = (0..8).collect();
        let budgets = with_thread_budget(4, || {
            parallel_map_with(&items, 2, |&x| {
                let b = thread_budget().unwrap_or(usize::MAX);
                assert!(b <= 2, "worker budget {b} exceeds fair share");
                x
            })
        });
        assert_eq!(budgets, items);
    }

    #[test]
    fn thread_override_rejects_invalid_values() {
        // The env-independent core of the VRD_THREADS handling: valid
        // positive integers pass through, everything else is rejected (and
        // `max_threads` then warns once and uses the detected core count).
        assert_eq!(parse_thread_override("1"), Ok(1));
        assert_eq!(parse_thread_override("16"), Ok(16));
        assert_eq!(parse_thread_override("0"), Err("0"));
        assert_eq!(parse_thread_override("abc"), Err("abc"));
        assert_eq!(parse_thread_override("-2"), Err("-2"));
        assert_eq!(parse_thread_override(""), Err(""));
        assert_eq!(parse_thread_override("4.5"), Err("4.5"));
    }
}
