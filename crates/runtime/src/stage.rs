//! Bounded single-producer single-consumer stage channels.
//!
//! The pipelined executor in `vr-dann` runs the decoder and the compute
//! lane on separate threads, connected by a bounded queue — the software
//! analogue of the paper's on-chip `ip_Q`/`b_Q` frame queues between the
//! decoder and the NPU. [`stage_channel`] provides that queue:
//!
//! * **bounded** — `send` blocks once `capacity` items are in flight, so a
//!   fast decoder cannot run ahead of the compute lane and accumulate
//!   decoded frames without limit (the bounded-memory guarantee of the
//!   streaming engine extends across the lane boundary);
//! * **SPSC by construction** — neither endpoint is `Clone`, so exactly one
//!   producer and one consumer exist;
//! * **scope-friendly** — no `'static` bound on the payload, so the
//!   endpoints can ferry borrowed data between `std::thread::scope` workers;
//! * **drop-aware** — dropping the receiver makes further `send`s return
//!   the item back (the producer shuts down); dropping the sender drains
//!   the queue and then ends `recv` with `None`.
//!
//! The channel also records its **peak occupancy** so executors can report
//! how many decoded units were ever buffered between the lanes.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    tx_alive: bool,
    rx_alive: bool,
    peak_len: usize,
}

#[derive(Debug)]
struct Inner<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The producer endpoint of a [`stage_channel`].
#[derive(Debug)]
pub struct StageSender<T> {
    inner: Arc<Inner<T>>,
}

/// The consumer endpoint of a [`stage_channel`].
#[derive(Debug)]
pub struct StageReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// A bounded SPSC channel holding at most `capacity` (≥ 1) items.
pub fn stage_channel<T>(capacity: usize) -> (StageSender<T>, StageReceiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            tx_alive: true,
            rx_alive: true,
            peak_len: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        StageSender {
            inner: Arc::clone(&inner),
        },
        StageReceiver { inner },
    )
}

impl<T> StageSender<T> {
    /// Enqueues `item`, blocking while the channel is full. Returns the
    /// item back as `Err` if the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut st = self
            .inner
            .state
            .lock()
            .expect("stage channel lock is never poisoned");
        loop {
            if !st.rx_alive {
                return Err(item);
            }
            if st.queue.len() < self.inner.capacity {
                break;
            }
            st = self
                .inner
                .not_full
                .wait(st)
                .expect("stage channel lock is never poisoned");
        }
        st.queue.push_back(item);
        st.peak_len = st.peak_len.max(st.queue.len());
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Drop for StageSender<T> {
    fn drop(&mut self) {
        let mut st = self
            .inner
            .state
            .lock()
            .expect("stage channel lock is never poisoned");
        st.tx_alive = false;
        self.inner.not_empty.notify_all();
    }
}

impl<T> StageReceiver<T> {
    /// Dequeues the next item, blocking while the channel is empty.
    /// Returns `None` once the sender is gone and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self
            .inner
            .state
            .lock()
            .expect("stage channel lock is never poisoned");
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if !st.tx_alive {
                return None;
            }
            st = self
                .inner
                .not_empty
                .wait(st)
                .expect("stage channel lock is never poisoned");
        }
    }

    /// The most items ever queued at once — the channel's high-water mark.
    pub fn peak_len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("stage channel lock is never poisoned")
            .peak_len
    }
}

impl<T> Drop for StageReceiver<T> {
    fn drop(&mut self) {
        let mut st = self
            .inner
            .state
            .lock()
            .expect("stage channel lock is never poisoned");
        st.rx_alive = false;
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn delivers_in_fifo_order_across_threads() {
        let (tx, rx) = stage_channel(4);
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).expect("receiver alive");
                }
            });
            for i in 0..100u32 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
            assert!(rx.peak_len() <= 4);
        });
    }

    #[test]
    fn send_blocks_at_capacity() {
        let (tx, rx) = stage_channel(2);
        thread::scope(|s| {
            let h = s.spawn(move || {
                for i in 0..5u32 {
                    tx.send(i).expect("receiver alive");
                }
            });
            // Give the producer time to fill the queue and block.
            thread::sleep(Duration::from_millis(30));
            assert_eq!(rx.peak_len(), 2, "producer ran past the bound");
            assert!(!h.is_finished(), "send did not block at capacity");
            for i in 0..5u32 {
                assert_eq!(rx.recv(), Some(i));
            }
        });
    }

    #[test]
    fn sender_drop_drains_then_closes() {
        let (tx, rx) = stage_channel(8);
        tx.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn receiver_drop_returns_item_to_sender() {
        let (tx, rx) = stage_channel(1);
        drop(rx);
        assert_eq!(tx.send(7u8), Err(7));
    }

    #[test]
    fn receiver_drop_unblocks_a_full_sender() {
        let (tx, rx) = stage_channel(1);
        thread::scope(|s| {
            let h = s.spawn(move || {
                tx.send(1u8).expect("first send fits");
                // Second send blocks until the receiver goes away, then
                // hands the item back instead of hanging forever.
                tx.send(2u8)
            });
            thread::sleep(Duration::from_millis(30));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(2));
        });
    }

    #[test]
    fn carries_borrowed_data_under_scoped_threads() {
        let data = [10u32, 20, 30];
        let items: Vec<&u32> = data.iter().collect();
        let (tx, rx) = stage_channel(2);
        thread::scope(|s| {
            s.spawn(move || {
                for item in items {
                    tx.send(item).expect("receiver alive");
                }
            });
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).copied().collect();
            assert_eq!(got, vec![10, 20, 30]);
        });
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = stage_channel(0);
        tx.send(5u8).unwrap();
        assert_eq!(rx.recv(), Some(5));
    }
}
