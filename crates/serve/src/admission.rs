//! Deadline-aware admission control.
//!
//! Before a session runs a single inference, the controller projects what
//! admitting it would do to the shared NPU: per-session compute demand is
//! estimated analytically from the *encoded stream's* statistics (anchor /
//! B-frame counts, frame geometry) and the cost model — no decode needed —
//! and the switch overhead assumes the batching scheduler, which amortises
//! one NN-L ↔ NN-S swap pair over a whole batch window. A session is
//! rejected when the projected utilisation crosses the configured ceiling
//! or the projected p99 frame latency blows the SLO; admission is strictly
//! in request order, so the decision sequence is deterministic.

use vr_dann::{ComputeMode, VrDann};
use vrd_codec::EncodedVideo;
use vrd_nn::LargeNet;
use vrd_sim::SimConfig;
use vrd_video::Sequence;

/// The service-level objective a deployment promises its sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Projected p99 frame latency must stay below this, in nanoseconds.
    pub target_p99_ns: f64,
    /// Projected NPU utilisation (compute + amortised switching) must stay
    /// below this fraction.
    pub max_utilization: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            target_p99_ns: 8e6,
            max_utilization: 0.9,
        }
    }
}

/// Why a session was turned away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// Admitting it would push projected NPU utilisation past the ceiling.
    Utilization {
        /// The utilisation the session would have produced.
        projected: f64,
    },
    /// Utilisation fits, but the projected p99 frame latency breaks the SLO.
    LatencySlo {
        /// The p99 latency the session would have produced, in nanoseconds.
        projected_p99_ns: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Utilization { projected } => {
                write!(f, "utilization {projected:.3} over ceiling")
            }
            RejectReason::LatencySlo { projected_p99_ns } => {
                write!(f, "projected p99 {:.2} ms over SLO", projected_p99_ns / 1e6)
            }
        }
    }
}

/// What admission projected for an accepted session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionProjection {
    /// NPU utilisation with this session included.
    pub utilization: f64,
    /// Projected p99 frame latency with this session included.
    pub projected_p99_ns: f64,
}

/// Analytic per-session demand, derived from encode statistics alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionDemand {
    /// One NN-L inference at the session's resolution, in nanoseconds.
    pub nnl_ns: f64,
    /// One NN-S inference at the session's resolution, in nanoseconds —
    /// already scaled for the session's compute mode (int8 NN-S runs
    /// [`vrd_sim::NpuConfig::int8_speedup`]× faster, so an int8 stream
    /// claims genuinely less of the NPU).
    pub nns_ns: f64,
    /// The NN-S compute mode this demand was estimated for.
    pub compute: ComputeMode,
    /// Anchor (I/P) frames in the stream.
    pub anchors: usize,
    /// B-frames in the stream.
    pub b_frames: usize,
    /// Nominal inter-frame arrival gap, in nanoseconds.
    pub frame_interval_ns: f64,
}

impl SessionDemand {
    /// Estimates demand for one request from its encode statistics (anchors
    /// run NN-L, B-frames run NN-S — the VR-DANN compute split). The NN-S
    /// term is compute-mode-aware: quantized sessions are billed at the
    /// int8 service rate, so admitting int8 (or ladder-degraded) streams
    /// frees real headroom for more sessions instead of being charged as
    /// if they ran f32.
    pub fn estimate(
        model: &VrDann,
        seq: &Sequence,
        encoded: &EncodedVideo,
        frame_interval_ns: f64,
        sim: &SimConfig,
    ) -> Self {
        let ops_per_ns = sim.npu_ops_per_ns();
        let compute = model.config().compute;
        let nns_ops_per_ns = match compute {
            ComputeMode::Int8 => sim.npu_int8_ops_per_ns(),
            _ => ops_per_ns,
        };
        let nnl_ops = LargeNet::new(model.config().segment_profile).ops(seq.width(), seq.height());
        let nns_ops = 2 * model.nns().macs(seq.height(), seq.width());
        let n = encoded.stats.n_frames;
        let b = encoded.stats.b_frames.min(n);
        Self {
            nnl_ns: nnl_ops as f64 / ops_per_ns,
            nns_ns: nns_ops as f64 / nns_ops_per_ns,
            compute,
            anchors: n - b,
            b_frames: b,
            frame_interval_ns,
        }
    }

    /// Steady-state compute utilisation this session puts on the NPU.
    pub fn compute_utilization(&self) -> f64 {
        let n = (self.anchors + self.b_frames).max(1) as f64;
        let mean_ns = (self.anchors as f64 * self.nnl_ns + self.b_frames as f64 * self.nns_ns) / n;
        mean_ns / self.frame_interval_ns
    }

    /// Switch overhead under the batching scheduler: one NN-L ↔ NN-S swap
    /// pair amortised over `batch_cap` served items.
    pub fn switch_utilization(&self, batch_cap: usize, sim: &SimConfig) -> f64 {
        let pair_ns = sim.switch_to_large_ns() + sim.switch_to_small_ns();
        pair_ns / batch_cap.max(1) as f64 / self.frame_interval_ns
    }
}

/// Sequential admission: sessions are offered in request order and the
/// accepted load accumulates.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    slo: SloConfig,
    batch_cap: usize,
    sim: SimConfig,
    utilization: f64,
    worst_base_ns: f64,
}

impl AdmissionController {
    /// A controller with no accepted load yet.
    pub fn new(slo: SloConfig, batch_cap: usize, sim: SimConfig) -> Self {
        Self {
            slo,
            batch_cap,
            sim,
            utilization: 0.0,
            worst_base_ns: 0.0,
        }
    }

    /// Projected NPU utilisation over the currently accepted sessions.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Projects the p99 frame latency at utilisation `u`: the worst
    /// accepted frame's unloaded pass (decode hand-over is dwarfed by one
    /// NN-L plus a switch pair) inflated by the standard 1/(1−u) queueing
    /// factor. At `u ≥ 1` the queue has no stationary distribution, so the
    /// projection is pinned to `+∞` — a finite positive value the SLO
    /// comparison rejects deterministically. Without the guard, `1 − u`
    /// goes to zero or negative and the division yields a non-finite or
    /// *negative* latency; a negative projection would pass the
    /// `p99 > target` check and admit a session onto a saturated shard.
    fn project_p99_ns(&self, base_ns: f64, u: f64) -> f64 {
        if u >= 1.0 {
            return f64::INFINITY;
        }
        base_ns / (1.0 - u)
    }

    /// Offers one session. Accepting it updates the accumulated load;
    /// rejecting it leaves the controller unchanged.
    ///
    /// # Errors
    /// Returns the [`RejectReason`] when the projection breaks the SLO.
    pub fn try_admit(
        &mut self,
        demand: &SessionDemand,
    ) -> std::result::Result<AdmissionProjection, RejectReason> {
        let u = self.utilization
            + demand.compute_utilization()
            + demand.switch_utilization(self.batch_cap, &self.sim);
        if u >= self.slo.max_utilization {
            return Err(RejectReason::Utilization { projected: u });
        }
        let base = (demand.nnl_ns + self.sim.switch_to_large_ns() + self.sim.switch_to_small_ns())
            .max(self.worst_base_ns);
        let p99 = self.project_p99_ns(base, u);
        if p99 > self.slo.target_p99_ns {
            return Err(RejectReason::LatencySlo {
                projected_p99_ns: p99,
            });
        }
        self.utilization = u;
        self.worst_base_ns = base;
        Ok(AdmissionProjection {
            utilization: u,
            projected_p99_ns: p99,
        })
    }

    /// Returns an admitted session's load to the pool — the fleet layer
    /// calls this when a stream drains (or churns out mid-stream) so a
    /// long-lived shard can admit newcomers into the freed headroom.
    /// `demand` must be the same estimate the session was admitted with.
    /// `worst_base_ns` is deliberately *not* rewound: it is a high-water
    /// mark of the worst frame the shard ever carried, and keeping it makes
    /// the p99 projection conservative rather than optimistic after churn.
    pub fn release(&mut self, demand: &SessionDemand) {
        let u = demand.compute_utilization() + demand.switch_utilization(self.batch_cap, &self.sim);
        self.utilization = (self.utilization - u).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(interval_ns: f64) -> SessionDemand {
        SessionDemand {
            nnl_ns: 570_000.0,
            nns_ns: 500.0,
            compute: ComputeMode::F32Reference,
            anchors: 6,
            b_frames: 10,
            frame_interval_ns: interval_ns,
        }
    }

    #[test]
    fn utilization_accumulates_until_the_ceiling() {
        let mut ctl = AdmissionController::new(
            SloConfig {
                target_p99_ns: f64::INFINITY,
                max_utilization: 0.9,
            },
            24,
            SimConfig::default(),
        );
        let d = demand(1_710_000.0);
        let per = d.compute_utilization() + d.switch_utilization(24, &SimConfig::default());
        let fit = (0.9 / per) as usize;
        for i in 0..fit {
            assert!(ctl.try_admit(&d).is_ok(), "session {i} should fit");
        }
        let rejected = ctl.try_admit(&d);
        assert!(matches!(rejected, Err(RejectReason::Utilization { .. })));
        // A rejected offer leaves the accepted load unchanged.
        let before = ctl.utilization();
        let _ = ctl.try_admit(&d);
        assert_eq!(ctl.utilization(), before);
    }

    #[test]
    fn latency_slo_rejects_before_the_utilization_ceiling() {
        let sim = SimConfig::default();
        let d = demand(1_710_000.0);
        let base = d.nnl_ns + sim.switch_to_large_ns() + sim.switch_to_small_ns();
        // An SLO just above the unloaded base: the first session fits, load
        // quickly inflates past it.
        let mut ctl = AdmissionController::new(
            SloConfig {
                target_p99_ns: base * 1.4,
                max_utilization: 0.99,
            },
            24,
            sim,
        );
        let mut admitted = 0usize;
        let reason = loop {
            match ctl.try_admit(&d) {
                Ok(_) => admitted += 1,
                Err(r) => break r,
            }
            assert!(admitted < 100, "never rejected");
        };
        assert!(matches!(reason, RejectReason::LatencySlo { .. }));
        assert!(admitted >= 1);
        assert!(ctl.utilization() < 0.99);
    }

    #[test]
    fn faster_arrivals_demand_more() {
        let slow = demand(2e6);
        let fast = demand(1e6);
        assert!(fast.compute_utilization() > slow.compute_utilization());
        let sim = SimConfig::default();
        assert!(fast.switch_utilization(24, &sim) > slow.switch_utilization(24, &sim));
        // A bigger batch window amortises switches further.
        assert!(fast.switch_utilization(48, &sim) < fast.switch_utilization(24, &sim));
    }

    #[test]
    fn int8_demand_claims_less_of_the_npu() {
        let sim = SimConfig::default();
        // A B-heavy stream where NN-S dominates the compute term, so the
        // mode actually moves the needle.
        let f32_d = SessionDemand {
            nnl_ns: 570_000.0,
            nns_ns: 40_000.0,
            compute: ComputeMode::F32Reference,
            anchors: 2,
            b_frames: 60,
            frame_interval_ns: 150_000.0,
        };
        let int8_d = SessionDemand {
            nns_ns: f32_d.nns_ns / sim.npu.int8_speedup,
            compute: ComputeMode::Int8,
            ..f32_d
        };
        assert!(int8_d.compute_utilization() < f32_d.compute_utilization());

        // The freed headroom is real: the controller admits strictly more
        // int8 sessions than f32 ones under the same ceiling.
        let slo = SloConfig {
            target_p99_ns: f64::INFINITY,
            max_utilization: 0.9,
        };
        let count = |d: &SessionDemand| {
            let mut ctl = AdmissionController::new(slo, 24, sim);
            let mut n = 0usize;
            while ctl.try_admit(d).is_ok() {
                n += 1;
                assert!(n < 1_000, "never saturated");
            }
            n
        };
        assert!(
            count(&int8_d) > count(&f32_d),
            "int8 {} vs f32 {}",
            count(&int8_d),
            count(&f32_d)
        );
    }

    #[test]
    fn saturated_projection_stays_finite_in_sign_and_rejects() {
        // The 1/(1−u) inflation near saturation. At u = 0.999 the head is
        // a real (tiny) number: the projection must be finite, positive and
        // astronomically over any sane SLO. At u = 1.0 (and beyond) there
        // is no stationary queue: the projection pins to +∞ and the SLO
        // check rejects deterministically — it must never go negative and
        // sneak past the `p99 > target` comparison.
        let slo = SloConfig {
            target_p99_ns: 8e6,
            // Ceiling above 1.0 so the latency check, not the utilisation
            // ceiling, is what guards saturation in this test.
            max_utilization: 2.0,
        };
        let mut ctl = AdmissionController::new(slo, 24, SimConfig::default());
        let base = 1_000_000.0;

        // u = 0.999: finite, positive, 1000× the base — over any SLO.
        let p = ctl.project_p99_ns(base, 0.999);
        assert!(p.is_finite() && p > 0.0);
        assert!((p - base / 0.001).abs() / p < 1e-9, "p99 {p}");
        assert!(p > slo.target_p99_ns);

        // u = 1.0: pinned to +∞, which still compares > target.
        let p = ctl.project_p99_ns(base, 1.0);
        assert!(p.is_infinite() && p > 0.0);
        assert!(p > slo.target_p99_ns);

        // u > 1.0 (overcommitted shard): also +∞ — the naive formula
        // would produce a *negative* projection here and wrongly admit.
        let p = ctl.project_p99_ns(base, 1.25);
        assert!(p.is_infinite() && p > 0.0);

        // End to end: a demand that lands utilisation exactly at 1.0 is
        // rejected on latency with an infinite projection, and the
        // controller state is untouched by the rejection.
        let d = SessionDemand {
            nnl_ns: 570_000.0,
            nns_ns: 500.0,
            compute: ComputeMode::F32Reference,
            anchors: 1,
            b_frames: 0,
            // interval == nnl_ns → compute utilisation exactly 1.0; the
            // switch term pushes it strictly past saturation.
            frame_interval_ns: 570_000.0,
        };
        let before = ctl.utilization();
        match ctl.try_admit(&d) {
            Err(RejectReason::LatencySlo { projected_p99_ns }) => {
                assert!(projected_p99_ns.is_infinite() && projected_p99_ns > 0.0);
            }
            other => panic!("saturated shard admitted: {other:?}"),
        }
        assert_eq!(ctl.utilization(), before);
    }

    #[test]
    fn release_returns_headroom_for_new_admissions() {
        let slo = SloConfig {
            target_p99_ns: f64::INFINITY,
            max_utilization: 0.9,
        };
        let sim = SimConfig::default();
        let d = demand(1_710_000.0);
        let mut ctl = AdmissionController::new(slo, 24, sim);
        let mut admitted = 0usize;
        while ctl.try_admit(&d).is_ok() {
            admitted += 1;
            assert!(admitted < 1_000);
        }
        assert!(ctl.try_admit(&d).is_err());
        // One stream drains: exactly one newcomer fits again.
        ctl.release(&d);
        assert!(ctl.try_admit(&d).is_ok());
        assert!(ctl.try_admit(&d).is_err());
        // Releasing everything floors at zero, never negative.
        for _ in 0..admitted + 8 {
            ctl.release(&d);
        }
        assert_eq!(ctl.utilization(), 0.0);
    }

    #[test]
    fn reject_reasons_render() {
        let u = RejectReason::Utilization { projected: 1.05 };
        let l = RejectReason::LatencySlo {
            projected_p99_ns: 9e6,
        };
        assert!(u.to_string().contains("1.050"));
        assert!(l.to_string().contains("9.00 ms"));
    }
}
