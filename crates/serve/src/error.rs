//! Error type of the serving layer.
//!
//! Mirrors the codec's `CodecError::Corrupt` convention: every variant
//! carries enough context to locate the failure (which session, at what
//! scheduler time) without a debugger — serving errors are operational
//! events, and the message is what lands in a fleet's logs.

use std::error::Error as StdError;
use std::fmt;
use vr_dann::VrDannError;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Driving one session's decode → engine loop failed.
    Session {
        /// Index of the session in the admitted set.
        session: usize,
        /// Sequence name of the session.
        name: String,
        /// The underlying pipeline failure.
        source: VrDannError,
    },
    /// The shared-NPU event loop detected a broken invariant (an
    /// unserviceable queue state or a runaway replay).
    Scheduler {
        /// Scheduler clock when the invariant broke, in nanoseconds.
        time_ns: f64,
        /// What broke.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Session {
                session,
                name,
                source,
            } => {
                write!(f, "session {session} ({name}) failed: {source}")
            }
            ServeError::Scheduler { time_ns, detail } => {
                write!(
                    f,
                    "scheduler invariant broken at t={time_ns:.0} ns: {detail}"
                )
            }
        }
    }
}

impl StdError for ServeError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ServeError::Session { source, .. } => Some(source),
            ServeError::Scheduler { .. } => None,
        }
    }
}

/// Serving-layer result.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = ServeError::Session {
            session: 3,
            name: "cows".into(),
            source: VrDannError::BadInput("frame 7 never segmented".into()),
        };
        let msg = e.to_string();
        assert!(msg.contains("session 3"));
        assert!(msg.contains("cows"));
        assert!(msg.contains("frame 7"));
        assert!(StdError::source(&e).is_some());

        let s = ServeError::Scheduler {
            time_ns: 1234.5,
            detail: "no servable front".into(),
        };
        assert!(s.to_string().contains("t=1234 ns") || s.to_string().contains("1235"));
        assert!(StdError::source(&s).is_none());
    }
}
