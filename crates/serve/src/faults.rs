//! Deterministic fault injection for the shared virtual NPU.
//!
//! The codec has [`vrd_codec::faults`] for damaging *bitstreams*; this
//! module is its counterpart for damaging the *accelerator*. A
//! [`NpuFaultProfile`] describes three failure domains:
//!
//! * **transient stalls** — an attempt takes [`NpuFaultProfile::stall_ns`]
//!   longer than its modelled service time (DVFS hiccup, DRAM refresh
//!   storm, interconnect backpressure);
//! * **work-item failures** — an attempt burns its full service time and
//!   returns garbage (ECC trip, watchdog reset of one tile); the item must
//!   be retried;
//! * **NPU crashes** — the device disappears for a [`CrashWindow`]: every
//!   weight and activation resident on it is lost, and in-flight sessions
//!   either die or are restored from host-side checkpoints.
//!
//! Like the codec injector, everything is a pure function of the profile:
//! stall and failure draws use a counter-based hash of
//! `(seed, session, item, attempt)` rather than a sequential RNG, so the
//! fault pattern for a given work item is independent of the order in
//! which the scheduler happens to visit it. Two scheduling policies
//! replayed against the same profile see the *same* faults on the same
//! items — which is what makes fault-injected policy comparisons and the
//! chaos bench's byte-identical re-runs meaningful.

/// One full-device outage: the NPU is gone for `[at_ns, at_ns + down_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// Instant the device disappears, in scheduler nanoseconds.
    pub at_ns: f64,
    /// How long it stays down, in nanoseconds.
    pub down_ns: f64,
}

impl CrashWindow {
    /// The instant the device is back and accepting work.
    pub fn end_ns(&self) -> f64 {
        self.at_ns + self.down_ns
    }
}

/// The kinds of fault the injector can plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpuFaultKind {
    /// Transient slowdown of one attempt.
    Stall,
    /// One attempt fails and must be retried.
    WorkItemFail,
    /// The whole device goes down for a window.
    Crash,
}

/// A deterministic fault plan for one scheduler replay.
#[derive(Debug, Clone, PartialEq)]
pub struct NpuFaultProfile {
    /// Seed for the stall and work-item-failure draws.
    pub seed: u64,
    /// Probability that any single service attempt fails, in `[0, 1]`.
    pub work_item_fail_rate: f64,
    /// Probability that any single service attempt stalls, in `[0, 1]`.
    pub stall_rate: f64,
    /// Extra latency of a stalled attempt, in nanoseconds.
    pub stall_ns: f64,
    /// Full-device outages, sorted by `at_ns` (the scheduler sorts its own
    /// copy defensively).
    pub crashes: Vec<CrashWindow>,
}

/// Salt separating the stall lottery from the failure lottery.
const SALT_STALL: u64 = 0x5741_4c4c_5354_4c01;
/// Salt of the work-item-failure lottery.
const SALT_FAIL: u64 = 0x4641_494c_4954_4d02;

impl NpuFaultProfile {
    /// No faults at all. A scheduler replay under this profile must be
    /// byte-identical to a plain (fault-unaware) replay.
    pub fn none() -> Self {
        Self {
            seed: 0,
            work_item_fail_rate: 0.0,
            stall_rate: 0.0,
            stall_ns: 0.0,
            crashes: Vec::new(),
        }
    }

    /// Only work-item failures, at `rate` per attempt.
    pub fn work_item_failures(rate: f64, seed: u64) -> Self {
        Self {
            work_item_fail_rate: rate,
            seed,
            ..Self::none()
        }
    }

    /// Only transient stalls: `rate` per attempt, each costing `stall_ns`.
    pub fn stalls(rate: f64, stall_ns: f64, seed: u64) -> Self {
        Self {
            stall_rate: rate,
            stall_ns,
            seed,
            ..Self::none()
        }
    }

    /// A single full-device outage.
    pub fn single_crash(at_ns: f64, down_ns: f64) -> Self {
        Self {
            crashes: vec![CrashWindow { at_ns, down_ns }],
            ..Self::none()
        }
    }

    /// Combined chaos: work-item failures at `rate`, stalls at half that
    /// rate costing 200 µs each.
    pub fn chaos(rate: f64, seed: u64) -> Self {
        Self {
            work_item_fail_rate: rate,
            stall_rate: rate / 2.0,
            stall_ns: 200_000.0,
            seed,
            ..Self::none()
        }
    }

    /// True when the profile can never plant a fault.
    pub fn is_quiet(&self) -> bool {
        self.work_item_fail_rate <= 0.0 && self.stall_rate <= 0.0 && self.crashes.is_empty()
    }

    /// Does attempt `attempt` of work item `(session, item)` fail?
    pub fn draw_work_item_failure(&self, session: usize, item: usize, attempt: u32) -> bool {
        self.work_item_fail_rate > 0.0
            && draw(
                self.seed,
                SALT_FAIL,
                session as u64,
                item as u64,
                attempt as u64,
            ) < self.work_item_fail_rate
    }

    /// Does attempt `attempt` of work item `(session, item)` stall?
    pub fn draw_stall(&self, session: usize, item: usize, attempt: u32) -> bool {
        self.stall_rate > 0.0
            && draw(
                self.seed,
                SALT_STALL,
                session as u64,
                item as u64,
                attempt as u64,
            ) < self.stall_rate
    }
}

/// splitmix64 finalizer — full-avalanche 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counter-based uniform draw in `[0, 1)`: a pure hash of the identifying
/// tuple, so every `(session, item, attempt)` has its own independent coin
/// regardless of scheduling order.
fn draw(seed: u64, salt: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix(seed
        ^ mix(salt
            .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(c.wrapping_mul(0x1656_67b1_9e37_79f9))));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_order_free() {
        let p = NpuFaultProfile::chaos(0.3, 42);
        let first: Vec<bool> = (0..64).map(|i| p.draw_work_item_failure(1, i, 0)).collect();
        // Visit in a different order: same answers.
        let mut second = vec![false; 64];
        for i in (0..64).rev() {
            second[i] = p.draw_work_item_failure(1, i, 0);
        }
        assert_eq!(first, second);
        assert!(first.iter().any(|&f| f), "rate 0.3 planted nothing in 64");
        assert!(!first.iter().all(|&f| f), "rate 0.3 hit everything");
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let p = NpuFaultProfile::work_item_failures(0.1, 7);
        let n = 20_000;
        let hits = (0..n)
            .filter(|&i| p.draw_work_item_failure(0, i, 0))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "empirical rate {rate:.3}");
    }

    #[test]
    fn attempts_draw_independent_coins() {
        let p = NpuFaultProfile::work_item_failures(0.5, 9);
        let by_attempt: Vec<bool> = (0..32).map(|a| p.draw_work_item_failure(2, 5, a)).collect();
        assert!(by_attempt.iter().any(|&f| f));
        assert!(by_attempt.iter().any(|&f| !f));
    }

    #[test]
    fn lotteries_are_salted_apart() {
        // Stall and failure draws over the same tuples must not correlate.
        let p = NpuFaultProfile {
            work_item_fail_rate: 0.5,
            stall_rate: 0.5,
            stall_ns: 1.0,
            seed: 3,
            crashes: Vec::new(),
        };
        let agree = (0..256)
            .filter(|&i| p.draw_work_item_failure(0, i, 0) == p.draw_stall(0, i, 0))
            .count();
        assert!(
            (64..192).contains(&agree),
            "salted lotteries correlate: {agree}/256 agreements"
        );
    }

    #[test]
    fn quiet_profiles_never_fire() {
        let p = NpuFaultProfile::none();
        assert!(p.is_quiet());
        assert!((0..100).all(|i| !p.draw_work_item_failure(0, i, 0)));
        assert!((0..100).all(|i| !p.draw_stall(0, i, 0)));
        assert!(!NpuFaultProfile::single_crash(1.0, 2.0).is_quiet());
        assert_eq!(
            CrashWindow {
                at_ns: 5.0,
                down_ns: 3.0
            }
            .end_ns(),
            8.0
        );
    }
}
